//! **Ablation** — MACs vs digital signatures for message authentication.
//!
//! §3 of the paper argues Perpetual-WS (and Thema) scale to larger replica
//! groups than SWS/BFT-WS because MACs are ~3 orders of magnitude cheaper
//! than signatures. This ablation swaps the calibrated MAC cost model for a
//! signature cost model (SWS-like) and re-runs the Fig. 7 sweep: the
//! signature variant collapses as the group grows, the MAC variant degrades
//! gently — the design choice the paper's §6.4 defends.

use perpetual_ws::{CostModel, SystemBuilder};
use pws_bench::{emit_table, quick_mode, Increment, LoadCaller};
use pws_crypto::sig::{MAC_COMPUTE_COST_US, SIGN_COST_US, VERIFY_COST_US};
use pws_simnet::{SimDuration, SimTime};

fn cost_with_signatures() -> CostModel {
    // Each message is signed once and verified once; per-receiver MAC
    // entries are replaced by one signature (cheap marginal cost but huge
    // fixed cost).
    let mut c = CostModel::DEFAULT;
    c.send_crypto += SimDuration::from_micros(SIGN_COST_US);
    c.recv_crypto += SimDuration::from_micros(VERIFY_COST_US);
    c.mac = SimDuration::from_micros(0);
    c
}

fn run(n: u32, cost: CostModel, total: u64) -> f64 {
    let mut b = SystemBuilder::new(2007);
    b.cost(cost);
    b.service("caller", n, move |_| {
        Box::new(LoadCaller::new("target", total, 1))
    });
    b.passive_service("target", n, |_| Box::new(Increment::null()));
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(3600));
    let completed = sys.metrics().counter("perpetual.calls_completed") / n as u64;
    let elapsed = sys
        .metrics()
        .summary("perpetual.completion_time_s")
        .map_or(0.0, |s| s.max);
    if elapsed > 0.0 {
        completed as f64 / elapsed
    } else {
        0.0
    }
}

fn main() {
    let sizes: &[u32] = if quick_mode() {
        &[1, 4]
    } else {
        &[1, 4, 7, 10]
    };
    let total = if quick_mode() { 80 } else { 250 };
    println!(
        "Ablation: MAC authenticators (Perpetual-WS/Thema) vs digital signatures (SWS-like)\n\
         sign = {SIGN_COST_US}us, verify = {VERIFY_COST_US}us, mac = {MAC_COMPUTE_COST_US}us"
    );
    let mut rows = Vec::new();
    for &n in sizes {
        let mac = run(n, CostModel::DEFAULT, total);
        let sig = run(n, cost_with_signatures(), total);
        rows.push(vec![
            n.to_string(),
            format!("{mac:.1}"),
            format!("{sig:.1}"),
            format!("{:.1}x", mac / sig),
        ]);
    }
    emit_table(
        "ablation_crypto",
        &["n", "mac_rps", "sig_rps", "mac_advantage"],
        &rows,
    );
    let adv = |i: usize| -> f64 { rows[i][3].trim_end_matches('x').parse().unwrap() };
    assert!(
        adv(rows.len() - 1) > adv(0),
        "the MAC advantage must grow with group size"
    );
    println!(
        "\nshape check: MAC advantage grows from {:.1}x (n={}) to {:.1}x (n={})",
        adv(0),
        sizes[0],
        adv(rows.len() - 1),
        sizes[sizes.len() - 1]
    );
}
