//! **Figure 6** — TPC-W benchmark results.
//!
//! Paper: WIPS vs the number of remote browser emulators (7–70), with the
//! PGE and Bank replicated at `n ∈ {1, 4, 7, 10}` (§6.1, Fig. 6). Expected
//! shape: WIPS grows almost linearly with RBE count and "the effects of
//! replicating the PGE and Bank layers is minimal" (§6.4) because only
//! 5–10 % of interactions reach the PGE. A `--sync`-style series reproduces
//! the §6.4 claim that asynchronous PGE/Bank implementations perform up to
//! ~4 % better.

use pws_bench::{emit_table, quick_mode};
use pws_simnet::SimDuration;
use pws_tpcw::{run_tpcw, TpcwConfig};

fn main() {
    let (replicas, rbe_counts, duration): (&[u32], Vec<u32>, u64) = if quick_mode() {
        (&[1, 4], vec![14, 28], 40)
    } else {
        (&[1, 4, 7, 10], (1..=10).map(|i| i * 7).collect(), 90)
    };

    println!("Figure 6: TPC-W WIPS vs RBE count (duration {duration}s simulated per cell)");
    let mut rows = Vec::new();
    for &n in replicas {
        for &rbes in &rbe_counts {
            let r = run_tpcw(TpcwConfig {
                n_bookstore: 1,
                n_pge: n,
                n_bank: n,
                rbes,
                duration: SimDuration::from_secs(duration),
                warmup: SimDuration::from_secs(15),
                sync_pge: false,
                think_mean: SimDuration::from_secs(7),
                bookstore_shards: 1,
                read_only: false,
                page_cost_scale: 1,
                speculative: false,
                cross_shard_buys: false,
                seed: 2007,
            });
            rows.push(vec![
                n.to_string(),
                rbes.to_string(),
                format!("{:.2}", r.wips),
                format!("{:.1}%", r.pge_share * 100.0),
            ]);
        }
    }
    emit_table(
        "fig6_tpcw",
        &["n_pge=n_bank", "rbes", "wips", "pge_share"],
        &rows,
    );

    let wips = |n: u32, rbes: u32| -> f64 {
        rows.iter()
            .find(|r| r[0] == n.to_string() && r[1] == rbes.to_string())
            .map(|r| r[2].parse().unwrap())
            .unwrap()
    };
    let max_rbe = *rbe_counts.last().unwrap();
    let min_rbe = rbe_counts[0];
    // Shape: WIPS grows with RBE count; replication cost is minimal.
    for &n in replicas {
        assert!(
            wips(n, max_rbe) > wips(n, min_rbe) * 1.5,
            "n={n}: WIPS should grow with load"
        );
    }
    let n_max = *replicas.last().unwrap();
    let penalty = 1.0 - wips(n_max, max_rbe) / wips(1, max_rbe);
    println!(
        "\nshape check: replicating PGE+Bank at n={n_max} costs {:.1}% WIPS \
         (paper: 'minimal')",
        penalty * 100.0
    );
    assert!(
        penalty < 0.15,
        "replication penalty should be minimal, got {:.1}%",
        penalty * 100.0
    );

    // §6.4 sync-vs-async comparison at a mid-size configuration.
    let cfg = TpcwConfig {
        n_bookstore: 1,
        n_pge: 4,
        n_bank: 4,
        rbes: *rbe_counts.last().unwrap(),
        duration: SimDuration::from_secs(duration),
        warmup: SimDuration::from_secs(15),
        sync_pge: false,
        think_mean: SimDuration::from_secs(7),
        bookstore_shards: 1,
        read_only: false,
        page_cost_scale: 1,
        speculative: false,
        cross_shard_buys: false,
        seed: 2007,
    };
    let async_r = run_tpcw(cfg);
    let sync_r = run_tpcw(TpcwConfig {
        sync_pge: true,
        ..cfg
    });
    let gain = (async_r.wips / sync_r.wips - 1.0) * 100.0;
    emit_table(
        "fig6_sync_vs_async",
        &["variant", "wips"],
        &[
            vec!["async".into(), format!("{:.2}", async_r.wips)],
            vec!["sync".into(), format!("{:.2}", sync_r.wips)],
        ],
    );
    println!("async vs sync PGE/Bank: {gain:+.1}% WIPS (paper: up to ~4% better)");

    // Read-only fast path: a browse-heavy closed loop against a 4-replica
    // store with near-zero think time, so WIPS tracks interaction latency
    // instead of the 7 s think clock. Page costs are scaled down to an
    // in-memory front tier — at paper calibration DB emulation dominates
    // both paths (the §6.4 "replication is minimal" observation) and would
    // mask the agreement savings. Browse pages (~78 % of the mix) skip
    // agreement entirely when `read_only` is on.
    let ro_cfg = TpcwConfig {
        n_bookstore: 4,
        n_pge: 1,
        n_bank: 1,
        rbes: if quick_mode() { 7 } else { 14 },
        duration: SimDuration::from_secs(if quick_mode() { 30 } else { 60 }),
        warmup: SimDuration::from_secs(5),
        sync_pge: false,
        think_mean: SimDuration::from_millis(1),
        bookstore_shards: 1,
        read_only: false,
        page_cost_scale: 100,
        speculative: false,
        cross_shard_buys: false,
        seed: 2007,
    };
    let ordered = run_tpcw(ro_cfg);
    let fast = run_tpcw(TpcwConfig {
        read_only: true,
        ..ro_cfg
    });
    let speedup = fast.wips / ordered.wips;
    emit_table(
        "fig6_readonly",
        &["variant", "wips", "ro_served", "ro_fallbacks"],
        &[
            vec![
                "ordered".into(),
                format!("{:.2}", ordered.wips),
                "0".into(),
                "0".into(),
            ],
            vec![
                "read-only".into(),
                format!("{:.2}", fast.wips),
                fast.ro_served.to_string(),
                fast.ro_fallbacks.to_string(),
            ],
        ],
    );
    println!("read-only fast path on a 4-replica store: {speedup:.2}x WIPS");
    assert!(
        fast.ro_served > 0,
        "fast path never served a read (ro_served = 0)"
    );
    assert!(
        speedup >= 1.3,
        "read-only fast path should win >= 1.3x on a browse-heavy mix, got {speedup:.2}x"
    );
}
