//! **Figure 6** — TPC-W benchmark results.
//!
//! Paper: WIPS vs the number of remote browser emulators (7–70), with the
//! PGE and Bank replicated at `n ∈ {1, 4, 7, 10}` (§6.1, Fig. 6). Expected
//! shape: WIPS grows almost linearly with RBE count and "the effects of
//! replicating the PGE and Bank layers is minimal" (§6.4) because only
//! 5–10 % of interactions reach the PGE. A `--sync`-style series reproduces
//! the §6.4 claim that asynchronous PGE/Bank implementations perform up to
//! ~4 % better.

use pws_bench::{emit_table, quick_mode};
use pws_simnet::SimDuration;
use pws_tpcw::{run_tpcw, TpcwConfig};

fn main() {
    let (replicas, rbe_counts, duration): (&[u32], Vec<u32>, u64) = if quick_mode() {
        (&[1, 4], vec![14, 28], 40)
    } else {
        (&[1, 4, 7, 10], (1..=10).map(|i| i * 7).collect(), 90)
    };

    println!("Figure 6: TPC-W WIPS vs RBE count (duration {duration}s simulated per cell)");
    let mut rows = Vec::new();
    for &n in replicas {
        for &rbes in &rbe_counts {
            let r = run_tpcw(TpcwConfig {
                n_pge: n,
                n_bank: n,
                rbes,
                duration: SimDuration::from_secs(duration),
                warmup: SimDuration::from_secs(15),
                sync_pge: false,
                think_mean: SimDuration::from_secs(7),
                bookstore_shards: 1,
                seed: 2007,
            });
            rows.push(vec![
                n.to_string(),
                rbes.to_string(),
                format!("{:.2}", r.wips),
                format!("{:.1}%", r.pge_share * 100.0),
            ]);
        }
    }
    emit_table(
        "fig6_tpcw",
        &["n_pge=n_bank", "rbes", "wips", "pge_share"],
        &rows,
    );

    let wips = |n: u32, rbes: u32| -> f64 {
        rows.iter()
            .find(|r| r[0] == n.to_string() && r[1] == rbes.to_string())
            .map(|r| r[2].parse().unwrap())
            .unwrap()
    };
    let max_rbe = *rbe_counts.last().unwrap();
    let min_rbe = rbe_counts[0];
    // Shape: WIPS grows with RBE count; replication cost is minimal.
    for &n in replicas {
        assert!(
            wips(n, max_rbe) > wips(n, min_rbe) * 1.5,
            "n={n}: WIPS should grow with load"
        );
    }
    let n_max = *replicas.last().unwrap();
    let penalty = 1.0 - wips(n_max, max_rbe) / wips(1, max_rbe);
    println!(
        "\nshape check: replicating PGE+Bank at n={n_max} costs {:.1}% WIPS \
         (paper: 'minimal')",
        penalty * 100.0
    );
    assert!(
        penalty < 0.15,
        "replication penalty should be minimal, got {:.1}%",
        penalty * 100.0
    );

    // §6.4 sync-vs-async comparison at a mid-size configuration.
    let cfg = TpcwConfig {
        n_pge: 4,
        n_bank: 4,
        rbes: *rbe_counts.last().unwrap(),
        duration: SimDuration::from_secs(duration),
        warmup: SimDuration::from_secs(15),
        sync_pge: false,
        think_mean: SimDuration::from_secs(7),
        bookstore_shards: 1,
        seed: 2007,
    };
    let async_r = run_tpcw(cfg);
    let sync_r = run_tpcw(TpcwConfig {
        sync_pge: true,
        ..cfg
    });
    let gain = (async_r.wips / sync_r.wips - 1.0) * 100.0;
    emit_table(
        "fig6_sync_vs_async",
        &["variant", "wips"],
        &[
            vec!["async".into(), format!("{:.2}", async_r.wips)],
            vec!["sync".into(), format!("{:.2}", sync_r.wips)],
        ],
    );
    println!("async vs sync PGE/Bank: {gain:+.1}% WIPS (paper: up to ~4% better)");
}
