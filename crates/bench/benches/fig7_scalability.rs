//! **Figure 7** — Replica scalability (null requests).
//!
//! Paper: "We first measured the request throughput as the number of
//! calling and target Web Service replicas was varied, using groups of
//! size 1, 4, 7, and 10" (§6.2); Fig. 7 plots throughput (reqs/sec) against
//! `n_c` with one series per `n_t`. Expected shape: throughput falls as
//! either group grows, steeply from 1→4 and flattening after — "the
//! decrease in throughput as a percentage of total throughput diminishes as
//! we add more replicas" (§6.4).

use pws_bench::{emit_table, quick_mode, run_two_tier};
use pws_simnet::SimDuration;

fn main() {
    let sizes: &[u32] = if quick_mode() {
        &[1, 4]
    } else {
        &[1, 4, 7, 10]
    };
    let total: u64 = if quick_mode() { 120 } else { 400 };

    let mut rows = Vec::new();
    println!("Figure 7: replica scalability, null requests ({total} calls per cell)");
    for &nt in sizes {
        for &nc in sizes {
            let r = run_two_tier(nc, nt, total, 1, SimDuration::ZERO, 2007);
            rows.push(vec![
                nc.to_string(),
                nt.to_string(),
                format!("{:.1}", r.throughput),
                format!("{:.3}", r.completion_ms),
            ]);
        }
    }
    emit_table(
        "fig7_scalability",
        &["nc", "nt", "throughput_rps", "ms_per_req"],
        &rows,
    );

    // Sanity properties of the shape (who wins, direction of scaling).
    let tput = |nc: u32, nt: u32| -> f64 {
        rows.iter()
            .find(|r| r[0] == nc.to_string() && r[1] == nt.to_string())
            .map(|r| r[2].parse().unwrap())
            .unwrap_or(f64::NAN)
    };
    let n_max = *sizes.last().unwrap();
    assert!(
        tput(1, 1) > tput(n_max, n_max),
        "unreplicated must outperform fully replicated"
    );
    if !quick_mode() {
        let drop_1_4 = tput(1, 1) - tput(4, 4);
        let drop_7_10 = tput(7, 7) - tput(10, 10);
        assert!(
            drop_1_4 > drop_7_10,
            "throughput loss must flatten at larger groups ({drop_1_4:.1} vs {drop_7_10:.1})"
        );
        println!(
            "\nshape check: 1->4 drop {:.1} rps, 7->10 drop {:.1} rps (flattening ok)",
            drop_1_4, drop_7_10
        );
    }
}
