//! **Figure 8** — Effect of non-zero processing time.
//!
//! Paper: target requests burn 0–20 ms of CPU (message-digest busy work);
//! Fig. 8 plots request completion time (ms/req) and the *relative
//! overhead* of replication vs the unreplicated case, for
//! `n_t = n_c ∈ {1,4,7,10}`. Expected shape: completion time grows with
//! processing time; relative overhead falls rapidly — the paper quotes
//! throughput rising from 31 % of unreplicated (null) to 66 % at 6 ms for
//! n = 4 (§6.4).
//!
//! Beyond the paper, the run ends with a CLBFT **batch-size sweep**
//! (`max_batch ∈ {1, 4, 16}` under a 16-deep client window): request
//! batching is the classic throughput lever for this protocol family, and
//! the sweep records how far it lifts the saturated hot path.

use perpetual_ws::TraceLevel;
use pws_bench::{
    emit_bench_json, emit_table, quick_mode, run_two_tier, run_two_tier_batched,
    run_two_tier_traced,
};
use pws_simnet::SimDuration;

fn main() {
    let sizes: &[u32] = if quick_mode() {
        &[1, 4]
    } else {
        &[1, 4, 7, 10]
    };
    let proc_ms: &[u64] = if quick_mode() {
        &[0, 6]
    } else {
        &[0, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20]
    };
    let total: u64 = if quick_mode() { 80 } else { 250 };

    println!("Figure 8: effect of request processing CPU time ({total} calls per cell)");
    let mut rows = Vec::new();
    let mut base_ms = std::collections::HashMap::new();
    for &t in proc_ms {
        for &n in sizes {
            let r = run_two_tier(n, n, total, 1, SimDuration::from_millis(t), 2007);
            if n == 1 {
                base_ms.insert(t, r.completion_ms);
            }
            let overhead = r.completion_ms / base_ms[&t];
            rows.push(vec![
                t.to_string(),
                n.to_string(),
                format!("{:.3}", r.completion_ms),
                format!("{:.2}", overhead),
            ]);
        }
    }
    emit_table(
        "fig8_processing",
        &["proc_ms", "n", "ms_per_req", "relative_overhead"],
        &rows,
    );

    // Shape checks: overhead falls as processing grows, for every n > 1.
    let overhead = |t: u64, n: u32| -> f64 {
        rows.iter()
            .find(|r| r[0] == t.to_string() && r[1] == n.to_string())
            .map(|r| r[3].parse().unwrap())
            .unwrap()
    };
    let t_hi = *proc_ms.last().unwrap();
    for &n in sizes.iter().filter(|n| **n > 1) {
        let o0 = overhead(0, n);
        let ohi = overhead(t_hi, n);
        assert!(
            ohi < o0,
            "n={n}: relative overhead must fall with processing time ({o0:.2} -> {ohi:.2})"
        );
    }
    if !quick_mode() {
        // The paper's flagship data point: n=4 at 6 ms (typical DB access).
        let o6 = overhead(6, 4);
        println!(
            "\nshape check: n=4 relative overhead {:.2}x at null -> {:.2}x at 6ms \
             (paper: throughput 31% -> 66% of unreplicated, i.e. ~3.2x -> ~1.5x)",
            overhead(0, 4),
            o6
        );
        assert!(
            o6 < overhead(0, 4) * 0.7,
            "6ms should cut n=4 overhead substantially"
        );
    }

    // Batch-size sweep: a 16-deep client window saturates the agreement
    // pipeline so the primary actually accumulates. max_batch = 1 is the
    // pre-batching protocol (one request per slot).
    let batch_total: u64 = if quick_mode() { 120 } else { 400 };
    let mut batch_rows = Vec::new();
    for &max_batch in &[1usize, 4, 16] {
        let r = run_two_tier_batched(4, 4, batch_total, 16, SimDuration::ZERO, 2007, max_batch);
        batch_rows.push(vec![
            max_batch.to_string(),
            format!("{:.1}", r.throughput),
            format!("{:.3}", r.completion_ms),
            r.batches.to_string(),
            format!("{:.2}", r.mean_batch),
        ]);
    }
    emit_table(
        "fig8_batch_sweep",
        &[
            "max_batch",
            "throughput_rps",
            "ms_per_req",
            "batches",
            "mean_reqs_per_batch",
        ],
        &batch_rows,
    );
    let tput_at = |i: usize| -> f64 { batch_rows[i][1].parse().unwrap() };
    let occ_at = |i: usize| -> f64 { batch_rows[i][4].parse().unwrap() };
    assert!(
        occ_at(2) > occ_at(0),
        "batching must engage at cap 16 ({} vs {})",
        occ_at(2),
        occ_at(0)
    );
    assert!(
        tput_at(2) > tput_at(0),
        "batch 16 must out-run batch 1 on the same topology ({} vs {})",
        tput_at(2),
        tput_at(0)
    );
    println!(
        "\nbatch sweep: {:.1} rps at batch 1 -> {:.1} rps at batch 16 \
         ({:.2}x, mean occupancy {:.2})",
        tput_at(0),
        tput_at(2),
        tput_at(2) / tput_at(0),
        occ_at(2)
    );

    // Tracing companion: re-run the saturated batch-16 cell with
    // request-lifecycle tracing at `Phases`. It contributes the per-phase
    // latency percentiles to the committed artifact and measures the
    // tracing tax on the identical workload (the headline numbers above
    // stay tracing-off).
    let (traced, lat) = run_two_tier_traced(
        4,
        4,
        batch_total,
        16,
        SimDuration::ZERO,
        2007,
        16,
        TraceLevel::Phases,
    );
    assert_eq!(traced.completed, batch_total);
    println!(
        "tracing companion: {:.1} rps traced vs {:.1} rps untraced \
         ({:+.2}% wall-clock-free tracing tax on simulated throughput)",
        traced.throughput,
        tput_at(2),
        (traced.throughput / tput_at(2) - 1.0) * 100.0
    );

    let n_hi = *sizes.last().unwrap();
    let mut fields: Vec<(String, f64)> = vec![
        ("proc_ms_max".into(), t_hi as f64),
        ("overhead_null_nmax".into(), overhead(0, n_hi)),
        ("overhead_hi_nmax".into(), overhead(t_hi, n_hi)),
        ("batch1_throughput_rps".into(), tput_at(0)),
        ("batch16_throughput_rps".into(), tput_at(2)),
        ("batch16_mean_occupancy".into(), occ_at(2)),
    ];
    fields.extend(lat);
    let refs: Vec<(&str, f64)> = fields.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    emit_bench_json("fig8", &refs);
}
