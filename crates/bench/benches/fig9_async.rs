//! **Figure 9** — Effect of asynchronous messaging.
//!
//! Paper: throughput vs the number of parallel asynchronous requests
//! (1, 5, 10, 20, 25) for `n_t = n_c ∈ {4, 7, 10}`. Expected shape:
//! throughput climbs steeply as the window opens and saturates around
//! window 10–20; the paper reports gains of up to 225 % (n=4), 239 % (n=7),
//! and 227 % (n=10) over the synchronous case (§6.4).

use pws_bench::{emit_table, quick_mode, run_two_tier};
use pws_simnet::SimDuration;

fn main() {
    let sizes: &[u32] = if quick_mode() { &[4] } else { &[4, 7, 10] };
    let windows: &[u64] = if quick_mode() {
        &[1, 10]
    } else {
        &[1, 5, 10, 20, 25]
    };
    let total: u64 = if quick_mode() { 150 } else { 500 };

    println!("Figure 9: parallel asynchronous requests ({total} calls per cell)");
    let mut rows = Vec::new();
    for &n in sizes {
        let mut sync_tput = 0.0;
        for &w in windows {
            let r = run_two_tier(n, n, total, w, SimDuration::ZERO, 2007);
            if w == 1 {
                sync_tput = r.throughput;
            }
            let gain = (r.throughput / sync_tput - 1.0) * 100.0;
            rows.push(vec![
                n.to_string(),
                w.to_string(),
                format!("{:.1}", r.throughput),
                format!("{:+.0}%", gain),
            ]);
        }
    }
    emit_table(
        "fig9_async",
        &["n", "parallel_requests", "throughput_rps", "gain_vs_sync"],
        &rows,
    );

    // Shape checks: async pipelining must raise throughput materially for
    // every group size, with most of the gain arriving by window 10.
    let tput = |n: u32, w: u64| -> f64 {
        rows.iter()
            .find(|r| r[0] == n.to_string() && r[1] == w.to_string())
            .map(|r| r[2].parse().unwrap())
            .unwrap()
    };
    let w_max = *windows.last().unwrap();
    for &n in sizes {
        let gain = tput(n, w_max) / tput(n, 1);
        assert!(
            gain > 1.4,
            "n={n}: async gain must be large, got {gain:.2}x"
        );
        println!("shape check: n={n} async gain {:.0}%", (gain - 1.0) * 100.0);
    }
}
