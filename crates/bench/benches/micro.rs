//! Criterion micro-benchmarks backing the §3/§6.4 cost claims:
//!
//! * MAC computation vs (cost-model) digital signatures — the paper's
//!   three-orders-of-magnitude argument for scaling to large groups;
//! * XML marshal/demarshal vs MAC authentication — the observation that
//!   "the cost of authentication and encryption at the ChannelAdapter layer
//!   dwarfs the cost of marshaling and demarshaling XML requests";
//! * CLBFT agreement round and reply-bundle verification throughput;
//! * replica host setup/teardown throughput under the poll-driven service
//!   runtime (vs the retired thread-per-replica model).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use pws_clbft::{Action, Config, Msg, Replica, ReplicaId, Request, RequestId};
use pws_crypto::auth::{verify_bundle, BundleShare};
use pws_crypto::keys::{KeyTable, Principal};
use pws_crypto::{sha256, MacKey, SigKeypair};
use pws_soap::MessageContext;
use std::collections::VecDeque;
use std::time::Duration;

fn bench_crypto(c: &mut Criterion) {
    let mut g = c.benchmark_group("crypto");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);
    let key = MacKey::derive_from_label(1, b"bench");
    let kp = SigKeypair::derive(1, 1);
    let msg = vec![0xabu8; 1024];

    g.bench_function("sha256_1k", |b| b.iter(|| sha256(&msg)));
    g.bench_function("mac_compute_1k", |b| b.iter(|| key.compute(&msg)));
    let mac = key.compute(&msg);
    g.bench_function("mac_verify_1k", |b| b.iter(|| key.verify(&msg, &mac)));
    g.bench_function("sig_sign_1k", |b| b.iter(|| kp.sign(&msg)));
    let sig = kp.sign(&msg);
    g.bench_function("sig_verify_1k", |b| b.iter(|| kp.verify(&msg, &sig)));
    g.finish();
}

fn bench_bundle(c: &mut Criterion) {
    let mut g = c.benchmark_group("bundle");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);
    for n in [4u32, 10] {
        let mut keys = KeyTable::new(1);
        let callers: Vec<Principal> = (0..n).map(|i| Principal::new(1, i)).collect();
        let digest = sha256(b"reply");
        let f = (n - 1) / 3;
        let shares: Vec<BundleShare> = (0..2 * f + 1)
            .map(|i| BundleShare::build(&mut keys, Principal::new(2, i), b"tag", digest, &callers))
            .collect();
        g.bench_function(format!("verify_bundle_n{n}"), |b| {
            b.iter(|| {
                assert!(verify_bundle(
                    &mut keys,
                    &shares,
                    b"tag",
                    &digest,
                    callers[0],
                    f as usize + 1,
                ))
            })
        });
    }
    g.finish();
}

fn bench_soap(c: &mut Criterion) {
    let mut g = c.benchmark_group("soap");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);
    let mut mc = MessageContext::request("urn:svc:pge", "authorize");
    mc.addressing_mut().message_id = Some("urn:uuid:bench-1".into());
    mc.addressing_mut().reply_to = Some("urn:svc:store".into());
    mc.body_mut().name = "authorize".into();
    mc.body_mut().text = "4199".into();
    let bytes = mc.to_bytes().unwrap();
    g.bench_function("marshal_envelope", |b| b.iter(|| mc.to_bytes().unwrap()));
    g.bench_function("demarshal_envelope", |b| {
        b.iter(|| MessageContext::from_bytes(&bytes).unwrap())
    });
    g.finish();
}

fn route_actions(
    at: usize,
    actions: Vec<Action>,
    inbox: &mut VecDeque<(usize, ReplicaId, Msg)>,
    executed: &mut usize,
) {
    for a in actions {
        match a {
            Action::Broadcast(m) => {
                for i in 0..4 {
                    if i != at {
                        inbox.push_back((i, ReplicaId(at as u32), m.clone()));
                    }
                }
            }
            Action::Send(d, m) => inbox.push_back((d.0 as usize, ReplicaId(at as u32), m)),
            Action::Execute { batch, .. } => *executed += batch.len(),
            _ => {}
        }
    }
}

/// One full CLBFT agreement round for a 4-replica group, messages delivered
/// in memory. Returns executed request deliveries across all replicas.
fn clbft_round(replicas: &mut [Replica], counter: u64) -> usize {
    clbft_load(replicas, counter..counter + 1)
}

/// Pushes a range of requests into the primary and runs the group to
/// quiescence; with the default pipeline depth the primary seals queued
/// requests into batches as slots complete. Returns executed request
/// deliveries summed across all replicas.
fn clbft_load(replicas: &mut [Replica], counters: std::ops::Range<u64>) -> usize {
    let mut inbox: VecDeque<(usize, ReplicaId, Msg)> = VecDeque::new();
    let mut executed = 0usize;
    for counter in counters {
        let req = Request::new(
            RequestId::new(1, counter),
            bytes::Bytes::from(counter.to_string()),
        );
        let first = replicas[0].on_request(req);
        route_actions(0, first, &mut inbox, &mut executed);
    }
    while let Some((to, from, m)) = inbox.pop_front() {
        let actions = replicas[to].on_message(from, m);
        route_actions(to, actions, &mut inbox, &mut executed);
    }
    // Anything still queued behind a full pipeline: seal it (the harness's
    // batch timer would).
    loop {
        let timer_actions = replicas[0].on_batch_timer();
        if timer_actions.is_empty() {
            break;
        }
        route_actions(0, timer_actions, &mut inbox, &mut executed);
        while let Some((to, from, m)) = inbox.pop_front() {
            let actions = replicas[to].on_message(from, m);
            route_actions(to, actions, &mut inbox, &mut executed);
        }
    }
    executed
}

fn bench_clbft(c: &mut Criterion) {
    let mut g = c.benchmark_group("clbft");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    g.bench_function("agreement_round_n4", |b| {
        b.iter_batched(
            || {
                let cfg = Config::new(4);
                let rs: Vec<Replica> = (0..4)
                    .map(|i| Replica::new(ReplicaId(i), cfg.clone()))
                    .collect();
                rs
            },
            |mut rs| {
                let executed = clbft_round(&mut rs, 1);
                assert_eq!(executed, 4);
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// Batch assembly: 32 requests through a 4-replica group at CLBFT batching
/// caps 1 / 4 / 16. The work is identical (32 ordered executions per
/// replica); what shrinks with the cap is the number of agreement slots and
/// therefore protocol messages — the §6.4-style argument for batching.
fn bench_clbft_batching(c: &mut Criterion) {
    let mut g = c.benchmark_group("clbft_batch");
    g.measurement_time(Duration::from_secs(2)).sample_size(20);
    for max_batch in [1usize, 4, 16] {
        g.bench_function(format!("order_32_reqs_cap{max_batch}"), |b| {
            b.iter_batched(
                || {
                    let mut cfg = Config::new(4);
                    cfg.max_batch_size = max_batch;
                    let rs: Vec<Replica> = (0..4)
                        .map(|i| Replica::new(ReplicaId(i), cfg.clone()))
                        .collect();
                    rs
                },
                |mut rs| {
                    let executed = clbft_load(&mut rs, 0..32);
                    assert_eq!(executed, 32 * 4);
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_service_host(c: &mut Criterion) {
    use perpetual_ws::runtime::UriMap;
    use perpetual_ws::{PassiveHost, PassiveService, PassiveUtils, ServiceExecutor, WsCostModel};
    use pws_perpetual::{AppEvent, AppOutput, Executor};
    use std::sync::Arc;

    struct Null;
    impl PassiveService for Null {
        fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
            req.reply_with("", pws_soap::XmlNode::new("ok"))
        }
    }

    let mut g = c.benchmark_group("service_host");
    g.measurement_time(Duration::from_secs(2)).sample_size(30);

    // Replica host setup + Init + teardown. Measured once at the
    // thread→poll migration for comparison: the retired thread-per-replica
    // model (spawn on Init, channel handshake, join on Drop) cost
    // ~24.4 µs per replica (~41k replicas/s) on this container. The number
    // kept green here is the poll model's.
    let uris = Arc::new(UriMap::default());
    g.bench_function("replica_setup_teardown", |b| {
        b.iter(|| {
            let mut exec = ServiceExecutor::new(
                Box::new(PassiveHost::new(Box::new(Null))),
                "svc",
                uris.clone(),
                WsCostModel::FREE,
            );
            let mut out = AppOutput::new(0, 0);
            exec.on_event(AppEvent::Init { seed: 1 }, &mut out);
            drop(exec);
        })
    });

    // Whole-deployment assembly and teardown at the Fig. 7 top scale
    // (12 groups × 4 replicas + 12 clients), no traffic: what the old
    // model paid 48 thread spawns + joins for.
    g.bench_function("deployment_12x4_setup_teardown", |b| {
        b.iter(|| {
            let mut builder = perpetual_ws::SystemBuilder::new(7);
            for i in 0..12 {
                builder.passive_service(&format!("svc{i}"), 4, |_| Box::new(Null));
                builder.scripted_client(&format!("c{i}"), &format!("svc{i}"), 1);
            }
            drop(builder.build());
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_crypto,
    bench_bundle,
    bench_soap,
    bench_clbft,
    bench_clbft_batching,
    bench_service_host
);
criterion_main!(benches);
