//! Criterion micro guarding the observability tax: the same small fig8
//! cell (4×4 two-tier, 16-deep window, batch cap 16) wall-clocked with
//! tracing `Off`, `Phases`, and `Full`.
//!
//! The `Off` path is the one that must stay near-free — its per-event
//! cost is a single branch on the trace level — so `two_tier/off` here is
//! the number to watch against the pre-observability baseline. `phases` /
//! `full` quantify what turning the knob costs when you do want spans.

use criterion::{criterion_group, criterion_main, Criterion};
use perpetual_ws::TraceLevel;
use pws_bench::run_two_tier_traced;
use pws_simnet::SimDuration;
use std::time::Duration;

fn bench_obs_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("two_tier");
    g.measurement_time(Duration::from_secs(5)).sample_size(20);
    for (name, level) in [
        ("off", TraceLevel::Off),
        ("phases", TraceLevel::Phases),
        ("full", TraceLevel::Full),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let (r, _) = run_two_tier_traced(4, 4, 60, 16, SimDuration::ZERO, 2007, 16, level);
                assert_eq!(r.completed, 60);
                r.throughput
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
