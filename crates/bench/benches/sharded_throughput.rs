//! **Sharded scale-out** — throughput vs shard count (beyond the paper).
//!
//! The paper's architecture replicates each service behind one CLBFT voter
//! group, so total throughput asymptotes at a single group's agreement
//! rate — the ceiling the fig8 batch sweep saturates. This sweep
//! partitions one logical null-op service across 1/2/4 independently
//! agreeing groups with deterministic rendezvous key routing
//! (`SystemBuilder::sharded_passive`) and drives all of them with the same
//! saturating keyed workload: per-request keys spread uniformly, each
//! shard orders its own log, and aggregate throughput scales *out*.
//!
//! Acceptance bar (ISSUE 5): the 4-shard topology must sustain at least
//! 2.5× the saturated throughput of the single group on the same
//! workload, and every shard must actually serve (balance engaged, no
//! silent hot-spotting).
//!
//! ISSUE 7 adds a cross-shard mix smoke: the same keyed workload with
//! every 10th request naming keys on *two* shards, which the
//! transactional routing layer runs as a two-phase commit. The smoke
//! asserts the mix completes with exactly-once application — 2PC overhead
//! is charged but atomicity never drops a request.

use perpetual_ws::TraceLevel;
use pws_bench::{
    emit_bench_json, emit_table, quick_mode, run_sharded, run_sharded_mixed, run_sharded_traced,
};

fn main() {
    let (clients, per_client, window): (u32, u64, u64) = if quick_mode() {
        (8, 80, 16)
    } else {
        (8, 150, 16)
    };
    let total = clients as u64 * per_client;

    println!(
        "Sharded scale-out: {clients} clients x {per_client} keyed requests \
         (window {window}) against 1/2/4 shards of 4 replicas"
    );
    let mut rows = Vec::new();
    let mut tput = std::collections::HashMap::new();
    for &shards in &[1u32, 2, 4] {
        let r = run_sharded(shards, 4, clients, per_client, window, 2007);
        assert_eq!(
            r.completed, total,
            "{shards}-shard run must complete every request"
        );
        let min_shard = r.per_shard_requests.iter().min().copied().unwrap_or(0);
        assert!(
            min_shard > 0,
            "every shard must serve; per-shard {:?}",
            r.per_shard_requests
        );
        tput.insert(shards, r.throughput);
        rows.push(vec![
            shards.to_string(),
            format!("{:.1}", r.throughput),
            format!("{:.2}", r.throughput / tput[&1]),
            format!("{:?}", r.per_shard_requests),
        ]);
    }
    emit_table(
        "sharded_throughput",
        &["shards", "throughput_rps", "speedup", "per_shard_requests"],
        &rows,
    );

    let speedup2 = tput[&2] / tput[&1];
    let speedup4 = tput[&4] / tput[&1];
    println!(
        "\nscale-out: {:.1} rps at 1 shard -> {:.1} rps at 2 ({speedup2:.2}x) \
         -> {:.1} rps at 4 ({speedup4:.2}x)",
        tput[&1], tput[&2], tput[&4]
    );
    assert!(
        speedup2 > 1.4,
        "2 shards should clearly out-run 1 ({speedup2:.2}x)"
    );
    // The acceptance bar proper; the trimmed smoke run is ramp/drain
    // dominated (each shard only sees a few windows of load), so it gets
    // a slightly looser floor while still proving genuine scale-out.
    let floor = if quick_mode() { 2.2 } else { 2.5 };
    assert!(
        speedup4 >= floor,
        "4 shards must sustain >= {floor}x the single-group rate, got {speedup4:.2}x"
    );

    // ISSUE 7: 10% cross-shard transaction mix over 4 shards. Every
    // caller's keys are unique, so no transaction can abort on lock
    // conflict — the smoke demands all commits land and the summed
    // per-shard application count proves exactly-once execution
    // (single-key requests apply once, each commit applies both keys).
    let (mix_callers, mix_per_caller): (u32, u64) = if quick_mode() { (4, 60) } else { (4, 120) };
    let mix_total = mix_callers as u64 * mix_per_caller;
    let mix = run_sharded_mixed(4, 4, mix_callers, mix_per_caller, 8, 10, 2107);
    println!(
        "\ncross-shard mix (10%): {} completed, {} committed, {} aborted, {} applied",
        mix.completed, mix.commits, mix.aborts, mix.applied
    );
    assert_eq!(
        mix.completed, mix_total,
        "mix run must complete every request"
    );
    assert!(
        mix.commits > 0,
        "the 10% mix must exercise real 2PC commits"
    );
    assert_eq!(mix.aborts, 0, "disjoint key sets must never abort");
    assert_eq!(
        mix.applied,
        mix_total + mix.commits,
        "exactly-once: applications = single-key requests + 2 keys per commit"
    );

    // Tracing companion: the 4-shard cell again with request-lifecycle
    // tracing at `Phases`, supplying the per-phase latency percentiles
    // for the committed artifact (the headline sweep stays tracing-off).
    let (traced, lat) =
        run_sharded_traced(4, 4, clients, per_client, window, 2007, TraceLevel::Phases);
    assert_eq!(traced.completed, total);
    println!(
        "\ntracing companion: {:.1} rps traced vs {:.1} rps untraced at 4 shards",
        traced.throughput, tput[&4]
    );

    let mut fields: Vec<(String, f64)> = vec![
        ("shards_max".into(), 4.0),
        ("throughput_1shard_rps".into(), tput[&1]),
        ("throughput_2shard_rps".into(), tput[&2]),
        ("throughput_4shard_rps".into(), tput[&4]),
        ("speedup_2shard".into(), speedup2),
        ("speedup_4shard".into(), speedup4),
        ("mix_completed".into(), mix.completed as f64),
        ("mix_commits".into(), mix.commits as f64),
        ("mix_aborts".into(), mix.aborts as f64),
    ];
    fields.extend(lat);
    let refs: Vec<(&str, f64)> = fields.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    emit_bench_json("sharded", &refs);
}
