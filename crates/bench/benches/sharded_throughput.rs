//! **Sharded scale-out** — throughput vs shard count (beyond the paper).
//!
//! The paper's architecture replicates each service behind one CLBFT voter
//! group, so total throughput asymptotes at a single group's agreement
//! rate — the ceiling the fig8 batch sweep saturates. This sweep
//! partitions one logical null-op service across 1/2/4 independently
//! agreeing groups with deterministic rendezvous key routing
//! (`SystemBuilder::sharded_passive`) and drives all of them with the same
//! saturating keyed workload: per-request keys spread uniformly, each
//! shard orders its own log, and aggregate throughput scales *out*.
//!
//! Acceptance bar (ISSUE 5): the 4-shard topology must sustain at least
//! 2.5× the saturated throughput of the single group on the same
//! workload, and every shard must actually serve (balance engaged, no
//! silent hot-spotting).

use pws_bench::{emit_table, quick_mode, run_sharded};

fn main() {
    let (clients, per_client, window): (u32, u64, u64) = if quick_mode() {
        (8, 80, 16)
    } else {
        (8, 150, 16)
    };
    let total = clients as u64 * per_client;

    println!(
        "Sharded scale-out: {clients} clients x {per_client} keyed requests \
         (window {window}) against 1/2/4 shards of 4 replicas"
    );
    let mut rows = Vec::new();
    let mut tput = std::collections::HashMap::new();
    for &shards in &[1u32, 2, 4] {
        let r = run_sharded(shards, 4, clients, per_client, window, 2007);
        assert_eq!(
            r.completed, total,
            "{shards}-shard run must complete every request"
        );
        let min_shard = r.per_shard_requests.iter().min().copied().unwrap_or(0);
        assert!(
            min_shard > 0,
            "every shard must serve; per-shard {:?}",
            r.per_shard_requests
        );
        tput.insert(shards, r.throughput);
        rows.push(vec![
            shards.to_string(),
            format!("{:.1}", r.throughput),
            format!("{:.2}", r.throughput / tput[&1]),
            format!("{:?}", r.per_shard_requests),
        ]);
    }
    emit_table(
        "sharded_throughput",
        &["shards", "throughput_rps", "speedup", "per_shard_requests"],
        &rows,
    );

    let speedup2 = tput[&2] / tput[&1];
    let speedup4 = tput[&4] / tput[&1];
    println!(
        "\nscale-out: {:.1} rps at 1 shard -> {:.1} rps at 2 ({speedup2:.2}x) \
         -> {:.1} rps at 4 ({speedup4:.2}x)",
        tput[&1], tput[&2], tput[&4]
    );
    assert!(
        speedup2 > 1.4,
        "2 shards should clearly out-run 1 ({speedup2:.2}x)"
    );
    // The acceptance bar proper; the trimmed smoke run is ramp/drain
    // dominated (each shard only sees a few windows of load), so it gets
    // a slightly looser floor while still proving genuine scale-out.
    let floor = if quick_mode() { 2.2 } else { 2.5 };
    assert!(
        speedup4 >= floor,
        "4 shards must sustain >= {floor}x the single-group rate, got {speedup4:.2}x"
    );
}
