//! **Figure 2** — Unique properties of Perpetual-WS (the §3 comparison
//! matrix against Thema, BFT-WS, and SWS). The Perpetual-WS column is
//! pinned to this repository's implementation by unit tests in
//! `perpetual_ws::features`.

use perpetual_ws::{feature_matrix, Approach};
use pws_bench::emit_table;

fn main() {
    println!("Figure 2: unique properties of Perpetual-WS (paper §3)");
    let rows: Vec<Vec<String>> = feature_matrix()
        .into_iter()
        .map(|row| {
            let mut cells = vec![row.property.to_string()];
            for a in Approach::ALL {
                cells.push(if row.supports(a) { "yes" } else { "-" }.to_string());
            }
            cells
        })
        .collect();
    emit_table(
        "table2_features",
        &["property", "Perpetual-WS", "Thema", "BFT-WS", "SWS"],
        &rows,
    );
}
