//! # pws-bench
//!
//! Shared machinery for the benchmark targets that regenerate the paper's
//! evaluation (one bench per table/figure; see DESIGN.md for the index):
//!
//! | Target | Paper artifact |
//! |---|---|
//! | `table2_features` | Fig. 2 (property matrix) |
//! | `fig6_tpcw` | Fig. 6 (TPC-W WIPS vs RBE count) |
//! | `fig7_scalability` | Fig. 7 (null-request throughput vs replicas) |
//! | `fig8_processing` | Fig. 8 (completion time & overhead vs CPU time) |
//! | `fig9_async` | Fig. 9 (throughput vs parallel async requests) |
//! | `micro` | §6.4 micro-claims (MAC vs signature, marshal vs crypto) |
//!
//! Absolute numbers come from the simulation's calibrated cost model, so
//! they are not comparable to the paper's testbed; the *shapes* (who wins,
//! scaling direction, crossovers) are the reproduction target. Each bench
//! prints a table and writes a CSV under `target/figures/`.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for the crate map and
//! the wire formats the cost model charges for.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use perpetual_ws::{
    PassiveService, PassiveUtils, Phase, Poll, RendezvousRouter, Router, Service, ServiceCtx,
    ServiceExecutor, SystemBuilder, TraceLevel, TxnService, TxnShim, WsEvent, TXN_ABORTED_FAULT,
};
use pws_simnet::metrics::{Metrics, Summary};
use pws_simnet::{SimDuration, SimTime};
use pws_soap::{MessageContext, XmlNode};
use std::io::Write as _;
use std::path::PathBuf;

/// Whether `PWS_BENCH_QUICK=1` trims sweeps for smoke runs.
pub fn quick_mode() -> bool {
    std::env::var("PWS_BENCH_QUICK").is_ok_and(|v| v == "1")
}

/// The `increment` null-op service of §6.2, with configurable per-request
/// processing cost (0 for the null benchmark, >0 for Fig. 8).
#[derive(Debug)]
pub struct Increment {
    counter: u64,
    processing: SimDuration,
}

impl Increment {
    /// A null-op service.
    pub fn null() -> Self {
        Increment {
            counter: 0,
            processing: SimDuration::ZERO,
        }
    }

    /// A service that burns `processing` CPU per request (the paper used
    /// message-digest calculations of the required length).
    pub fn with_processing(processing: SimDuration) -> Self {
        Increment {
            counter: 0,
            processing,
        }
    }
}

impl PassiveService for Increment {
    fn handle(&mut self, req: MessageContext, utils: &mut PassiveUtils) -> MessageContext {
        if self.processing > SimDuration::ZERO {
            utils.spend(self.processing);
        }
        let old = self.counter;
        self.counter += 1;
        req.reply_with(
            "",
            XmlNode::new("incrementResult").with_text(old.to_string()),
        )
    }
}

/// A replicated *calling* Web Service that drives `total` requests at a
/// target, keeping `window` in flight (window 1 ≈ the paper's synchronous
/// micro-benchmark loop; >1 ≈ the parallel asynchronous requests of
/// Fig. 9). Measurements are taken at the calling service, as in §6.2.
#[derive(Debug)]
pub struct LoadCaller {
    target_uri: String,
    total: u64,
    window: u64,
    sent: u64,
    done: u64,
}

impl LoadCaller {
    /// Creates a caller of service `target`.
    pub fn new(target: &str, total: u64, window: u64) -> Self {
        LoadCaller {
            target_uri: format!("urn:svc:{target}"),
            total,
            window: window.max(1),
            sent: 0,
            done: 0,
        }
    }

    fn request(&self, seq: u64) -> MessageContext {
        let mut mc = MessageContext::request(&self.target_uri, "increment");
        mc.body_mut().name = "increment".into();
        mc.body_mut().text = seq.to_string();
        mc
    }

    fn fire(&mut self, ctx: &mut ServiceCtx<'_>) {
        let req = self.request(self.sent);
        let _ = ctx.send(req);
        self.sent += 1;
    }
}

impl Service for LoadCaller {
    fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
        match ev {
            WsEvent::Init { .. } => {
                while self.sent < self.window.min(self.total) {
                    self.fire(ctx);
                }
            }
            WsEvent::Reply { .. } => {
                self.done += 1;
                if self.sent < self.total {
                    self.fire(ctx);
                }
            }
            WsEvent::Request { .. } | WsEvent::Time { .. } => {}
        }
        if self.done >= self.total {
            Poll::Done
        } else {
            Poll::any_reply()
        }
    }
}

/// Result of one two-tier micro-benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TwoTierResult {
    /// Requests per second observed at the calling service.
    pub throughput: f64,
    /// Mean request completion time in milliseconds.
    pub completion_ms: f64,
    /// Requests completed.
    pub completed: u64,
    /// Agreement batches executed across all voter groups.
    pub batches: u64,
    /// Mean requests per executed agreement batch (1.0 = batching never
    /// engaged).
    pub mean_batch: f64,
}

/// Runs the two-tier setting of §6.2: a calling service of `nc` replicas
/// issuing `total` requests (window `window`) at a target of `nt` replicas
/// whose per-request processing cost is `processing`, with the default
/// CLBFT batching cap.
pub fn run_two_tier(
    nc: u32,
    nt: u32,
    total: u64,
    window: u64,
    processing: SimDuration,
    seed: u64,
) -> TwoTierResult {
    run_two_tier_batched(nc, nt, total, window, processing, seed, 16)
}

/// [`run_two_tier`] with an explicit CLBFT batching cap (`max_batch = 1`
/// disables batching). Drives the fig8 batch-size sweep.
#[allow(clippy::too_many_arguments)]
pub fn run_two_tier_batched(
    nc: u32,
    nt: u32,
    total: u64,
    window: u64,
    processing: SimDuration,
    seed: u64,
    max_batch: usize,
) -> TwoTierResult {
    run_two_tier_traced(
        nc,
        nt,
        total,
        window,
        processing,
        seed,
        max_batch,
        TraceLevel::Off,
    )
    .0
}

/// [`run_two_tier_batched`] with request-lifecycle tracing at `trace`,
/// additionally returning the per-phase latency percentiles
/// ([`latency_fields`]) and time-series gauge summaries
/// ([`timeseries_fields`]) of the run for the headline JSON artifacts.
#[allow(clippy::too_many_arguments)]
pub fn run_two_tier_traced(
    nc: u32,
    nt: u32,
    total: u64,
    window: u64,
    processing: SimDuration,
    seed: u64,
    max_batch: usize,
    trace: TraceLevel,
) -> (TwoTierResult, Vec<(String, f64)>) {
    let mut b = SystemBuilder::new(seed);
    b.tracing(trace);
    b.max_batch_size(max_batch);
    b.service("caller", nc, move |_| {
        Box::new(LoadCaller::new("target", total, window))
    });
    b.passive_service("target", nt, move |_| {
        Box::new(Increment::with_processing(processing))
    });
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(3_600));
    let completed = sys.metrics().counter("perpetual.calls_completed") / nc as u64;
    // Elapsed = time of the last completed call (the sim clock jumps to the
    // deadline once the event queue drains).
    let elapsed = sys
        .metrics()
        .summary("perpetual.completion_time_s")
        .map_or(0.0, |s| s.max);
    let throughput = if elapsed > 0.0 {
        completed as f64 / elapsed
    } else {
        0.0
    };
    let result = TwoTierResult {
        throughput,
        completion_ms: if completed > 0 {
            elapsed * 1000.0 / completed as f64
        } else {
            f64::NAN
        },
        completed,
        batches: sys.metrics().batches("clbft.exec"),
        mean_batch: sys.metrics().mean_batch_occupancy("clbft.exec"),
    };
    let mut fields = latency_fields(sys.metrics());
    fields.extend(timeseries_fields(sys.metrics()));
    (result, fields)
}

/// Flattens a finished run's latency histograms into `(field, value)`
/// pairs for [`emit_bench_json`]: p50/p95/p99 of every recorded lifecycle
/// phase (tracing-enabled runs only), of the whole span, and of the
/// client-observed round trip.
pub fn latency_fields(m: &Metrics) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    let mut push = |label: String, p50: f64, p95: f64, p99: f64| {
        out.push((format!("lat_{label}_p50_ms"), p50));
        out.push((format!("lat_{label}_p95_ms"), p95));
        out.push((format!("lat_{label}_p99_ms"), p99));
    };
    for phase in Phase::ALL {
        if let Some(h) = m.histogram(phase.metric_key()) {
            push(phase.name().replace('-', "_"), h.p50(), h.p95(), h.p99());
        }
    }
    if let Some(h) = m.histogram("obs.lat.total_ms") {
        push("total".into(), h.p50(), h.p95(), h.p99());
    }
    if let Some(h) = m.histogram("client.latency_ms") {
        push("client".into(), h.p50(), h.p95(), h.p99());
    }
    out
}

/// Flattens a finished run's time-series gauge rings into `(field, value)`
/// pairs for [`emit_bench_json`]: p50/p95 over the retained samples of the
/// per-group queue-depth, in-flight, and batch-occupancy gauges,
/// aggregated across groups. Gauges record only on traced runs
/// ([`SystemBuilder::tracing`]), so untraced runs contribute nothing —
/// callers feed the traced companion run's metrics here.
pub fn timeseries_fields(m: &Metrics) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for (label, prefix) in [
        ("ts_queue_depth", "ts.queue_depth."),
        ("ts_inflight", "ts.inflight."),
        ("ts_occupancy", "ts.batch_occupancy."),
    ] {
        let mut values: Vec<f64> = Vec::new();
        for (name, ring) in m.gauges() {
            if name.starts_with(prefix) {
                values.extend(ring.iter().map(|(_, v)| v));
            }
        }
        if let Some(s) = Summary::of(&values) {
            out.push((format!("{label}_p50"), s.p50));
            out.push((format!("{label}_p95"), s.p95));
        }
    }
    out
}

/// Result of one sharded-throughput run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedResult {
    /// Aggregate requests per second across every client, measured from
    /// the first send to the last completion deployment-wide.
    pub throughput: f64,
    /// Requests completed across all clients.
    pub completed: u64,
    /// Agreed requests executed per shard, in shard order, **summed over
    /// the shard's replicas** (the per-group `clbft.exec.<g>.requests`
    /// counter is bumped at every replica, so divide by the replica count
    /// for per-request numbers) — the balance evidence.
    pub per_shard_requests: Vec<u64>,
}

/// Runs one cell of the sharded scale-out sweep: one logical null-op
/// service partitioned across `shards` voter groups of `n_per_shard`
/// replicas, saturated by `clients` scripted clients firing `per_client`
/// keyed requests each with `window` outstanding. Keys are the request
/// sequence numbers, so the rendezvous router spreads them uniformly and
/// every shard orders its own independent log — throughput scales *out*
/// with the shard count instead of asymptoting at one group's agreement
/// rate.
pub fn run_sharded(
    shards: u32,
    n_per_shard: u32,
    clients: u32,
    per_client: u64,
    window: u64,
    seed: u64,
) -> ShardedResult {
    run_sharded_traced(
        shards,
        n_per_shard,
        clients,
        per_client,
        window,
        seed,
        TraceLevel::Off,
    )
    .0
}

/// [`run_sharded`] with request-lifecycle tracing at `trace`, additionally
/// returning the run's latency percentiles ([`latency_fields`]) and
/// time-series gauge summaries ([`timeseries_fields`]).
pub fn run_sharded_traced(
    shards: u32,
    n_per_shard: u32,
    clients: u32,
    per_client: u64,
    window: u64,
    seed: u64,
    trace: TraceLevel,
) -> (ShardedResult, Vec<(String, f64)>) {
    let mut b = SystemBuilder::new(seed);
    b.tracing(trace);
    b.sharded_passive("target", shards, n_per_shard, |_, _| {
        Box::new(Increment::null())
    });
    for c in 0..clients {
        b.scripted_client_windowed(&format!("load{c}"), "target", per_client, window);
    }
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(3_600));
    let mut completed = 0u64;
    let mut first: Option<SimTime> = None;
    let mut last: Option<SimTime> = None;
    for c in 0..clients {
        let name = format!("load{c}");
        completed += sys.client_replies(&name).len() as u64;
        if let Some((f, l)) = sys.client_span(&name) {
            first = Some(first.map_or(f, |x| x.min(f)));
            last = Some(last.map_or(l, |x| x.max(l)));
        }
    }
    let span = match (first, last) {
        (Some(f), Some(l)) if l > f => (l - f).as_secs_f64(),
        _ => 0.0,
    };
    let per_shard_requests = (0..shards)
        .map(|k| {
            let gid = sys.group(&format!("target#{k}"));
            sys.metrics().counter(&format!("clbft.exec.{gid}.requests"))
        })
        .collect();
    let result = ShardedResult {
        throughput: if span > 0.0 {
            completed as f64 / span
        } else {
            0.0
        },
        completed,
        per_shard_requests,
    };
    let mut fields = latency_fields(sys.metrics());
    fields.extend(timeseries_fields(sys.metrics()));
    (result, fields)
}

/// A transactional null-op for the cross-shard mix sweep: counts
/// applications (single-key requests and committed transaction keys
/// alike), so exactly-once is auditable as a plain sum.
#[derive(Debug, Default)]
pub struct TxnIncrement {
    /// Applications on this shard.
    pub applied: u64,
}

impl Service for TxnIncrement {
    fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
        if let WsEvent::Request { request } = ev {
            self.applied += 1;
            let reply = request.reply_with(
                "",
                XmlNode::new("incrementResult").with_text(self.applied.to_string()),
            );
            ctx.reply(reply, &request);
        }
        Poll::Next
    }

    fn snapshot(&self) -> Vec<u8> {
        self.applied.to_be_bytes().to_vec()
    }

    fn restore(&mut self, snapshot: &[u8]) {
        let mut b = [0u8; 8];
        if snapshot.len() == 8 {
            b.copy_from_slice(snapshot);
        }
        self.applied = u64::from_be_bytes(b);
    }
}

impl TxnService for TxnIncrement {
    fn txn_execute(&mut self, _op: &str, keys: &[String]) -> String {
        self.applied += keys.len() as u64;
        format!("n={}", keys.len())
    }
}

/// A [`LoadCaller`] variant that marks every `cross_every`-th request as
/// *cross-shard*: its body names two keys owned by different shards, so a
/// transactional sharded target must run it as a two-phase commit. All
/// keys are unique per caller, so concurrent transactions never contend
/// on locks.
#[derive(Debug)]
pub struct MixedCaller {
    target_uri: String,
    total: u64,
    window: u64,
    cross_every: u64,
    shards: u32,
    tag: u32,
    sent: u64,
    /// Requests completed (commits, aborts, and single-key replies).
    pub done: u64,
    /// Cross-shard transactions this caller saw commit.
    pub commits: u64,
    /// Cross-shard transactions this caller saw abort.
    pub aborts: u64,
}

impl MixedCaller {
    /// Creates a caller of sharded service `target` (over `shards`
    /// shards); `tag` disambiguates this caller's key space.
    pub fn new(
        target: &str,
        total: u64,
        window: u64,
        cross_every: u64,
        shards: u32,
        tag: u32,
    ) -> Self {
        MixedCaller {
            target_uri: format!("urn:svc:{target}"),
            total,
            window: window.max(1),
            cross_every,
            shards,
            tag,
            sent: 0,
            done: 0,
            commits: 0,
            aborts: 0,
        }
    }

    fn key_for(&self, seq: u64) -> String {
        let key = format!("c{}-{seq}", self.tag);
        if self.shards < 2 || self.cross_every == 0 || !seq.is_multiple_of(self.cross_every) {
            return key;
        }
        let router = RendezvousRouter::new();
        let own = router.shard(&key, self.shards);
        let partner = (0..64)
            .map(|j| format!("c{}-{seq}-p{j}", self.tag))
            .find(|p| router.shard(p, self.shards) != own);
        match partner {
            Some(p) => format!("{key}|{p}"),
            None => key,
        }
    }

    fn fire(&mut self, ctx: &mut ServiceCtx<'_>) {
        let mut mc = MessageContext::request(&self.target_uri, "increment");
        mc.body_mut().name = "increment".into();
        mc.body_mut().text = self.key_for(self.sent);
        let _ = ctx.send(mc);
        self.sent += 1;
    }
}

impl Service for MixedCaller {
    fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
        match ev {
            WsEvent::Init { .. } => {
                while self.sent < self.window.min(self.total) {
                    self.fire(ctx);
                }
            }
            WsEvent::Reply { reply, .. } => {
                self.done += 1;
                match reply.envelope().as_fault() {
                    Some(f) if f.code == TXN_ABORTED_FAULT => self.aborts += 1,
                    Some(_) => {}
                    None if reply.body().text.starts_with("txn=commit") => self.commits += 1,
                    None => {}
                }
                if self.sent < self.total {
                    self.fire(ctx);
                }
            }
            WsEvent::Request { .. } | WsEvent::Time { .. } => {}
        }
        if self.done >= self.total {
            Poll::Done
        } else {
            Poll::any_reply()
        }
    }
}

/// Result of one mixed (cross-shard transaction) sharded run.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedResult {
    /// Requests completed across all callers.
    pub completed: u64,
    /// Cross-shard commits observed at the callers.
    pub commits: u64,
    /// Cross-shard aborts observed at the callers.
    pub aborts: u64,
    /// Applications summed over all shards (replica 0 of each): for an
    /// exactly-once run this equals single-key requests + 2 × commits.
    pub applied: u64,
}

/// Runs the cross-shard transaction mix: a transactional sharded null-op
/// target under `clients` callers firing `per_client` keyed requests each
/// (window `window`), every `cross_every`-th of which spans two shards
/// and runs as a 2PC. `cross_every = 10` is the 10 % mix of the CI smoke.
pub fn run_sharded_mixed(
    shards: u32,
    n_per_shard: u32,
    clients: u32,
    per_client: u64,
    window: u64,
    cross_every: u64,
    seed: u64,
) -> MixedResult {
    let mut b = SystemBuilder::new(seed);
    b.sharded_txn("target", shards, n_per_shard, |_, _| {
        Box::<TxnIncrement>::default()
    });
    for c in 0..clients {
        b.service(&format!("load{c}"), 1, move |_| {
            Box::new(MixedCaller::new(
                "target",
                per_client,
                window,
                cross_every,
                shards,
                c,
            ))
        });
    }
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(3_600));
    let (mut completed, mut commits, mut aborts) = (0u64, 0u64, 0u64);
    for c in 0..clients {
        let caller = sys
            .replica_mut(&format!("load{c}"), 0)
            .expect("caller group")
            .executor_mut::<ServiceExecutor>()
            .expect("service executor")
            .service_mut::<MixedCaller>()
            .expect("mixed caller");
        completed += caller.done;
        commits += caller.commits;
        aborts += caller.aborts;
    }
    let mut applied = 0u64;
    for shard in 0..shards {
        let shim = sys
            .replica_mut(&format!("target#{shard}"), 0)
            .expect("shard replica")
            .executor_mut::<ServiceExecutor>()
            .expect("service executor")
            .service_mut::<TxnShim>()
            .expect("txn shim");
        applied += shim.inner_mut::<TxnIncrement>().expect("inner").applied;
    }
    MixedResult {
        completed,
        commits,
        aborts,
        applied,
    }
}

/// Prints an aligned table and writes it as CSV under `target/figures/`.
pub fn emit_table(name: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {name} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:>w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        s
    };
    println!(
        "{}",
        line(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    );
    for row in rows {
        println!("{}", line(row));
    }
    if let Err(e) = write_csv(name, header, rows) {
        eprintln!("(csv not written: {e})");
    }
}

/// Headline benches whose JSON artifact is mirrored at the repository
/// root and committed, so the perf trajectory accumulates in git history
/// instead of dying with CI's discarded `target/` dir.
pub const COMMITTED_BENCH_JSON: &[&str] = &["fig8", "sharded"];

/// Writes a flat JSON object of headline numbers to
/// `target/figures/BENCH_<name>.json`, so CI (and humans) can diff a
/// run's key results without parsing the printed tables. Values are
/// emitted with enough precision to round-trip `f64` exactly. Headline
/// artifacts ([`COMMITTED_BENCH_JSON`]) are also mirrored to
/// `BENCH_<name>.json` at the repository root.
pub fn emit_bench_json(name: &str, fields: &[(&str, f64)]) {
    let mut body = String::from("{\n");
    for (i, (key, value)) in fields.iter().enumerate() {
        let comma = if i + 1 < fields.len() { "," } else { "" };
        body.push_str(&format!("  \"{key}\": {value}{comma}\n"));
    }
    body.push('}');
    body.push('\n');
    let dir = target_root().join("figures");
    let path = dir.join(format!("BENCH_{name}.json"));
    let write = std::fs::create_dir_all(&dir).and_then(|_| std::fs::write(&path, &body));
    match write {
        Ok(()) => println!("(json -> {})", path.display()),
        Err(e) => eprintln!("(json not written: {e})"),
    }
    if COMMITTED_BENCH_JSON.contains(&name) {
        let root = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."));
        let mirror = root.join(format!("BENCH_{name}.json"));
        match std::fs::write(&mirror, &body) {
            Ok(()) => println!("(json mirrored -> {})", mirror.display()),
            Err(e) => eprintln!("(json mirror not written: {e})"),
        }
    }
}

/// The cargo target dir this executable was built into. Bench executables
/// run with cwd = the package dir (not the workspace root), so a relative
/// path would scatter CSVs under crates/bench/; instead walk up from the
/// binary itself (<target>/<profile>/deps/...) to the directory cargo marks
/// with CACHEDIR.TAG, which honors CARGO_TARGET_DIR exactly. Falls back to
/// the build-time workspace target for unusual layouts.
fn target_root() -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|exe| {
            exe.ancestors()
                .find(|a| a.join("CACHEDIR.TAG").is_file())
                .map(std::path::Path::to_path_buf)
        })
        .unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../target")))
}

fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<()> {
    let mut path = target_root();
    path.push("figures");
    std::fs::create_dir_all(&path)?;
    path.push(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path)?;
    writeln!(f, "{}", header.join(","))?;
    for row in rows {
        writeln!(f, "{}", row.join(","))?;
    }
    println!("(csv: {})", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_tier_null_run_completes() {
        let r = run_two_tier(1, 1, 50, 1, SimDuration::ZERO, 3);
        assert_eq!(r.completed, 50);
        assert!(r.throughput > 0.0);
        assert!(r.completion_ms > 0.0);
    }

    #[test]
    fn replication_reduces_null_throughput() {
        let base = run_two_tier(1, 1, 60, 1, SimDuration::ZERO, 3);
        let repl = run_two_tier(4, 4, 60, 1, SimDuration::ZERO, 3);
        assert_eq!(repl.completed, 60);
        assert!(
            repl.throughput < base.throughput,
            "replication must cost something: {} vs {}",
            repl.throughput,
            base.throughput
        );
    }

    #[test]
    fn async_window_raises_throughput() {
        let sync = run_two_tier(4, 4, 60, 1, SimDuration::ZERO, 3);
        let parallel = run_two_tier(4, 4, 60, 10, SimDuration::ZERO, 3);
        assert_eq!(parallel.completed, 60);
        assert!(
            parallel.throughput > sync.throughput * 1.5,
            "pipelining should raise throughput substantially: {} vs {}",
            parallel.throughput,
            sync.throughput
        );
    }

    #[test]
    fn batching_engages_and_raises_windowed_throughput() {
        // Window 16 keeps the agreement pipeline saturated, so the primary
        // accumulates: with the cap at 16 the mean occupancy must rise
        // above 1 and throughput must beat the unbatched (cap 1) run.
        let unbatched = run_two_tier_batched(4, 4, 60, 16, SimDuration::ZERO, 3, 1);
        let batched = run_two_tier_batched(4, 4, 60, 16, SimDuration::ZERO, 3, 16);
        assert_eq!(batched.completed, 60);
        assert_eq!(unbatched.completed, 60);
        assert!(
            (unbatched.mean_batch - 1.0).abs() < 1e-9,
            "cap 1 disables batching, occupancy {}",
            unbatched.mean_batch
        );
        assert!(
            batched.mean_batch > 1.5,
            "batching engaged via metrics, occupancy {}",
            batched.mean_batch
        );
        assert!(
            batched.throughput > unbatched.throughput,
            "batch 16 must out-run batch 1: {} vs {}",
            batched.throughput,
            unbatched.throughput
        );
    }

    #[test]
    fn processing_time_shrinks_relative_overhead() {
        // The heart of Fig. 8: as request processing grows, the *relative*
        // cost of replication falls.
        let t = SimDuration::from_millis(6);
        let base_null = run_two_tier(1, 1, 40, 1, SimDuration::ZERO, 3);
        let repl_null = run_two_tier(4, 4, 40, 1, SimDuration::ZERO, 3);
        let base_busy = run_two_tier(1, 1, 40, 1, t, 3);
        let repl_busy = run_two_tier(4, 4, 40, 1, t, 3);
        let overhead_null = repl_null.completion_ms / base_null.completion_ms;
        let overhead_busy = repl_busy.completion_ms / base_busy.completion_ms;
        assert!(
            overhead_busy < overhead_null,
            "overhead must fall with processing time: {overhead_busy} vs {overhead_null}"
        );
    }
}
