//! Client-side reply aggregation.
//!
//! A CLBFT client accepts a result once it has `f + 1` matching replies from
//! distinct replicas — at least one of them must be correct. The same rule
//! appears twice in Perpetual: the target voter primary waits for `f_c + 1`
//! matching requests (paper stage 2), and the responder collects `f_t + 1`
//! matching replies (stage 5).
//!
//! Request batching is invisible here: batches are an *agreement-side*
//! packing (many requests per sequence slot), and replicas still reply per
//! request. The only client-observable effect is that replies for requests
//! that rode the same batch tend to arrive together, since their slot
//! commits and executes as one unit.

use crate::ReplicaId;
use pws_crypto::sha256::Digest32;
use std::collections::{HashMap, HashSet};

/// Collects votes keyed by digest until a threshold of distinct voters agree.
///
/// Each replica gets exactly one counted vote *total*, not one per digest:
/// a correct replica replies once, so a second vote from the same replica —
/// for any digest — is Byzantine noise and is dropped without being stored.
/// That keeps the vote table bounded by the group size `n` no matter how
/// many distinct-digest replies a faulty replica floods.
#[derive(Debug, Clone)]
pub struct ReplyCollector<T> {
    threshold: usize,
    votes: HashMap<Digest32, Vec<(ReplicaId, T)>>,
    voted: HashSet<ReplicaId>,
    decided: bool,
}

impl<T: Clone> ReplyCollector<T> {
    /// Creates a collector that decides at `threshold` matching votes.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(threshold: usize) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        ReplyCollector {
            threshold,
            votes: HashMap::new(),
            voted: HashSet::new(),
            decided: false,
        }
    }

    /// Adds a vote. Returns the agreed value the first time the threshold is
    /// reached, `None` otherwise. Only the first vote from each replica
    /// counts; later votes — same digest or not — are ignored.
    pub fn add(&mut self, from: ReplicaId, digest: Digest32, value: T) -> Option<T> {
        if self.decided {
            return None;
        }
        if !self.voted.insert(from) {
            return None;
        }
        let entry = self.votes.entry(digest).or_default();
        entry.push((from, value));
        if entry.len() >= self.threshold {
            self.decided = true;
            Some(entry[0].1.clone())
        } else {
            None
        }
    }

    /// Whether a value has been decided.
    pub fn is_decided(&self) -> bool {
        self.decided
    }

    /// Total number of votes received so far (across digests).
    pub fn votes(&self) -> usize {
        self.votes.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pws_crypto::sha256;

    #[test]
    fn decides_at_threshold() {
        let mut c = ReplyCollector::new(2);
        let d = sha256(b"result");
        assert!(c.add(ReplicaId(0), d, "result").is_none());
        assert!(!c.is_decided());
        assert_eq!(c.add(ReplicaId(1), d, "result"), Some("result"));
        assert!(c.is_decided());
        // Further votes are ignored.
        assert!(c.add(ReplicaId(2), d, "result").is_none());
    }

    #[test]
    fn duplicate_voters_do_not_count() {
        let mut c = ReplyCollector::new(2);
        let d = sha256(b"x");
        assert!(c.add(ReplicaId(0), d, 1).is_none());
        assert!(c.add(ReplicaId(0), d, 1).is_none());
        assert_eq!(c.votes(), 1);
        assert_eq!(c.add(ReplicaId(1), d, 1), Some(1));
    }

    #[test]
    fn conflicting_digests_tracked_separately() {
        let mut c = ReplyCollector::new(2);
        let good = sha256(b"good");
        let bad = sha256(b"bad");
        assert!(c.add(ReplicaId(0), bad, "bad").is_none());
        assert!(c.add(ReplicaId(1), good, "good").is_none());
        assert_eq!(c.add(ReplicaId(2), good, "good"), Some("good"));
    }

    #[test]
    fn threshold_one_decides_immediately() {
        let mut c = ReplyCollector::new(1);
        let d = sha256(b"v");
        assert_eq!(c.add(ReplicaId(3), d, 9), Some(9));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_panics() {
        let _ = ReplyCollector::<()>::new(0);
    }

    /// Regression: one Byzantine replica flooding distinct-digest replies
    /// must neither grow the vote table nor influence the decision. Before
    /// the per-replica dedup, each of these votes was stored, so the table
    /// grew linearly with the flood.
    #[test]
    fn distinct_digest_flood_from_one_replica_stays_bounded() {
        let mut c = ReplyCollector::new(2);
        for i in 0u64..10_000 {
            let d = sha256(&i.to_be_bytes());
            assert!(c.add(ReplicaId(3), d, i).is_none());
        }
        assert_eq!(c.votes(), 1, "only the first vote may be stored");
        assert!(!c.is_decided());
        // Honest replicas still decide normally afterwards.
        let good = sha256(b"good");
        assert!(c.add(ReplicaId(0), good, 42).is_none());
        assert_eq!(c.add(ReplicaId(1), good, 42), Some(42));
    }

    #[test]
    fn equivocating_replica_gets_one_counted_vote() {
        let mut c = ReplyCollector::new(2);
        let a = sha256(b"a");
        let b = sha256(b"b");
        assert!(c.add(ReplicaId(0), a, "a").is_none());
        // Same replica switching digests: ignored, not re-counted.
        assert!(c.add(ReplicaId(0), b, "b").is_none());
        assert_eq!(c.votes(), 1);
        // Its first (and only) vote still contributes to that digest.
        assert_eq!(c.add(ReplicaId(1), a, "a"), Some("a"));
    }

    mod adversarial {
        use super::*;
        use proptest::prelude::*;

        /// One adversarial vote packed into a `u32`: replica in the low
        /// byte (mod 6), digest seed next (mod 4), value above. Small id
        /// spaces force floods, equivocation, and late duplicates.
        fn unpack(raw: u32) -> (u32, u8, u8) {
            (raw % 6, ((raw >> 8) % 4) as u8, (raw >> 16) as u8)
        }

        proptest! {
            #[test]
            fn table_bounded_by_distinct_voters(votes in proptest::collection::vec(any::<u32>(), 0..200)) {
                let mut c = ReplyCollector::new(3);
                let mut seen = std::collections::HashSet::new();
                let mut decided_at: Option<usize> = None;
                for (i, raw) in votes.iter().enumerate() {
                    let (r, d, v) = unpack(*raw);
                    let got = c.add(ReplicaId(r), sha256(&[d]), v);
                    let fresh = seen.insert(r);
                    // Only a replica's first-ever vote can be the deciding
                    // one, and nothing decides twice.
                    if got.is_some() {
                        prop_assert!(fresh, "vote {i}: duplicate voter decided");
                        prop_assert!(decided_at.is_none(), "decided twice");
                        decided_at = Some(i);
                    }
                    prop_assert!(c.votes() <= seen.len(), "table exceeds distinct voters");
                }
                prop_assert!(c.votes() <= 6, "table exceeds group size");
            }

            #[test]
            fn decision_matches_threshold_of_first_votes(votes in proptest::collection::vec(any::<u32>(), 0..200)) {
                let mut c = ReplyCollector::new(2);
                // Model: count only each replica's first vote, per digest.
                let mut first: std::collections::HashMap<u32, u8> = std::collections::HashMap::new();
                let mut counts: std::collections::HashMap<u8, usize> = std::collections::HashMap::new();
                let mut model_decided = false;
                for raw in votes {
                    let (r, d, v) = unpack(raw);
                    let real = c.add(ReplicaId(r), sha256(&[d]), v);
                    if !model_decided && !first.contains_key(&r) {
                        first.insert(r, d);
                        let n = counts.entry(d).or_insert(0);
                        *n += 1;
                        if *n >= 2 {
                            model_decided = true;
                            prop_assert!(real.is_some(), "model decided, collector did not");
                            continue;
                        }
                    }
                    prop_assert!(real.is_none(), "collector decided when model did not");
                }
                prop_assert_eq!(c.is_decided(), model_decided);
            }
        }
    }
}
