//! Client-side reply aggregation.
//!
//! A CLBFT client accepts a result once it has `f + 1` matching replies from
//! distinct replicas — at least one of them must be correct. The same rule
//! appears twice in Perpetual: the target voter primary waits for `f_c + 1`
//! matching requests (paper stage 2), and the responder collects `f_t + 1`
//! matching replies (stage 5).
//!
//! Request batching is invisible here: batches are an *agreement-side*
//! packing (many requests per sequence slot), and replicas still reply per
//! request. The only client-observable effect is that replies for requests
//! that rode the same batch tend to arrive together, since their slot
//! commits and executes as one unit.

use crate::ReplicaId;
use pws_crypto::sha256::Digest32;
use std::collections::HashMap;

/// Collects votes keyed by digest until a threshold of distinct voters agree.
#[derive(Debug, Clone)]
pub struct ReplyCollector<T> {
    threshold: usize,
    votes: HashMap<Digest32, Vec<(ReplicaId, T)>>,
    decided: bool,
}

impl<T: Clone> ReplyCollector<T> {
    /// Creates a collector that decides at `threshold` matching votes.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` is zero.
    pub fn new(threshold: usize) -> Self {
        assert!(threshold > 0, "threshold must be positive");
        ReplyCollector {
            threshold,
            votes: HashMap::new(),
            decided: false,
        }
    }

    /// Adds a vote. Returns the agreed value the first time the threshold is
    /// reached, `None` otherwise. Duplicate votes from the same replica for
    /// the same digest are ignored.
    pub fn add(&mut self, from: ReplicaId, digest: Digest32, value: T) -> Option<T> {
        if self.decided {
            return None;
        }
        let entry = self.votes.entry(digest).or_default();
        if entry.iter().any(|(r, _)| *r == from) {
            return None;
        }
        entry.push((from, value));
        if entry.len() >= self.threshold {
            self.decided = true;
            Some(entry[0].1.clone())
        } else {
            None
        }
    }

    /// Whether a value has been decided.
    pub fn is_decided(&self) -> bool {
        self.decided
    }

    /// Total number of votes received so far (across digests).
    pub fn votes(&self) -> usize {
        self.votes.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pws_crypto::sha256;

    #[test]
    fn decides_at_threshold() {
        let mut c = ReplyCollector::new(2);
        let d = sha256(b"result");
        assert!(c.add(ReplicaId(0), d, "result").is_none());
        assert!(!c.is_decided());
        assert_eq!(c.add(ReplicaId(1), d, "result"), Some("result"));
        assert!(c.is_decided());
        // Further votes are ignored.
        assert!(c.add(ReplicaId(2), d, "result").is_none());
    }

    #[test]
    fn duplicate_voters_do_not_count() {
        let mut c = ReplyCollector::new(2);
        let d = sha256(b"x");
        assert!(c.add(ReplicaId(0), d, 1).is_none());
        assert!(c.add(ReplicaId(0), d, 1).is_none());
        assert_eq!(c.votes(), 1);
        assert_eq!(c.add(ReplicaId(1), d, 1), Some(1));
    }

    #[test]
    fn conflicting_digests_tracked_separately() {
        let mut c = ReplyCollector::new(2);
        let good = sha256(b"good");
        let bad = sha256(b"bad");
        assert!(c.add(ReplicaId(0), bad, "bad").is_none());
        assert!(c.add(ReplicaId(1), good, "good").is_none());
        assert_eq!(c.add(ReplicaId(2), good, "good"), Some("good"));
    }

    #[test]
    fn threshold_one_decides_immediately() {
        let mut c = ReplyCollector::new(1);
        let d = sha256(b"v");
        assert_eq!(c.add(ReplicaId(3), d, 9), Some(9));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_panics() {
        let _ = ReplyCollector::<()>::new(0);
    }
}
