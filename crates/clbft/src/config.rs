//! Group configuration.

use crate::ReplicaId;

/// Static configuration of one CLBFT replica group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Number of replicas; must be `3f + 1` for the tolerated `f`.
    pub n: u32,
    /// Checkpoint interval: a checkpoint is taken every `k` executions.
    pub checkpoint_interval: u64,
    /// Log window size (high watermark = low watermark + window).
    pub watermark_window: u64,
}

impl Config {
    /// A configuration for `n` replicas with default checkpointing.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n != 3f + 1` for some `f >= 0` — i.e. `n` must
    /// be in `{1, 4, 7, 10, ...}`, matching the replica group sizes the
    /// paper evaluates.
    pub fn new(n: u32) -> Self {
        assert!(
            n >= 1 && (n - 1).is_multiple_of(3),
            "n must be 3f+1, got {n}"
        );
        Config {
            n,
            checkpoint_interval: 64,
            watermark_window: 256,
        }
    }

    /// The number of Byzantine faults this group tolerates: `f = (n-1)/3`.
    pub fn f(&self) -> u32 {
        (self.n - 1) / 3
    }

    /// Quorum of matching `prepare`s needed (beyond the pre-prepare): `2f`.
    pub fn prepare_quorum(&self) -> usize {
        2 * self.f() as usize
    }

    /// Quorum of matching `commit`s needed: `2f + 1`.
    pub fn commit_quorum(&self) -> usize {
        2 * self.f() as usize + 1
    }

    /// Quorum of matching checkpoint messages for stability: `2f + 1`.
    pub fn checkpoint_quorum(&self) -> usize {
        self.commit_quorum()
    }

    /// Quorum of view-change messages the new primary needs: `2f + 1`.
    pub fn view_change_quorum(&self) -> usize {
        self.commit_quorum()
    }

    /// All replica ids in the group.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> {
        (0..self.n).map(ReplicaId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorums_for_paper_sizes() {
        for (n, f, prep, commit) in [(1, 0, 0, 1), (4, 1, 2, 3), (7, 2, 4, 5), (10, 3, 6, 7)] {
            let c = Config::new(n);
            assert_eq!(c.f(), f, "n={n}");
            assert_eq!(c.prepare_quorum(), prep, "n={n}");
            assert_eq!(c.commit_quorum(), commit, "n={n}");
            assert_eq!(c.checkpoint_quorum(), commit);
            assert_eq!(c.view_change_quorum(), commit);
        }
    }

    #[test]
    #[should_panic(expected = "3f+1")]
    fn rejects_non_3f1() {
        Config::new(5);
    }

    #[test]
    fn replicas_enumerates_all() {
        let ids: Vec<_> = Config::new(4).replicas().collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[3], ReplicaId(3));
    }
}
