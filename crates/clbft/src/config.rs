//! Group configuration.

use crate::ReplicaId;

/// Static configuration of one CLBFT replica group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Config {
    /// Number of replicas; must be `3f + 1` for the tolerated `f`.
    pub n: u32,
    /// Checkpoint interval: a checkpoint is taken every `k` executions.
    pub checkpoint_interval: u64,
    /// Log window size (high watermark = low watermark + window).
    pub watermark_window: u64,
    /// Maximum number of requests the primary seals into one batch (one
    /// agreement slot). `1` disables batching entirely.
    pub max_batch_size: usize,
    /// Number of slots the primary keeps in flight (proposed but not yet
    /// executed locally) before it starts accumulating requests into
    /// batches. Within this depth requests propose immediately, so
    /// agreement for slot `s + 1` overlaps execution of slot `s`; beyond
    /// it, arrivals coalesce until a slot completes (freeing pipeline
    /// capacity), the watermark advances, or the batch timer fires —
    /// `max_batch_size` caps how much a seal takes, it does not trigger
    /// one. Bounded above by `watermark_window`.
    pub pipeline_depth: u64,
    /// Upper bound, in microseconds, on how long a queued request may wait
    /// for a batch to seal. The replica itself owns no clock — it only
    /// emits [`crate::Action::BatchTimer`] commands — so the transport
    /// harness reads this value (via [`crate::Replica::config`]) to size
    /// the real timer.
    pub batch_delay_us: u64,
    /// Snapshot page size in bytes for Merkle-partitioned state transfer
    /// and incremental checkpoints: the application snapshot is chunked
    /// into pages of this size (see [`crate::pages`]), checkpoint digests
    /// cover the page tree's root, and state transfer fetches only pages
    /// whose digests differ. Must be identical across the group — page
    /// geometry is digest-covered, so a mismatched replica simply never
    /// agrees with any checkpoint.
    pub page_size: u32,
    /// Speculative execution (Zyzzyva-style): when set, replicas emit
    /// [`crate::Action::SpeculativeExecute`] as soon as a slot pre-prepares
    /// in the current view, overlapping application execution with the
    /// prepare/commit rounds. Commit then finalizes the speculative result
    /// without re-executing; a view change that discards the slot emits
    /// [`crate::Action::RollbackSpeculation`]. Off by default.
    pub speculative: bool,
    /// Collect per-request lifecycle phase events
    /// ([`crate::ObsEvent::Phase`]) for the harness to drain via
    /// [`crate::Replica::take_obs_events`]. Off by default; flight events
    /// ([`crate::ObsEvent::Flight`]) are collected regardless — they are
    /// rare and the buffer bounded. Purely observational: no protocol
    /// decision reads it.
    pub obs_phases: bool,
    /// Collect protocol audit observations ([`crate::ObsEvent::Audit`])
    /// for the harness to feed the online invariant auditor. Off by
    /// default; purely observational, like `obs_phases`.
    pub audit: bool,
}

impl Config {
    /// A configuration for `n` replicas with default checkpointing.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `n != 3f + 1` for some `f >= 0` — i.e. `n` must
    /// be in `{1, 4, 7, 10, ...}`, matching the replica group sizes the
    /// paper evaluates.
    pub fn new(n: u32) -> Self {
        assert!(
            n >= 1 && (n - 1).is_multiple_of(3),
            "n must be 3f+1, got {n}"
        );
        Config {
            n,
            checkpoint_interval: 64,
            watermark_window: 256,
            max_batch_size: 16,
            pipeline_depth: 2,
            batch_delay_us: 1_000,
            page_size: crate::pages::DEFAULT_PAGE_SIZE,
            speculative: false,
            obs_phases: false,
            audit: false,
        }
    }

    /// The effective in-flight proposal bound: the configured pipeline
    /// depth, never exceeding the watermark window.
    pub fn effective_pipeline_depth(&self) -> u64 {
        self.pipeline_depth.min(self.watermark_window)
    }

    /// The number of Byzantine faults this group tolerates: `f = (n-1)/3`.
    pub fn f(&self) -> u32 {
        (self.n - 1) / 3
    }

    /// Quorum of matching `prepare`s needed (beyond the pre-prepare): `2f`.
    pub fn prepare_quorum(&self) -> usize {
        2 * self.f() as usize
    }

    /// Quorum of matching `commit`s needed: `2f + 1`.
    pub fn commit_quorum(&self) -> usize {
        2 * self.f() as usize + 1
    }

    /// Quorum of matching checkpoint messages for stability: `2f + 1`.
    pub fn checkpoint_quorum(&self) -> usize {
        self.commit_quorum()
    }

    /// Quorum of view-change messages the new primary needs: `2f + 1`.
    pub fn view_change_quorum(&self) -> usize {
        self.commit_quorum()
    }

    /// All replica ids in the group.
    pub fn replicas(&self) -> impl Iterator<Item = ReplicaId> {
        (0..self.n).map(ReplicaId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quorums_for_paper_sizes() {
        for (n, f, prep, commit) in [(1, 0, 0, 1), (4, 1, 2, 3), (7, 2, 4, 5), (10, 3, 6, 7)] {
            let c = Config::new(n);
            assert_eq!(c.f(), f, "n={n}");
            assert_eq!(c.prepare_quorum(), prep, "n={n}");
            assert_eq!(c.commit_quorum(), commit, "n={n}");
            assert_eq!(c.checkpoint_quorum(), commit);
            assert_eq!(c.view_change_quorum(), commit);
        }
    }

    #[test]
    #[should_panic(expected = "3f+1")]
    fn rejects_non_3f1() {
        Config::new(5);
    }

    #[test]
    fn batching_defaults_are_sane() {
        let c = Config::new(4);
        assert!(c.max_batch_size >= 1);
        assert!(c.pipeline_depth >= 1);
        assert_eq!(c.effective_pipeline_depth(), c.pipeline_depth);
        let mut wide = c.clone();
        wide.pipeline_depth = wide.watermark_window + 100;
        assert_eq!(wide.effective_pipeline_depth(), wide.watermark_window);
    }

    #[test]
    fn replicas_enumerates_all() {
        let ids: Vec<_> = Config::new(4).replicas().collect();
        assert_eq!(ids.len(), 4);
        assert_eq!(ids[3], ReplicaId(3));
    }
}
