//! Compact executed-request deduplication set.
//!
//! Checkpoints and state transfer used to carry the dedup table as a flat,
//! sorted `Vec<RequestId>` — 16 bytes per executed request, forever. This
//! module replaces it with a per-origin compaction (the ROADMAP's
//! "per-origin last-counter" item): request counters from one origin are
//! overwhelmingly contiguous (a caller group's `req_no`, an abort's
//! `call_no`, a time vote's token all count up), so each origin collapses
//! to a *contiguous prefix bound* plus a small sparse residue of counters
//! that executed out of order. An origin that has executed a million
//! requests in order costs 20 bytes instead of 16 MB.
//!
//! Origins whose single executed counter rides on entropy (result events
//! fold the reply digest into the origin, so each is unique) are encoded
//! in a dedicated singleton section at the old 16 bytes per id — the
//! compaction never costs more than the flat list it replaces.

use crate::wire::{Decoder, Encoder, WireError};
use crate::RequestId;
use std::collections::{BTreeMap, BTreeSet};

/// Per-origin executed counters: the contiguous prefix `[0, next)` plus
/// the out-of-order residue at or above `next`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct OriginSet {
    /// Every counter below this is executed.
    next: u64,
    /// Executed counters `>= next` (holes below them are still pending).
    extras: BTreeSet<u64>,
}

impl OriginSet {
    fn insert(&mut self, counter: u64) -> bool {
        if counter < self.next {
            return false;
        }
        if counter == self.next {
            self.next += 1;
            // Residue that became contiguous folds into the prefix.
            while self.extras.remove(&self.next) {
                self.next += 1;
            }
            return true;
        }
        self.extras.insert(counter)
    }

    fn contains(&self, counter: u64) -> bool {
        counter < self.next || self.extras.contains(&counter)
    }

    fn id_count(&self) -> u64 {
        self.next + self.extras.len() as u64
    }

    /// Whether this origin holds exactly one executed counter that is not
    /// a prefix (the digest-mixed result-event shape): encoded as a raw
    /// `(origin, counter)` singleton, never costing more than the old flat
    /// list did.
    fn singleton(&self) -> Option<u64> {
        if self.next == 0 && self.extras.len() == 1 {
            self.extras.first().copied()
        } else {
            None
        }
    }
}

/// The executed-request dedup set carried in checkpoints and
/// `StateResponse`s, compacted per origin.
///
/// Canonical by construction: the same set of [`RequestId`]s always
/// produces the same structure and therefore the same encoding, so every
/// correct replica derives the identical checkpoint digest from it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecutedSet {
    origins: BTreeMap<u64, OriginSet>,
}

impl ExecutedSet {
    /// An empty set.
    pub fn new() -> Self {
        ExecutedSet::default()
    }

    /// Marks `id` executed. Returns whether it was newly inserted.
    pub fn insert(&mut self, id: RequestId) -> bool {
        self.origins
            .entry(id.origin)
            .or_default()
            .insert(id.counter)
    }

    /// Whether `id` has executed.
    pub fn contains(&self, id: &RequestId) -> bool {
        self.origins
            .get(&id.origin)
            .is_some_and(|o| o.contains(id.counter))
    }

    /// Number of executed request ids the set covers (prefixes included).
    pub fn id_count(&self) -> u64 {
        self.origins.values().map(OriginSet::id_count).sum()
    }

    /// Whether the set covers nothing.
    pub fn is_empty(&self) -> bool {
        self.origins.is_empty()
    }

    /// Number of wire entries the encoding carries: one per origin plus
    /// one per out-of-order residue counter. This — not [`Self::id_count`] —
    /// is what the wire caps bound; a million contiguous executions still
    /// cost one entry.
    pub fn wire_entries(&self) -> usize {
        self.origins.values().map(|o| 1 + o.extras.len()).sum()
    }

    /// Canonical encoding: a ranged section (`origin`, `next`,
    /// `extra_count`, extras…) for compacted origins and a singleton
    /// section (`origin`, `counter`) for origins holding one stray id.
    pub fn encode_into(&self, e: &mut Encoder) {
        let mut ranged: Vec<(&u64, &OriginSet)> = Vec::new();
        let mut singles: Vec<(u64, u64)> = Vec::new();
        for (origin, set) in &self.origins {
            match set.singleton() {
                Some(counter) => singles.push((*origin, counter)),
                None => ranged.push((origin, set)),
            }
        }
        e.put_u32(ranged.len() as u32);
        for (origin, set) in ranged {
            e.put_u64(*origin);
            e.put_u64(set.next);
            e.put_u32(set.extras.len() as u32);
            for c in &set.extras {
                e.put_u64(*c);
            }
        }
        e.put_u32(singles.len() as u32);
        for (origin, counter) in singles {
            e.put_u64(origin);
            e.put_u64(counter);
        }
    }

    /// The canonical encoding as a byte vector (feeds the checkpoint
    /// digest).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        self.encode_into(&mut e);
        e.finish().to_vec()
    }

    /// Decodes a set, normalizing as it goes (duplicate or
    /// below-prefix residue collapses), with every count capped at
    /// `max_entries` so a hostile prefix cannot drive a huge allocation.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for truncated input or oversized counts.
    pub fn decode_from(d: &mut Decoder<'_>, max_entries: usize) -> Result<Self, WireError> {
        let err = || WireError::malformed("executed set too large");
        let mut set = ExecutedSet::new();
        let mut budget = max_entries;
        let ranged = d.u32()? as usize;
        if ranged > budget {
            return Err(err());
        }
        budget -= ranged;
        for _ in 0..ranged {
            let origin = d.u64()?;
            let next = d.u64()?;
            let extras = d.u32()? as usize;
            if extras > budget {
                return Err(err());
            }
            budget -= extras;
            let entry = set.origins.entry(origin).or_default();
            if next > entry.next {
                entry.next = next;
            }
            for _ in 0..extras {
                entry.insert(d.u64()?);
            }
        }
        let singles = d.u32()? as usize;
        if singles > budget {
            return Err(err());
        }
        for _ in 0..singles {
            let origin = d.u64()?;
            let counter = d.u64()?;
            set.insert(RequestId::new(origin, counter));
        }
        // Normalize hostile spellings into the canonical structure: a
        // duplicate ranged entry can raise an origin's prefix over residue
        // decoded earlier (purge it, folding anything contiguous), and
        // degenerate empty origins are dropped. After this, `encode` of
        // the decoded set is canonical regardless of how a responder
        // spelled it.
        for o in set.origins.values_mut() {
            while o.extras.first().is_some_and(|c| *c <= o.next) {
                let c = o.extras.pop_first().expect("checked nonempty");
                if c == o.next {
                    o.next += 1;
                    while o.extras.remove(&o.next) {
                        o.next += 1;
                    }
                }
            }
        }
        set.origins.retain(|_, o| o.id_count() > 0);
        Ok(set)
    }
}

impl FromIterator<RequestId> for ExecutedSet {
    fn from_iter<I: IntoIterator<Item = RequestId>>(iter: I) -> Self {
        let mut set = ExecutedSet::new();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(set: &ExecutedSet) -> ExecutedSet {
        let bytes = set.encode();
        let mut d = Decoder::new(&bytes);
        let back = ExecutedSet::decode_from(&mut d, 1 << 20).unwrap();
        d.finish().unwrap();
        back
    }

    #[test]
    fn insert_contains_and_counts() {
        let mut s = ExecutedSet::new();
        assert!(s.is_empty());
        assert!(s.insert(RequestId::new(1, 0)));
        assert!(s.insert(RequestId::new(1, 1)));
        assert!(!s.insert(RequestId::new(1, 1)), "duplicate");
        assert!(s.insert(RequestId::new(1, 5)), "out of order");
        assert!(s.contains(&RequestId::new(1, 0)));
        assert!(s.contains(&RequestId::new(1, 5)));
        assert!(!s.contains(&RequestId::new(1, 2)));
        assert!(!s.contains(&RequestId::new(2, 0)));
        assert_eq!(s.id_count(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn out_of_order_residue_folds_into_the_prefix() {
        let mut s = ExecutedSet::new();
        for c in [3u64, 1, 4, 2] {
            s.insert(RequestId::new(7, c));
        }
        assert_eq!(s.wire_entries(), 5, "holes below keep the residue sparse");
        s.insert(RequestId::new(7, 0)); // fills the hole: 0..=4 contiguous
        assert_eq!(s.wire_entries(), 1, "residue folded into the prefix");
        assert_eq!(s.id_count(), 5);
        for c in 0..5 {
            assert!(s.contains(&RequestId::new(7, c)));
        }
    }

    #[test]
    fn insertion_order_does_not_change_the_encoding() {
        let ids = [
            RequestId::new(1, 0),
            RequestId::new(1, 1),
            RequestId::new(1, 2),
            RequestId::new(9, 4),
            RequestId::new(2, 0),
        ];
        let fwd: ExecutedSet = ids.iter().copied().collect();
        let rev: ExecutedSet = ids.iter().rev().copied().collect();
        assert_eq!(fwd, rev);
        assert_eq!(fwd.encode(), rev.encode());
    }

    #[test]
    fn encoding_roundtrips() {
        let mut s = ExecutedSet::new();
        for c in 0..100 {
            s.insert(RequestId::new(3, c));
        }
        s.insert(RequestId::new(3, 500));
        s.insert(RequestId::new(0xDEAD_BEEF, 42)); // singleton shape
        s.insert(RequestId::new(8, 0));
        let back = roundtrip(&s);
        assert_eq!(back, s);
        assert_eq!(back.encode(), s.encode());
    }

    #[test]
    fn sequential_ids_compact_dramatically() {
        // 1000 in-order executions from 2 origins: the flat list cost
        // 16 kB; the compact form is 2 ranged entries.
        let mut s = ExecutedSet::new();
        for c in 0..500u64 {
            s.insert(RequestId::new(1, c));
            s.insert(RequestId::new(2, c));
        }
        assert_eq!(s.id_count(), 1000);
        assert_eq!(s.wire_entries(), 2);
        let flat_bytes = 16 * 1000;
        assert!(
            s.encode().len() < flat_bytes / 100,
            "compact {} bytes vs flat {flat_bytes}",
            s.encode().len()
        );
    }

    #[test]
    fn singletons_cost_no_more_than_the_flat_list() {
        // Digest-mixed origins (result events): one id per origin. The
        // singleton section stores them at the flat list's 16 bytes each.
        let mut s = ExecutedSet::new();
        for i in 0..100u64 {
            s.insert(RequestId::new(0x5245_0000_0000_0000 ^ (i * 0x9E37), i + 1));
        }
        let flat_bytes = 16 * 100;
        assert!(
            s.encode().len() <= flat_bytes + 8,
            "singleton encoding {} bytes vs flat {flat_bytes}",
            s.encode().len()
        );
        assert_eq!(roundtrip(&s), s);
    }

    #[test]
    fn decode_rejects_oversized_counts() {
        let mut e = Encoder::new();
        e.put_u32(u32::MAX); // absurd ranged count
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(ExecutedSet::decode_from(&mut d, 1 << 20).is_err());

        // Oversized extras inside one origin are also rejected.
        let mut e = Encoder::new();
        e.put_u32(1);
        e.put_u64(1); // origin
        e.put_u64(0); // next
        e.put_u32(u32::MAX); // absurd extras count
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(ExecutedSet::decode_from(&mut d, 1 << 20).is_err());
    }

    #[test]
    fn decode_folds_residue_under_a_duplicate_origins_raised_prefix() {
        // Two ranged entries for one origin: the first leaves residue, the
        // second raises the prefix over it. The decoded set must fold the
        // now-covered residue away — same structure, same encoding, same
        // id count as the honest spelling.
        let mut e = Encoder::new();
        e.put_u32(2);
        e.put_u64(5); // origin
        e.put_u64(0); // next
        e.put_u32(1);
        e.put_u64(7); // residue at 7
        e.put_u64(5); // same origin again
        e.put_u64(10); // raised prefix covers 0..10 (incl. 7)
        e.put_u32(0);
        e.put_u32(0); // no singles
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        let set = ExecutedSet::decode_from(&mut d, 1 << 20).unwrap();
        d.finish().unwrap();
        let canonical: ExecutedSet = (0..10).map(|c| RequestId::new(5, c)).collect();
        assert_eq!(set, canonical);
        assert_eq!(set.id_count(), 10, "no double-counted residue");
        assert_eq!(set.encode(), canonical.encode());
    }

    #[test]
    fn decode_normalizes_hostile_shapes() {
        // Residue below the prefix and duplicate singletons collapse into
        // the canonical structure, so a re-encoded digest never depends on
        // how a responder chose to spell the set.
        let mut e = Encoder::new();
        e.put_u32(1);
        e.put_u64(5); // origin
        e.put_u64(3); // next: 0,1,2 executed
        e.put_u32(2);
        e.put_u64(1); // below the prefix: redundant
        e.put_u64(3); // contiguous: folds into the prefix
        e.put_u32(1);
        e.put_u64(5);
        e.put_u64(2); // duplicate of the prefix
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        let set = ExecutedSet::decode_from(&mut d, 1 << 20).unwrap();
        d.finish().unwrap();
        let canonical: ExecutedSet = (0..4).map(|c| RequestId::new(5, c)).collect();
        assert_eq!(set, canonical);
    }
}
