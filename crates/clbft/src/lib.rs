//! # pws-clbft
//!
//! A from-scratch implementation of the Castro–Liskov practical Byzantine
//! fault tolerance algorithm (**CLBFT**, OSDI '99) — the agreement substrate
//! the Perpetual algorithm runs inside each voter group (paper §2.1.1).
//!
//! The implementation is **sans-io**: a [`Replica`] consumes protocol
//! messages and emits [`Action`]s (sends, broadcasts, executions, timer
//! requests) that a transport harness — in this repository,
//! `pws-perpetual`'s voter running on `pws-simnet` — turns into real
//! messages and timers. This keeps the protocol purely deterministic and
//! directly property-testable.
//!
//! Implemented: the normal three-phase case (pre-prepare / prepare /
//! commit), Castro–Liskov request **batching** with pipelined proposals
//! (the primary seals queued requests into a [`Batch`] per slot; see
//! [`Config::max_batch_size`] and [`Config::pipeline_depth`]), request
//! deduplication, periodic **checkpoint certificates** over the application
//! snapshot (the harness supplies the snapshot bytes in answer to
//! [`Action::TakeCheckpoint`]; `2f + 1` matching digests stabilize the
//! checkpoint and garbage-collect the log below the low watermark),
//! **Merkle-partitioned state transfer** (`FetchState`/`StateResponse`
//! ships the [`PageManifest`] of the latest stable snapshot — verified
//! against `f + 1` matching checkpoint votes, whose digest covers the
//! manifest's Merkle root — then the fetcher pulls only pages whose
//! digests it does not already hold via range-bounded
//! `FetchPages`/`PageResponse` frames, verifying every page against the
//! certified manifest before installing, and replays the committed log
//! suffix, each slot only once `f + 1` distinct responders sent an
//! identical copy), **incremental checkpoints** (between boundaries only
//! dirty pages are re-hashed; see [`pages`]),
//! sequence-number watermarks, and view changes with new-view re-proposals
//! (including null-batch gap filling). A batch is ordered or dropped
//! atomically — never split — including across view changes, because
//! prepares and commits cover the batch digest.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for how this crate
//! slots into the full Perpetual-WS stack and for the wire-format tables.
//!
//! ## Trust boundary
//!
//! Channels are assumed point-to-point authenticated (MACs are applied by
//! the transport layer, `pws-perpetual`, using `pws-crypto`); therefore a
//! faulty replica can lie about its *own* state but cannot impersonate
//! others. View-change messages carry prepared-set claims whose digest
//! consistency is checked structurally; the nested MAC chains of the
//! original paper's proofs are elided (see DESIGN.md).
//!
//! # Example: a four-replica group reaching agreement in memory
//!
//! ```
//! use pws_clbft::{Config, Replica, Request, RequestId, Action, Msg, ReplicaId};
//! use bytes::Bytes;
//!
//! let cfg = Config::new(4);
//! let mut replicas: Vec<Replica> =
//!     (0..4).map(|i| Replica::new(ReplicaId(i), cfg.clone())).collect();
//!
//! // Inject a request at the primary (replica 0 in view 0) and run all
//! // resulting actions to quiescence.
//! let req = Request::new(RequestId::new(7, 1), Bytes::from_static(b"op"));
//! let mut inbox: Vec<(usize, Option<usize>, Msg)> = vec![]; // (to, from, msg)
//! for a in replicas[0].on_request(req) {
//!     if let Action::Broadcast(m) = a {
//!         for to in 1..4 { inbox.push((to, Some(0), m.clone())); }
//!     }
//! }
//! let mut executed = 0;
//! while let Some((to, from, msg)) = inbox.pop() {
//!     let from = ReplicaId(from.unwrap() as u32);
//!     for a in replicas[to].on_message(from, msg) {
//!         match a {
//!             Action::Broadcast(m) => {
//!                 for peer in 0..4 {
//!                     if peer != to { inbox.push((peer, Some(to), m.clone())); }
//!                 }
//!             }
//!             Action::Send(dest, m) => inbox.push((dest.0 as usize, Some(to), m)),
//!             Action::Execute { .. } => executed += 1,
//!             _ => {}
//!         }
//!     }
//! }
//! assert!(executed >= 3, "at least the backups execute; got {executed}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod config;
mod dedup;
mod log;
mod messages;
pub mod pages;
mod replica;
pub mod wire;

pub use client::ReplyCollector;
pub use config::Config;
pub use dedup::ExecutedSet;
pub use messages::{
    checkpoint_digest, Batch, CheckpointMsg, CommitMsg, FetchPagesMsg, FetchStateMsg, Msg,
    NewViewMsg, PageResponseMsg, PrePrepareMsg, PrepareMsg, PreparedClaim, Request, RequestId,
    StateResponseMsg, SuffixSlot, ViewChangeMsg,
};
pub use pages::{PageCounters, PageManifest, DEFAULT_PAGE_SIZE, MAX_PAGES_PER_FETCH};
pub use replica::{Action, ObsEvent, Replica, TimerCmd};

/// A replica index within one group: `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReplicaId(pub u32);

impl std::fmt::Debug for ReplicaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl std::fmt::Display for ReplicaId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A protocol view number. The primary of view `v` is replica `v mod n`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct View(pub u64);

impl View {
    /// The primary replica for this view in a group of `n`.
    pub fn primary(self, n: u32) -> ReplicaId {
        ReplicaId((self.0 % n as u64) as u32)
    }

    /// The next view.
    pub fn next(self) -> View {
        View(self.0 + 1)
    }
}

impl std::fmt::Debug for View {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A sequence number in the total order.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Seq(pub u64);

impl Seq {
    /// The sequence number before the first real one.
    pub const ZERO: Seq = Seq(0);

    /// The next sequence number.
    pub fn next(self) -> Seq {
        Seq(self.0 + 1)
    }
}

impl std::fmt::Debug for Seq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

#[cfg(test)]
mod id_tests {
    use super::*;

    #[test]
    fn primary_rotates() {
        assert_eq!(View(0).primary(4), ReplicaId(0));
        assert_eq!(View(1).primary(4), ReplicaId(1));
        assert_eq!(View(5).primary(4), ReplicaId(1));
        assert_eq!(View(0).primary(1), ReplicaId(0));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", ReplicaId(2)), "r2");
        assert_eq!(format!("{:?}", View(3)), "v3");
        assert_eq!(format!("{:?}", Seq(4)), "s4");
        assert_eq!(Seq::ZERO.next(), Seq(1));
        assert_eq!(View(1).next(), View(2));
    }
}
