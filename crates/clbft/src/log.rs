//! The message log: per-sequence-number slots with quorum tracking.

use crate::messages::{Batch, Request};
use crate::{Config, ReplicaId, Seq, View};
use pws_crypto::sha256::Digest32;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Per-sequence-number protocol state.
#[derive(Debug, Default)]
pub(crate) struct Slot {
    /// The accepted pre-prepare for the highest view seen at this seq.
    pub pre_prepare: Option<(View, Digest32, Batch)>,
    /// Prepare senders per (view, digest).
    pub prepares: HashMap<(View, Digest32), HashSet<ReplicaId>>,
    /// Commit senders per (view, digest).
    pub commits: HashMap<(View, Digest32), HashSet<ReplicaId>>,
    /// Whether this replica already broadcast its commit for this slot.
    pub commit_sent: bool,
    /// Whether the slot's batch has been executed locally.
    pub executed: bool,
}

impl Slot {
    /// Whether `prepared(m, v, n)` holds: accepted pre-prepare plus a
    /// quorum of matching prepares from distinct replicas.
    pub fn prepared(&self, cfg: &Config) -> Option<(View, Digest32)> {
        let (v, d, _) = self.pre_prepare.as_ref()?;
        let count = self.prepares.get(&(*v, *d)).map_or(0, HashSet::len);
        (count >= cfg.prepare_quorum()).then_some((*v, *d))
    }

    /// Whether `committed-local` holds: prepared plus a commit quorum.
    pub fn committed(&self, cfg: &Config) -> bool {
        match self.prepared(cfg) {
            Some((v, d)) => {
                self.commits.get(&(v, d)).map_or(0, HashSet::len) >= cfg.commit_quorum()
            }
            None => false,
        }
    }
}

/// The replica's message log with watermark-based garbage collection.
#[derive(Debug, Default)]
pub(crate) struct Log {
    slots: BTreeMap<Seq, Slot>,
}

impl Log {
    pub fn slot_mut(&mut self, seq: Seq) -> &mut Slot {
        self.slots.entry(seq).or_default()
    }

    pub fn slot(&self, seq: Seq) -> Option<&Slot> {
        self.slots.get(&seq)
    }

    /// Drops every slot at or below `stable` (garbage collection after a
    /// stable checkpoint).
    pub fn gc_below(&mut self, stable: Seq) {
        self.slots = self.slots.split_off(&stable.next());
    }

    /// Sequence numbers (above `from`) that this replica has prepared, for
    /// view-change claims. Each claim carries its whole batch.
    pub fn prepared_above(&self, from: Seq, cfg: &Config) -> Vec<(Seq, View, Digest32, Batch)> {
        self.slots
            .range(from.next()..)
            .filter_map(|(seq, slot)| {
                let (v, d) = slot.prepared(cfg)?;
                let (_, _, batch) = slot.pre_prepare.as_ref()?;
                Some((*seq, v, d, batch.clone()))
            })
            .collect()
    }

    /// Executed slots in `(from, to]` with their batches, in order — the
    /// committed log suffix shipped during state transfer so a fetcher
    /// lands at the responder's execution frontier.
    pub fn executed_suffix(&self, from: Seq, to: Seq) -> Vec<(Seq, Batch)> {
        if to <= from {
            return Vec::new();
        }
        self.slots
            .range(from.next()..=to)
            .filter_map(|(seq, slot)| {
                if !slot.executed {
                    return None;
                }
                let (_, _, batch) = slot.pre_prepare.as_ref()?;
                Some((*seq, batch.clone()))
            })
            .collect()
    }

    /// Executed configuration records above `from`, in slot order. A
    /// config record always seals a slot of its own, so each qualifying
    /// slot contributes exactly one request. A coordinator recovering from
    /// a stable checkpoint replays these to re-learn every transaction
    /// decision and reshard step it has already durably ordered.
    pub fn config_records_above(&self, from: Seq) -> Vec<(Seq, Request)> {
        self.slots
            .range(from.next()..)
            .filter(|(_, slot)| slot.executed)
            .filter_map(|(seq, slot)| {
                let (_, _, batch) = slot.pre_prepare.as_ref()?;
                batch
                    .requests
                    .iter()
                    .find(|r| r.config)
                    .map(|r| (*seq, r.clone()))
            })
            .collect()
    }

    #[cfg(test)]
    pub fn len(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{Request, RequestId};
    use bytes::Bytes;

    fn req(c: u64) -> Batch {
        Batch::of(Request::new(RequestId::new(1, c), Bytes::from_static(b"x")))
    }

    #[test]
    fn prepared_requires_quorum_and_preprepare() {
        let cfg = Config::new(4); // prepare quorum = 2
        let mut slot = Slot::default();
        let r = req(1);
        let d = r.digest();
        assert!(slot.prepared(&cfg).is_none());
        slot.pre_prepare = Some((View(0), d, r));
        assert!(slot.prepared(&cfg).is_none());
        slot.prepares
            .entry((View(0), d))
            .or_default()
            .insert(ReplicaId(1));
        assert!(slot.prepared(&cfg).is_none());
        slot.prepares
            .entry((View(0), d))
            .or_default()
            .insert(ReplicaId(2));
        assert_eq!(slot.prepared(&cfg), Some((View(0), d)));
    }

    #[test]
    fn prepared_is_immediate_for_n1() {
        let cfg = Config::new(1); // prepare quorum = 0
        let mut slot = Slot::default();
        let r = req(1);
        let d = r.digest();
        slot.pre_prepare = Some((View(0), d, r));
        assert_eq!(slot.prepared(&cfg), Some((View(0), d)));
        slot.commits
            .entry((View(0), d))
            .or_default()
            .insert(ReplicaId(0));
        assert!(slot.committed(&cfg));
    }

    #[test]
    fn committed_requires_commit_quorum() {
        let cfg = Config::new(4); // commit quorum = 3
        let mut slot = Slot::default();
        let r = req(1);
        let d = r.digest();
        slot.pre_prepare = Some((View(0), d, r));
        for i in 1..=2 {
            slot.prepares
                .entry((View(0), d))
                .or_default()
                .insert(ReplicaId(i));
        }
        for i in 0..=1 {
            slot.commits
                .entry((View(0), d))
                .or_default()
                .insert(ReplicaId(i));
        }
        assert!(!slot.committed(&cfg));
        slot.commits
            .entry((View(0), d))
            .or_default()
            .insert(ReplicaId(2));
        assert!(slot.committed(&cfg));
    }

    #[test]
    fn mismatched_digest_prepares_do_not_count() {
        let cfg = Config::new(4);
        let mut slot = Slot::default();
        let r = req(1);
        let d = r.digest();
        let other = req(2).digest();
        slot.pre_prepare = Some((View(0), d, r));
        slot.prepares
            .entry((View(0), other))
            .or_default()
            .insert(ReplicaId(1));
        slot.prepares
            .entry((View(0), other))
            .or_default()
            .insert(ReplicaId(2));
        assert!(slot.prepared(&cfg).is_none());
    }

    #[test]
    fn gc_drops_old_slots() {
        let mut log = Log::default();
        for i in 1..=10u64 {
            log.slot_mut(Seq(i));
        }
        assert_eq!(log.len(), 10);
        log.gc_below(Seq(6));
        assert_eq!(log.len(), 4);
        assert!(log.slot(Seq(6)).is_none());
        assert!(log.slot(Seq(7)).is_some());
    }

    #[test]
    fn executed_suffix_skips_unexecuted_slots() {
        let mut log = Log::default();
        for i in 1..=4u64 {
            let r = req(i);
            let d = r.digest();
            let slot = log.slot_mut(Seq(i));
            slot.pre_prepare = Some((View(0), d, r));
            slot.executed = i != 3;
        }
        let suffix = log.executed_suffix(Seq(1), Seq(4));
        let seqs: Vec<u64> = suffix.iter().map(|(s, _)| s.0).collect();
        assert_eq!(seqs, vec![2, 4]);
        assert!(log.executed_suffix(Seq(4), Seq(4)).is_empty());
        assert!(log.executed_suffix(Seq(4), Seq(1)).is_empty());
    }

    #[test]
    fn config_records_above_skips_plain_and_unexecuted_slots() {
        let mut log = Log::default();
        for i in 1..=4u64 {
            let b = if i % 2 == 0 {
                Batch::of(Request::config_record(
                    RequestId::new(9, i),
                    Bytes::from_static(b"cfg"),
                ))
            } else {
                req(i)
            };
            let d = b.digest();
            let slot = log.slot_mut(Seq(i));
            slot.pre_prepare = Some((View(0), d, b));
            slot.executed = i != 4;
        }
        let records = log.config_records_above(Seq(0));
        assert_eq!(records.len(), 1, "slot 2 only: 1/3 plain, 4 unexecuted");
        assert_eq!(records[0].0, Seq(2));
        assert!(records[0].1.config);
        assert!(log.config_records_above(Seq(2)).is_empty());
    }

    #[test]
    fn prepared_above_reports_claims() {
        let cfg = Config::new(1);
        let mut log = Log::default();
        for i in 1..=3u64 {
            let r = req(i);
            let d = r.digest();
            log.slot_mut(Seq(i)).pre_prepare = Some((View(0), d, r));
        }
        let claims = log.prepared_above(Seq(1), &cfg);
        assert_eq!(claims.len(), 2);
        assert_eq!(claims[0].0, Seq(2));
        assert_eq!(claims[1].0, Seq(3));
    }
}
