//! Protocol messages.

use crate::dedup::ExecutedSet;
use crate::pages::PageManifest;
use crate::{ReplicaId, Seq, View};
use bytes::Bytes;
use pws_crypto::sha256::{Digest32, Sha256};

/// Identifies a request uniquely across the group's lifetime.
///
/// In Perpetual, the "client" of a voter group is a set of drivers that all
/// submit the same logical event, so the id is derived from the event
/// content and origin rather than a per-client socket.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId {
    /// Originating principal (client id, or a hash of the event source).
    pub origin: u64,
    /// Origin-local sequence counter.
    pub counter: u64,
}

impl RequestId {
    /// Creates a request id.
    pub const fn new(origin: u64, counter: u64) -> Self {
        RequestId { origin, counter }
    }
}

impl std::fmt::Debug for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "req({}:{})", self.origin, self.counter)
    }
}

/// An opaque operation to be totally ordered by the group.
#[derive(Clone, PartialEq, Eq)]
pub struct Request {
    /// Unique id (used for deduplication).
    pub id: RequestId,
    /// Opaque payload; the harness interprets it after `Execute`.
    pub payload: Bytes,
    /// Read-only marker (the PBFT read optimization): the replica answers
    /// from committed state without consuming a sequence slot, and the
    /// client accepts only on `2f + 1` matching replies. A read-only
    /// request never enters the ordering path; if the client cannot gather
    /// its quorum it falls back by resubmitting with this flag cleared.
    pub read_only: bool,
    /// Configuration-record marker: the request carries a group-management
    /// record (transaction decision, reshard step, epoch flip) rather than
    /// ordinary application traffic. A config record is ordered like any
    /// request but always seals a sequence slot of its own — never batched
    /// with application requests — so the slot boundary itself marks the
    /// atomic configuration point in the log.
    pub config: bool,
}

impl Request {
    /// Creates an (ordered) request.
    pub fn new(id: RequestId, payload: Bytes) -> Self {
        Request {
            id,
            payload,
            read_only: false,
            config: false,
        }
    }

    /// Creates a read-only request: answered from committed state, never
    /// ordered.
    pub fn read_only(id: RequestId, payload: Bytes) -> Self {
        Request {
            id,
            payload,
            read_only: true,
            config: false,
        }
    }

    /// Creates an ordered configuration record: occupies a sequence slot
    /// of its own, flushing any batch accumulating ahead of it.
    pub fn config_record(id: RequestId, payload: Bytes) -> Self {
        Request {
            id,
            payload,
            read_only: false,
            config: true,
        }
    }

    /// The combined flag byte (bit 0: read-only, bit 1: config) — the
    /// canonical wire and digest encoding of the request's markers.
    pub fn flags(&self) -> u8 {
        u8::from(self.read_only) | (u8::from(self.config) << 1)
    }

    /// The canonical digest of this request. Covers the flag byte so a
    /// flipped read-only or config marker cannot ride an existing
    /// authenticator.
    pub fn digest(&self) -> Digest32 {
        let mut h = Sha256::new();
        h.update_u64(self.id.origin);
        h.update_u64(self.id.counter);
        h.update(&[self.flags()]);
        h.update_u64(self.payload.len() as u64);
        h.update(&self.payload);
        h.finalize()
    }
}

impl std::fmt::Debug for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Request({:?}, {} bytes{}{})",
            self.id,
            self.payload.len(),
            if self.read_only { ", ro" } else { "" },
            if self.config { ", cfg" } else { "" }
        )
    }
}

/// An ordered batch of requests agreed as a single unit: one sequence slot
/// carries the whole batch, and execution unpacks it in order (the
/// Castro–Liskov request-batching optimization). A batch is ordered or
/// dropped atomically — it is never split, including across view changes,
/// because the batch digest (not per-request digests) is what prepares and
/// commits.
#[derive(Clone, PartialEq, Eq)]
pub struct Batch {
    /// The requests, in the order they will execute within the slot.
    pub requests: Vec<Request>,
}

impl Batch {
    /// A batch over `requests`, preserving their order.
    pub fn new(requests: Vec<Request>) -> Self {
        Batch { requests }
    }

    /// A batch holding a single request.
    pub fn of(request: Request) -> Self {
        Batch {
            requests: vec![request],
        }
    }

    /// The empty (null) batch used to fill sequence gaps after a view
    /// change: it commits like any batch but executes as a no-op.
    pub fn null() -> Self {
        Batch {
            requests: Vec::new(),
        }
    }

    /// Whether this is a null (gap-filling) batch.
    pub fn is_null(&self) -> bool {
        self.requests.is_empty()
    }

    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the batch holds no requests (same as [`Batch::is_null`]).
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The canonical digest of the ordered batch: a hash over the request
    /// count and every request digest, in order. Reordering, dropping, or
    /// substituting any member changes the batch digest.
    pub fn digest(&self) -> Digest32 {
        let mut h = Sha256::new();
        h.update_u64(self.requests.len() as u64);
        for r in &self.requests {
            h.update(r.digest().as_bytes());
        }
        h.finalize()
    }
}

impl std::fmt::Debug for Batch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_null() {
            write!(f, "Batch(null)")
        } else {
            write!(f, "Batch[{}]{:?}", self.len(), self.requests)
        }
    }
}

/// Primary's ordering proposal: one slot, one batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrePrepareMsg {
    /// The view this proposal belongs to.
    pub view: View,
    /// The proposed sequence number.
    pub seq: Seq,
    /// Digest of `batch` (redundant but matches the paper's wire format).
    pub digest: Digest32,
    /// The full batch (piggybacked, as in CLBFT).
    pub batch: Batch,
}

/// Backup's acknowledgement of a pre-prepare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrepareMsg {
    /// View of the pre-prepare being acknowledged.
    pub view: View,
    /// Sequence number being acknowledged.
    pub seq: Seq,
    /// Digest being acknowledged.
    pub digest: Digest32,
    /// Sender.
    pub replica: ReplicaId,
}

/// A replica's commitment to execute at this sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitMsg {
    /// View in which the request prepared.
    pub view: View,
    /// Sequence number.
    pub seq: Seq,
    /// Digest.
    pub digest: Digest32,
    /// Sender.
    pub replica: ReplicaId,
}

/// Periodic checkpoint announcement used for garbage collection and as
/// the evidence a lagging replica verifies fetched state against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMsg {
    /// Last executed sequence number covered by this checkpoint.
    pub seq: Seq,
    /// The [`checkpoint_digest`] over `(seq, snapshot, executed, chain)`.
    pub state_digest: Digest32,
    /// Sender.
    pub replica: ReplicaId,
}

/// The canonical digest of a checkpoint: covers the sequence number, the
/// snapshot's page-tree Merkle root ([`PageManifest::root`], which in turn
/// covers every page digest, the page geometry, and the total length), the
/// executed-request deduplication set (its canonical per-origin compact
/// encoding, [`ExecutedSet::encode`]), and the execution chain. Every
/// correct replica computes the identical digest at the same sequence
/// boundary, so `2f + 1` matching [`CheckpointMsg`]s prove the state is
/// group-stable and `f + 1` prove at least one correct replica holds it
/// (the state-transfer trust anchor). Because the root certifies the whole
/// manifest, `f + 1` votes on this digest let a fetcher trust *every
/// per-page digest* of a received manifest at once.
pub fn checkpoint_digest(
    seq: Seq,
    pages: &PageManifest,
    executed: &ExecutedSet,
    exec_chain: &Digest32,
) -> Digest32 {
    let mut h = Sha256::new();
    h.update_u64(seq.0);
    h.update(pages.root().as_bytes());
    let dedup = executed.encode();
    h.update_u64(dedup.len() as u64);
    h.update(&dedup);
    h.update(exec_chain.as_bytes());
    h.finalize()
}

/// A lagging replica's request for the latest stable checkpoint state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchStateMsg {
    /// The requester's own stable checkpoint; responders with nothing newer
    /// stay silent.
    pub have: Seq,
    /// Sender.
    pub replica: ReplicaId,
}

/// One committed slot above the checkpoint, shipped during state transfer
/// so the fetcher lands at the responder's execution frontier instead of a
/// checkpoint boundary. The checkpoint digest does not cover the suffix,
/// so the fetcher replays a slot only once `f + 1` distinct responders
/// have sent an identical batch for it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuffixSlot {
    /// The slot's sequence number.
    pub seq: Seq,
    /// The slot's whole batch, in execution order.
    pub batch: Batch,
}

/// A stable checkpoint's *manifest* plus the committed log suffix,
/// answering a [`FetchStateMsg`]. The fetcher verifies the manifest (and
/// the executed set and chain) against `f + 1` matching [`CheckpointMsg`]
/// digests, then pulls only the pages it is missing with [`FetchPagesMsg`];
/// the suffix and view fields are *not* covered by that digest and only
/// count as one vote each toward their own `f + 1` bars.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateResponseMsg {
    /// The stable checkpoint's sequence number.
    pub seq: Seq,
    /// The responder's current view. A rebooted replica rejoins view `v`
    /// only once `f + 1` distinct responders report a view `>= v` — a
    /// single responder's claim is never trusted.
    pub view: View,
    /// The execution chain at `seq`.
    pub exec_chain: Digest32,
    /// The page table of the application snapshot at `seq`: per-page
    /// digests whose Merkle root the checkpoint digest covers. The pages
    /// themselves travel separately, in [`PageResponseMsg`]s.
    pub manifest: PageManifest,
    /// Request ids executed up to `seq`: the dedup table, compacted per
    /// origin ([`ExecutedSet`]).
    pub executed: ExecutedSet,
    /// Committed slots in `(seq, responder's last_exec]`, in order.
    pub suffix: Vec<SuffixSlot>,
    /// Sender.
    pub replica: ReplicaId,
}

/// A fetcher's range-bounded request for snapshot pages
/// `[first, first + count)` of the stable checkpoint at `seq` (the
/// vsr-rs `GetState` idiom: ask for an explicit range, then verify you got
/// exactly that range back). `count` never exceeds
/// [`crate::pages::MAX_PAGES_PER_FETCH`] in an honest frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchPagesMsg {
    /// The checkpoint boundary whose pages are wanted.
    pub seq: Seq,
    /// First page index of the requested range.
    pub first: u32,
    /// Number of consecutive pages requested.
    pub count: u32,
    /// Sender.
    pub replica: ReplicaId,
}

/// A responder's page range, answering a [`FetchPagesMsg`]. Pages are in
/// index order starting at `first`; the fetcher verifies every page
/// against its `f + 1`-vouched manifest ([`PageManifest::verify_page`])
/// and rejects — counting — anything unsolicited, out of range, over the
/// cap, duplicated, or digest-mismatched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageResponseMsg {
    /// The checkpoint boundary the pages belong to.
    pub seq: Seq,
    /// Index of the first page carried.
    pub first: u32,
    /// The page contents, in index order.
    pub pages: Vec<Bytes>,
    /// Sender.
    pub replica: ReplicaId,
}

/// A prepared-batch claim carried inside a view change. The claim carries
/// the *whole* batch so the new primary can only ever re-propose it intact,
/// in the same internal order — never a subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedClaim {
    /// View in which the batch pre-prepared.
    pub view: View,
    /// Claimed sequence number.
    pub seq: Seq,
    /// Batch digest.
    pub digest: Digest32,
    /// The full batch, so the new primary can re-propose it whole.
    pub batch: Batch,
}

/// Vote to move to a new view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewChangeMsg {
    /// The view being moved to.
    pub new_view: View,
    /// Sender's last stable checkpoint.
    pub stable_seq: Seq,
    /// Digest of the stable checkpoint (ZERO if `stable_seq` is 0).
    pub stable_digest: Digest32,
    /// Requests prepared above the stable checkpoint.
    pub prepared: Vec<PreparedClaim>,
    /// Sender.
    pub replica: ReplicaId,
}

/// New primary's view installation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewViewMsg {
    /// The view being installed.
    pub view: View,
    /// Replicas whose view-change votes justified this new view.
    pub voters: Vec<ReplicaId>,
    /// Re-proposals (including null gap fillers) for the new view.
    pub pre_prepares: Vec<PrePrepareMsg>,
    /// Sender (the new primary).
    pub replica: ReplicaId,
}

/// Any CLBFT protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// A request forwarded to the primary by another replica.
    Forward(Request),
    /// Ordering proposal from the primary.
    PrePrepare(PrePrepareMsg),
    /// Prepare acknowledgement.
    Prepare(PrepareMsg),
    /// Commit.
    Commit(CommitMsg),
    /// Checkpoint announcement.
    Checkpoint(CheckpointMsg),
    /// View-change vote.
    ViewChange(ViewChangeMsg),
    /// New-view installation.
    NewView(NewViewMsg),
    /// State-transfer request from a lagging replica.
    FetchState(FetchStateMsg),
    /// State-transfer response: stable checkpoint manifest plus log suffix.
    StateResponse(StateResponseMsg),
    /// Range-bounded page request during state transfer.
    FetchPages(FetchPagesMsg),
    /// Page range answering a [`FetchPagesMsg`].
    PageResponse(PageResponseMsg),
}

impl Msg {
    /// A short tag for metrics and traces.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Forward(_) => "forward",
            Msg::PrePrepare(_) => "pre-prepare",
            Msg::Prepare(_) => "prepare",
            Msg::Commit(_) => "commit",
            Msg::Checkpoint(_) => "checkpoint",
            Msg::ViewChange(_) => "view-change",
            Msg::NewView(_) => "new-view",
            Msg::FetchState(_) => "fetch-state",
            Msg::StateResponse(_) => "state-response",
            Msg::FetchPages(_) => "fetch-pages",
            Msg::PageResponse(_) => "page-response",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_digest_depends_on_all_fields() {
        let r = Request::new(RequestId::new(1, 2), Bytes::from_static(b"abc"));
        let d0 = r.digest();
        assert_eq!(d0, r.digest(), "digest is deterministic");
        let r2 = Request::new(RequestId::new(1, 3), Bytes::from_static(b"abc"));
        assert_ne!(d0, r2.digest());
        let r3 = Request::new(RequestId::new(1, 2), Bytes::from_static(b"abd"));
        assert_ne!(d0, r3.digest());
        let ro = Request::read_only(RequestId::new(1, 2), Bytes::from_static(b"abc"));
        assert_ne!(d0, ro.digest(), "read-only flag is digest-covered");
        assert!(ro.read_only);
        assert!(!r.read_only);
        let cfg = Request::config_record(RequestId::new(1, 2), Bytes::from_static(b"abc"));
        assert_ne!(d0, cfg.digest(), "config flag is digest-covered");
        assert_ne!(ro.digest(), cfg.digest(), "flags occupy distinct bits");
        assert!(cfg.config && !cfg.read_only);
        assert_eq!(r.flags(), 0);
        assert_eq!(ro.flags(), 1);
        assert_eq!(cfg.flags(), 2);
    }

    #[test]
    fn batch_digest_covers_order_and_membership() {
        let a = Request::new(RequestId::new(1, 1), Bytes::from_static(b"a"));
        let b = Request::new(RequestId::new(1, 2), Bytes::from_static(b"b"));
        let ab = Batch::new(vec![a.clone(), b.clone()]);
        let ba = Batch::new(vec![b.clone(), a.clone()]);
        assert_eq!(ab.digest(), ab.digest(), "deterministic");
        assert_ne!(ab.digest(), ba.digest(), "order matters");
        assert_ne!(ab.digest(), Batch::of(a.clone()).digest(), "membership");
        assert_eq!(ab.len(), 2);
        assert!(!ab.is_empty());
        assert_eq!(Batch::of(a).len(), 1);
    }

    #[test]
    fn null_batches() {
        let b = Batch::null();
        assert!(b.is_null());
        assert!(b.is_empty());
        assert_eq!(b.digest(), Batch::new(vec![]).digest());
        assert_ne!(
            b.digest(),
            Batch::of(Request::new(RequestId::new(1, 1), Bytes::new())).digest()
        );
        assert_eq!(format!("{b:?}"), "Batch(null)");
        assert_eq!(format!("{:?}", RequestId::new(3, 4)), "req(3:4)");
    }

    #[test]
    fn msg_kinds() {
        let r = Request::new(RequestId::new(0, 0), Bytes::new());
        assert_eq!(Msg::Forward(r).kind(), "forward");
        assert_eq!(
            Msg::FetchState(crate::messages::FetchStateMsg {
                have: Seq(0),
                replica: ReplicaId(0)
            })
            .kind(),
            "fetch-state"
        );
        assert_eq!(
            Msg::FetchPages(FetchPagesMsg {
                seq: Seq(8),
                first: 0,
                count: 1,
                replica: ReplicaId(0)
            })
            .kind(),
            "fetch-pages"
        );
        assert_eq!(
            Msg::PageResponse(PageResponseMsg {
                seq: Seq(8),
                first: 0,
                pages: vec![Bytes::from_static(b"p")],
                replica: ReplicaId(0)
            })
            .kind(),
            "page-response"
        );
    }

    #[test]
    fn checkpoint_digest_covers_every_component() {
        let ids: ExecutedSet = [RequestId::new(1, 1), RequestId::new(1, 2)]
            .into_iter()
            .collect();
        let one: ExecutedSet = [RequestId::new(1, 1)].into_iter().collect();
        let pages = PageManifest::compute(b"state", 4);
        let base = checkpoint_digest(Seq(64), &pages, &ids, &Digest32::ZERO);
        assert_eq!(
            base,
            checkpoint_digest(Seq(64), &pages, &ids, &Digest32::ZERO),
            "deterministic"
        );
        assert_ne!(
            base,
            checkpoint_digest(Seq(65), &pages, &ids, &Digest32::ZERO)
        );
        let other_pages = PageManifest::compute(b"statf", 4);
        assert_ne!(
            base,
            checkpoint_digest(Seq(64), &other_pages, &ids, &Digest32::ZERO),
            "any page byte flip changes the root and so the digest"
        );
        let regeometry = PageManifest::compute(b"state", 2);
        assert_ne!(
            base,
            checkpoint_digest(Seq(64), &regeometry, &ids, &Digest32::ZERO),
            "page geometry is digest-covered"
        );
        assert_ne!(
            base,
            checkpoint_digest(Seq(64), &pages, &one, &Digest32::ZERO)
        );
        let other_chain = Digest32([1u8; 32]);
        assert_ne!(base, checkpoint_digest(Seq(64), &pages, &ids, &other_chain));
    }
}
