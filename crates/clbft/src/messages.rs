//! Protocol messages.

use crate::{ReplicaId, Seq, View};
use bytes::Bytes;
use pws_crypto::sha256::{Digest32, Sha256};

/// Identifies a request uniquely across the group's lifetime.
///
/// In Perpetual, the "client" of a voter group is a set of drivers that all
/// submit the same logical event, so the id is derived from the event
/// content and origin rather than a per-client socket.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId {
    /// Originating principal (client id, or a hash of the event source).
    pub origin: u64,
    /// Origin-local sequence counter.
    pub counter: u64,
}

impl RequestId {
    /// Creates a request id.
    pub const fn new(origin: u64, counter: u64) -> Self {
        RequestId { origin, counter }
    }

    /// The id used for null (gap-filling) requests issued at view change.
    pub const fn null(seq: u64) -> Self {
        RequestId {
            origin: u64::MAX,
            counter: seq,
        }
    }

    /// Whether this is a null request id.
    pub fn is_null(&self) -> bool {
        self.origin == u64::MAX
    }
}

impl std::fmt::Debug for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_null() {
            write!(f, "req(null@{})", self.counter)
        } else {
            write!(f, "req({}:{})", self.origin, self.counter)
        }
    }
}

/// An opaque operation to be totally ordered by the group.
#[derive(Clone, PartialEq, Eq)]
pub struct Request {
    /// Unique id (used for deduplication).
    pub id: RequestId,
    /// Opaque payload; the harness interprets it after `Execute`.
    pub payload: Bytes,
}

impl Request {
    /// Creates a request.
    pub fn new(id: RequestId, payload: Bytes) -> Self {
        Request { id, payload }
    }

    /// The null request used to fill sequence gaps after a view change.
    pub fn null(seq: Seq) -> Self {
        Request {
            id: RequestId::null(seq.0),
            payload: Bytes::new(),
        }
    }

    /// Whether this is a null request.
    pub fn is_null(&self) -> bool {
        self.id.is_null()
    }

    /// The canonical digest of this request.
    pub fn digest(&self) -> Digest32 {
        let mut h = Sha256::new();
        h.update_u64(self.id.origin);
        h.update_u64(self.id.counter);
        h.update_u64(self.payload.len() as u64);
        h.update(&self.payload);
        h.finalize()
    }
}

impl std::fmt::Debug for Request {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Request({:?}, {} bytes)", self.id, self.payload.len())
    }
}

/// Primary's ordering proposal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrePrepareMsg {
    /// The view this proposal belongs to.
    pub view: View,
    /// The proposed sequence number.
    pub seq: Seq,
    /// Digest of `request` (redundant but matches the paper's wire format).
    pub digest: Digest32,
    /// The full request (piggybacked, as in CLBFT).
    pub request: Request,
}

/// Backup's acknowledgement of a pre-prepare.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrepareMsg {
    /// View of the pre-prepare being acknowledged.
    pub view: View,
    /// Sequence number being acknowledged.
    pub seq: Seq,
    /// Digest being acknowledged.
    pub digest: Digest32,
    /// Sender.
    pub replica: ReplicaId,
}

/// A replica's commitment to execute at this sequence number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommitMsg {
    /// View in which the request prepared.
    pub view: View,
    /// Sequence number.
    pub seq: Seq,
    /// Digest.
    pub digest: Digest32,
    /// Sender.
    pub replica: ReplicaId,
}

/// Periodic checkpoint announcement used for garbage collection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMsg {
    /// Last executed sequence number covered by this checkpoint.
    pub seq: Seq,
    /// Digest of the execution history up to `seq`.
    pub state_digest: Digest32,
    /// Sender.
    pub replica: ReplicaId,
}

/// A prepared-request claim carried inside a view change.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PreparedClaim {
    /// View in which the request pre-prepared.
    pub view: View,
    /// Claimed sequence number.
    pub seq: Seq,
    /// Request digest.
    pub digest: Digest32,
    /// The full request, so the new primary can re-propose it.
    pub request: Request,
}

/// Vote to move to a new view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViewChangeMsg {
    /// The view being moved to.
    pub new_view: View,
    /// Sender's last stable checkpoint.
    pub stable_seq: Seq,
    /// Digest of the stable checkpoint (ZERO if `stable_seq` is 0).
    pub stable_digest: Digest32,
    /// Requests prepared above the stable checkpoint.
    pub prepared: Vec<PreparedClaim>,
    /// Sender.
    pub replica: ReplicaId,
}

/// New primary's view installation message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NewViewMsg {
    /// The view being installed.
    pub view: View,
    /// Replicas whose view-change votes justified this new view.
    pub voters: Vec<ReplicaId>,
    /// Re-proposals (including null gap fillers) for the new view.
    pub pre_prepares: Vec<PrePrepareMsg>,
    /// Sender (the new primary).
    pub replica: ReplicaId,
}

/// Any CLBFT protocol message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Msg {
    /// A request forwarded to the primary by another replica.
    Forward(Request),
    /// Ordering proposal from the primary.
    PrePrepare(PrePrepareMsg),
    /// Prepare acknowledgement.
    Prepare(PrepareMsg),
    /// Commit.
    Commit(CommitMsg),
    /// Checkpoint announcement.
    Checkpoint(CheckpointMsg),
    /// View-change vote.
    ViewChange(ViewChangeMsg),
    /// New-view installation.
    NewView(NewViewMsg),
}

impl Msg {
    /// A short tag for metrics and traces.
    pub fn kind(&self) -> &'static str {
        match self {
            Msg::Forward(_) => "forward",
            Msg::PrePrepare(_) => "pre-prepare",
            Msg::Prepare(_) => "prepare",
            Msg::Commit(_) => "commit",
            Msg::Checkpoint(_) => "checkpoint",
            Msg::ViewChange(_) => "view-change",
            Msg::NewView(_) => "new-view",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_digest_depends_on_all_fields() {
        let r = Request::new(RequestId::new(1, 2), Bytes::from_static(b"abc"));
        let d0 = r.digest();
        assert_eq!(d0, r.digest(), "digest is deterministic");
        let r2 = Request::new(RequestId::new(1, 3), Bytes::from_static(b"abc"));
        assert_ne!(d0, r2.digest());
        let r3 = Request::new(RequestId::new(1, 2), Bytes::from_static(b"abd"));
        assert_ne!(d0, r3.digest());
    }

    #[test]
    fn null_requests() {
        let r = Request::null(Seq(9));
        assert!(r.is_null());
        assert!(r.id.is_null());
        assert_eq!(format!("{:?}", r.id), "req(null@9)");
        let real = RequestId::new(3, 4);
        assert!(!real.is_null());
        assert_eq!(format!("{real:?}"), "req(3:4)");
    }

    #[test]
    fn msg_kinds() {
        let r = Request::new(RequestId::new(0, 0), Bytes::new());
        assert_eq!(Msg::Forward(r).kind(), "forward");
    }
}
