//! Merkle-partitioned snapshot pages.
//!
//! The application snapshot is chunked into fixed-size pages and summarized
//! by a [`PageManifest`]: one digest per page plus a binary Merkle root over
//! the digest list. Checkpoint certificates cover the root (via
//! [`crate::checkpoint_digest`]), so `f + 1` matching checkpoint votes vouch
//! for *every page digest at once* — a fetching replica can then pull pages
//! one range at a time ([`crate::FetchPagesMsg`]/[`crate::PageResponseMsg`])
//! and verify each page against the certified manifest before installing
//! anything. A Byzantine responder can stall a transfer but never corrupt
//! it, and a replica whose state differs in `k` pages fetches `O(k)` pages,
//! not `O(total)` (Castro–Liskov hierarchical state partitions).
//!
//! The same manifest drives **incremental checkpoints**: at a boundary the
//! replica re-hashes only pages whose bytes changed since the previous
//! boundary, so checkpoint CPU stops scaling with total state size.

use crate::wire::{Decoder, Encoder, WireError};
use pws_crypto::sha256::{Digest32, Sha256};

/// Default page size (bytes) used by [`crate::Config::new`].
pub const DEFAULT_PAGE_SIZE: u32 = 1024;

/// Hard cap on the page count of one manifest on the wire: bounds the
/// allocation a hostile count prefix can drive (64 GiB of state at the
/// default page size — far above any simulated service).
pub const MAX_WIRE_PAGES: usize = 1 << 20;

/// Protocol cap on the pages one [`crate::FetchPagesMsg`] may request and
/// one [`crate::PageResponseMsg`] may carry. Deliberately *lower* than the
/// wire decode cap ([`MAX_WIRE_PAGE_RESPONSE`]): an over-cap response still
/// decodes, reaches the fetch state machine, and is rejected and counted
/// there — misbehavior is observable, not silently dropped at the codec.
pub const MAX_PAGES_PER_FETCH: u32 = 64;

/// Hard decode cap on the page count of one page response frame.
pub const MAX_WIRE_PAGE_RESPONSE: usize = 4096;

/// The content digest of one page: domain-separated and length-covered, so
/// a page can never alias a non-page hash input or a differently-sized
/// page.
pub fn page_digest(bytes: &[u8]) -> Digest32 {
    let mut h = Sha256::new();
    h.update(b"pws-page");
    h.update_u64(bytes.len() as u64);
    h.update(bytes);
    h.finalize()
}

/// The deterministic page table of one snapshot: per-page digests plus the
/// Merkle root the checkpoint certificate covers.
///
/// Two correct replicas chunking byte-identical snapshots with the same
/// page size produce identical manifests, so the root is exactly as
/// group-stable as the snapshot itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageManifest {
    page_size: u32,
    total_len: u64,
    digests: Vec<Digest32>,
    root: Digest32,
}

impl PageManifest {
    /// Chunks `bytes` into `page_size`-byte pages and hashes every one.
    ///
    /// # Panics
    ///
    /// Panics if `page_size == 0`.
    pub fn compute(bytes: &[u8], page_size: u32) -> PageManifest {
        let (m, _, _) = PageManifest::compute_incremental(bytes, page_size, None);
        m
    }

    /// Chunks `bytes`, reusing digests from `prev` for pages whose bytes
    /// are unchanged — the incremental-checkpoint fast path. Returns the
    /// manifest plus `(hashed, dirty)` page counts: `hashed` is how many
    /// pages were actually re-digested, `dirty` how many changed (grew,
    /// shrank, or differ byte-wise) since `prev`. Without a previous
    /// snapshot every page is both hashed and dirty.
    ///
    /// # Panics
    ///
    /// Panics if `page_size == 0`.
    pub fn compute_incremental(
        bytes: &[u8],
        page_size: u32,
        prev: Option<(&[u8], &PageManifest)>,
    ) -> (PageManifest, u64, u64) {
        assert!(page_size > 0, "page size must be positive");
        let ps = page_size as usize;
        let count = bytes.len().div_ceil(ps);
        let prev = prev.filter(|(_, m)| m.page_size == page_size);
        let mut digests = Vec::with_capacity(count);
        let (mut hashed, mut dirty) = (0u64, 0u64);
        for i in 0..count {
            let page = &bytes[i * ps..bytes.len().min((i + 1) * ps)];
            let reused = prev.and_then(|(pb, pm)| {
                let old = pb.get(i * ps..pb.len().min((i + 1) * ps))?;
                (old == page).then(|| pm.digests[i])
            });
            match reused {
                Some(d) => digests.push(d),
                None => {
                    hashed += 1;
                    dirty += 1;
                    digests.push(page_digest(page));
                }
            }
        }
        let mut m = PageManifest {
            page_size,
            total_len: bytes.len() as u64,
            digests,
            root: Digest32::ZERO,
        };
        m.root = m.compute_root();
        (m, hashed, dirty)
    }

    /// The binary Merkle root over the page digests, additionally covering
    /// the page size, total length, and page count so no two distinct
    /// `(geometry, digest list)` pairs alias.
    fn compute_root(&self) -> Digest32 {
        let mut level = self.digests.clone();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                if let [l, r] = pair {
                    let mut h = Sha256::new();
                    h.update(b"pws-merkle-node");
                    h.update(l.as_bytes());
                    h.update(r.as_bytes());
                    next.push(h.finalize());
                } else {
                    // Odd leftover promotes unchanged; the final root hash
                    // covers the count, so a promoted leaf cannot alias an
                    // interior node of a different-sized tree.
                    next.push(pair[0]);
                }
            }
            level = next;
        }
        let mut h = Sha256::new();
        h.update(b"pws-merkle-root");
        h.update_u64(u64::from(self.page_size));
        h.update_u64(self.total_len);
        h.update_u64(self.digests.len() as u64);
        if let Some(top) = level.first() {
            h.update(top.as_bytes());
        }
        h.finalize()
    }

    /// The Merkle root (the digest checkpoint certificates cover).
    pub fn root(&self) -> Digest32 {
        self.root
    }

    /// The configured page size in bytes.
    pub fn page_size(&self) -> u32 {
        self.page_size
    }

    /// Total snapshot length in bytes.
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// Number of pages.
    pub fn len(&self) -> usize {
        self.digests.len()
    }

    /// Whether the snapshot is empty (zero pages).
    pub fn is_empty(&self) -> bool {
        self.digests.is_empty()
    }

    /// The digest of page `i`, if in range.
    pub fn digest(&self, i: usize) -> Option<&Digest32> {
        self.digests.get(i)
    }

    /// The byte length page `i` must have (every page is `page_size` bytes
    /// except a shorter final remainder).
    pub fn page_len(&self, i: usize) -> usize {
        let ps = u64::from(self.page_size);
        let start = i as u64 * ps;
        (self.total_len.saturating_sub(start)).min(ps) as usize
    }

    /// Verifies candidate bytes for page `i` against the manifest: the
    /// index must be in range, the length exact, and the content digest a
    /// match. With the root `f + 1`-vouched this is the page-install trust
    /// check — nothing failing it may ever be installed.
    pub fn verify_page(&self, i: usize, bytes: &[u8]) -> bool {
        match self.digests.get(i) {
            Some(want) => bytes.len() == self.page_len(i) && page_digest(bytes) == *want,
            None => false,
        }
    }

    /// Indices of pages whose digest is *not* served by `have` (a
    /// content-addressed store of locally held pages): exactly the pages a
    /// fetcher must pull over the wire.
    pub fn missing_pages<'a>(
        &'a self,
        mut have: impl FnMut(&Digest32) -> bool + 'a,
    ) -> impl Iterator<Item = usize> + 'a {
        self.digests
            .iter()
            .enumerate()
            .filter(move |(_, d)| !have(d))
            .map(|(i, _)| i)
    }

    /// Canonical encoding, mirroring [`crate::ExecutedSet::encode_into`]:
    /// geometry first, then the digest list (the root is recomputed on
    /// decode, never trusted from the wire).
    pub fn encode_into(&self, e: &mut Encoder) {
        e.put_u32(self.page_size);
        e.put_u64(self.total_len);
        e.put_u32(self.digests.len() as u32);
        for d in &self.digests {
            e.put_digest(d);
        }
    }

    /// Decodes a manifest, enforcing `max_pages` before allocating and
    /// rejecting any geometry whose page count does not match
    /// `ceil(total_len / page_size)` — a count/length mismatch cannot
    /// alias a valid manifest.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for truncated, oversized, or inconsistent
    /// input.
    pub fn decode_from(d: &mut Decoder<'_>, max_pages: usize) -> Result<PageManifest, WireError> {
        let page_size = d.u32()?;
        if page_size == 0 {
            return Err(WireError::malformed("zero page size"));
        }
        let total_len = d.u64()?;
        let count = d.u32()? as usize;
        if count > max_pages {
            return Err(WireError::malformed("too many pages"));
        }
        if count as u64 != total_len.div_ceil(u64::from(page_size)) {
            return Err(WireError::malformed("page count/length mismatch"));
        }
        let mut digests = Vec::with_capacity(count.min(4096));
        for _ in 0..count {
            digests.push(d.digest()?);
        }
        let mut m = PageManifest {
            page_size,
            total_len,
            digests,
            root: Digest32::ZERO,
        };
        m.root = m.compute_root();
        Ok(m)
    }
}

/// Monotone counters for the page subsystem, drained by the harness into
/// the `clbft.pages.*` metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageCounters {
    /// Pages actually re-digested at checkpoint boundaries.
    pub hashed: u64,
    /// Pages whose bytes changed since the previous boundary.
    pub dirty: u64,
    /// Pages pulled over the wire during state transfer.
    pub fetched: u64,
    /// Fetched pages that passed verification against the certified root.
    pub verified: u64,
    /// Page-response frames or pages rejected (unsolicited, wrong range,
    /// over cap, duplicate, or digest mismatch).
    pub rejected: u64,
}

impl PageCounters {
    /// Drains the counters, returning the accumulated values and zeroing
    /// them (so successive drains sum correctly).
    pub fn take(&mut self) -> PageCounters {
        std::mem::take(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bytes(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn geometry_and_digests() {
        let data = bytes(10);
        let m = PageManifest::compute(&data, 4);
        assert_eq!(m.len(), 3);
        assert_eq!(m.total_len(), 10);
        assert_eq!(m.page_size(), 4);
        assert_eq!(m.page_len(0), 4);
        assert_eq!(m.page_len(2), 2, "final remainder page is short");
        assert_eq!(m.page_len(3), 0, "out of range");
        assert!(m.verify_page(0, &data[0..4]));
        assert!(m.verify_page(2, &data[8..10]));
        assert!(!m.verify_page(2, &data[8..9]), "wrong length");
        assert!(!m.verify_page(0, &data[4..8]), "wrong content");
        assert!(!m.verify_page(3, b""), "out of range");
        let empty = PageManifest::compute(b"", 4);
        assert!(empty.is_empty());
        assert_eq!(empty.len(), 0);
    }

    #[test]
    fn root_covers_geometry_content_and_count() {
        let data = bytes(64);
        let base = PageManifest::compute(&data, 8);
        assert_eq!(base.root(), PageManifest::compute(&data, 8).root());
        // Different page size over identical bytes: different root.
        assert_ne!(base.root(), PageManifest::compute(&data, 16).root());
        // Any byte flip: different root.
        let mut flipped = data.clone();
        flipped[40] ^= 1;
        assert_ne!(base.root(), PageManifest::compute(&flipped, 8).root());
        // A truncated snapshot: different root (length is covered).
        assert_ne!(base.root(), PageManifest::compute(&data[..56], 8).root());
        // Empty snapshots at different page sizes do not alias.
        assert_ne!(
            PageManifest::compute(b"", 4).root(),
            PageManifest::compute(b"", 8).root()
        );
    }

    #[test]
    fn odd_page_counts_do_not_alias_even_trees() {
        // 3 pages vs 2 pages sharing a prefix: the promoted odd leaf must
        // not collide with a 2-leaf tree (count is root-covered).
        let d24 = bytes(24);
        let three = PageManifest::compute(&d24, 8);
        let two = PageManifest::compute(&d24[..16], 8);
        assert_ne!(three.root(), two.root());
        // 5 pages vs 4: same at the next level up.
        let d40 = bytes(40);
        assert_ne!(
            PageManifest::compute(&d40, 8).root(),
            PageManifest::compute(&d40[..32], 8).root()
        );
    }

    #[test]
    fn incremental_reuses_clean_page_digests() {
        let old = bytes(64);
        let mut new = old.clone();
        new[9] ^= 0xff; // dirties page 1 only
        let prev = PageManifest::compute(&old, 8);
        let (m, hashed, dirty) = PageManifest::compute_incremental(&new, 8, Some((&old, &prev)));
        assert_eq!((hashed, dirty), (1, 1), "only the touched page re-hashes");
        assert_eq!(m, PageManifest::compute(&new, 8), "digests are identical");
        // Growth: the new tail pages hash, the stable prefix does not.
        let mut grown = old.clone();
        grown.extend_from_slice(&bytes(16));
        let (g, hashed, dirty) = PageManifest::compute_incremental(&grown, 8, Some((&old, &prev)));
        assert_eq!((hashed, dirty), (2, 2));
        assert_eq!(g, PageManifest::compute(&grown, 8));
        // A page-size change forces a full rehash.
        let (_, hashed, _) = PageManifest::compute_incremental(&new, 16, Some((&old, &prev)));
        assert_eq!(hashed, 4);
        // No previous snapshot: everything hashes.
        let (_, hashed, dirty) = PageManifest::compute_incremental(&new, 8, None);
        assert_eq!((hashed, dirty), (8, 8));
    }

    #[test]
    fn missing_pages_diffs_against_a_store() {
        let old = bytes(32);
        let mut new = old.clone();
        new[0] ^= 1;
        new[25] ^= 1;
        let target = PageManifest::compute(&new, 8);
        let store: std::collections::HashSet<Digest32> = PageManifest::compute(&old, 8)
            .digests
            .iter()
            .copied()
            .collect();
        let missing: Vec<usize> = target.missing_pages(|d| store.contains(d)).collect();
        assert_eq!(missing, vec![0, 3], "only the changed pages are missing");
        let cold: Vec<usize> = target.missing_pages(|_| false).collect();
        assert_eq!(cold, vec![0, 1, 2, 3], "cold store misses everything");
    }

    #[test]
    fn codec_roundtrip_and_prefix_truncation() {
        let m = PageManifest::compute(&bytes(100), 16);
        let mut e = Encoder::new();
        m.encode_into(&mut e);
        let buf = e.finish();
        let mut d = Decoder::new(&buf);
        let back = PageManifest::decode_from(&mut d, MAX_WIRE_PAGES).unwrap();
        d.finish().unwrap();
        assert_eq!(back, m, "root recomputes identically");
        for cut in 0..buf.len() {
            let mut d = Decoder::new(&buf[..cut]);
            let r = PageManifest::decode_from(&mut d, MAX_WIRE_PAGES).and_then(|_| d.finish());
            assert!(r.is_err(), "cut={cut}");
        }
    }

    #[test]
    fn codec_rejects_inconsistent_geometry() {
        // Count not matching ceil(total_len / page_size).
        let mut e = Encoder::new();
        e.put_u32(8);
        e.put_u64(100);
        e.put_u32(5); // should be 13
        let buf = e.finish();
        assert!(PageManifest::decode_from(&mut Decoder::new(&buf), MAX_WIRE_PAGES).is_err());
        // Zero page size.
        let mut e = Encoder::new();
        e.put_u32(0);
        e.put_u64(0);
        e.put_u32(0);
        let buf = e.finish();
        assert!(PageManifest::decode_from(&mut Decoder::new(&buf), MAX_WIRE_PAGES).is_err());
        // Count over the decode cap.
        let mut e = Encoder::new();
        e.put_u32(1);
        e.put_u64(u64::MAX);
        e.put_u32(u32::MAX);
        let buf = e.finish();
        assert!(PageManifest::decode_from(&mut Decoder::new(&buf), MAX_WIRE_PAGES).is_err());
    }

    #[test]
    fn counters_drain_to_zero() {
        let mut c = PageCounters {
            hashed: 1,
            dirty: 2,
            fetched: 3,
            verified: 4,
            rejected: 5,
        };
        let d = c.take();
        assert_eq!(d.rejected, 5);
        assert_eq!(c, PageCounters::default());
    }

    proptest! {
        #[test]
        fn manifest_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..512),
                              ps in 1u32..64) {
            let m = PageManifest::compute(&data, ps);
            let mut e = Encoder::new();
            m.encode_into(&mut e);
            let buf = e.finish();
            let mut d = Decoder::new(&buf);
            let back = PageManifest::decode_from(&mut d, MAX_WIRE_PAGES).unwrap();
            d.finish().unwrap();
            prop_assert_eq!(back, m);
        }

        #[test]
        fn every_page_verifies_and_corruption_never_aliases(
            data in proptest::collection::vec(any::<u8>(), 1..256),
            ps in 1u32..32, flip in any::<usize>()) {
            let m = PageManifest::compute(&data, ps);
            let ps_u = ps as usize;
            for i in 0..m.len() {
                let page = &data[i * ps_u..data.len().min((i + 1) * ps_u)];
                prop_assert!(m.verify_page(i, page));
            }
            // Flip one byte anywhere: its page must stop verifying.
            let pos = flip % data.len();
            let mut bad = data.clone();
            bad[pos] ^= 0xff;
            let i = pos / ps_u;
            prop_assert!(!m.verify_page(i, &bad[i * ps_u..data.len().min((i + 1) * ps_u)]));
            prop_assert_ne!(m.root(), PageManifest::compute(&bad, ps).root());
        }

        #[test]
        fn arbitrary_bytes_never_panic_manifest(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            let mut d = Decoder::new(&data);
            let _ = PageManifest::decode_from(&mut d, MAX_WIRE_PAGES);
        }
    }
}
