//! The CLBFT replica state machine (sans-io).

use crate::dedup::ExecutedSet;
use crate::log::Log;
use crate::messages::{
    checkpoint_digest, Batch, CheckpointMsg, CommitMsg, FetchPagesMsg, FetchStateMsg, Msg,
    NewViewMsg, PageResponseMsg, PrePrepareMsg, PrepareMsg, PreparedClaim, Request, RequestId,
    StateResponseMsg, SuffixSlot, ViewChangeMsg,
};
use crate::pages::{page_digest, PageCounters, PageManifest, MAX_PAGES_PER_FETCH};
use crate::{Config, ReplicaId, Seq, View};
use bytes::Bytes;
use pws_crypto::sha256::{Digest32, Sha256};
use pws_obs::{AuditEvent, FlightKind, Phase, ProtoFamily};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// An observability event collected by the replica for the harness to
/// drain ([`Replica::take_obs_events`]) and stamp with real (sim) time.
/// The sans-io replica owns no clock, so events carry no timestamp here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsEvent {
    /// A request-lifecycle phase was reached (collected only with
    /// [`Config::obs_phases`]).
    Phase {
        /// The request the phase belongs to.
        id: RequestId,
        /// The phase reached.
        phase: Phase,
    },
    /// A protocol event for the flight recorder (always collected; see
    /// [`FlightKind`] for the meaning of `a`/`b`).
    Flight {
        /// What happened.
        kind: FlightKind,
        /// First payload slot.
        a: u64,
        /// Second payload slot.
        b: u64,
    },
    /// A protocol-plane span phase was reached (collected only with
    /// [`Config::obs_phases`], like request phases). The group is
    /// supplied by the hosting harness at drain time.
    Proto {
        /// The span family (view change / checkpoint / state transfer).
        family: ProtoFamily,
        /// The per-family span id (target view or sequence number).
        id: u64,
        /// The family's phase index.
        phase: usize,
        /// Optional payload (e.g. pages fetched), 0 when meaningless.
        count: u64,
    },
    /// A protocol audit observation (collected only with
    /// [`Config::audit`]) for the online invariant auditor.
    Audit(AuditEvent),
}

/// Folds a 32-byte digest to 64 bits for audit events: auditing needs
/// cheap inequality detection, not collision resistance.
fn fold_digest(d: &Digest32) -> u64 {
    let b = d.as_bytes();
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

/// Bound on the undrained obs buffer: a bare [`Replica`] whose harness
/// never drains (e.g. a unit test) must not grow memory without limit.
const OBS_BUFFER_CAP: usize = 1 << 16;

/// Appends to the obs buffer, dropping events past the cap.
fn push_obs(buf: &mut Vec<ObsEvent>, ev: ObsEvent) {
    if buf.len() < OBS_BUFFER_CAP {
        buf.push(ev);
    }
}

/// Timer guidance emitted alongside protocol actions. The harness maintains
/// one view-change timer and one batch timer per replica and applies these
/// commands to whichever timer the enclosing [`Action`] names.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerCmd {
    /// Start (or restart) the timer.
    Restart,
    /// Stop the timer: no outstanding work.
    Stop,
}

/// An effect requested by the replica. The transport harness performs it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Send a message to one replica in the group.
    Send(ReplicaId, Msg),
    /// Send a message to every *other* replica in the group.
    Broadcast(Msg),
    /// Deliver the batch agreed at `seq`, unpacked in batch order. `batch`
    /// contains only the requests that have not executed before
    /// (deduplicated); null gap-filler batches deliver nothing.
    Execute {
        /// Agreed sequence number (one slot per batch).
        seq: Seq,
        /// The not-yet-executed requests of the slot's batch, in order.
        batch: Vec<Request>,
    },
    /// Execution crossed a checkpoint boundary: the harness must capture
    /// the application state *as of this point in the action stream* (all
    /// `Execute`s emitted before this action applied, none after) and hand
    /// it back via [`Replica::on_snapshot`], which digests it, broadcasts
    /// the checkpoint certificate vote, and retains it for state transfer.
    TakeCheckpoint(Seq),
    /// A verified stable snapshot was fetched from a peer: the harness must
    /// replace the application state with `snapshot` (the bytes it captured
    /// for [`Action::TakeCheckpoint`] at `seq` on some correct replica).
    /// `Execute` actions that follow resume from `seq`.
    InstallState {
        /// The checkpoint the snapshot captures.
        seq: Seq,
        /// The opaque application snapshot to restore.
        snapshot: Bytes,
    },
    /// A checkpoint became stable; the log below it was discarded.
    Stable(Seq),
    /// Answer a read-only request directly from committed application
    /// state (the PBFT read optimization): no sequence slot is consumed
    /// and nothing is broadcast. Emitted only while
    /// [`Replica::can_serve_reads`] holds; the harness executes the
    /// request against a scratch copy of state and sends the reply on its
    /// own channel — the client accepts it only on `2f + 1` matching
    /// copies.
    ReadOnly(Request),
    /// Speculatively execute the batch pre-prepared at `seq`
    /// (Zyzzyva-style, emitted only with [`Config::speculative`]): the
    /// harness must execute against a rollback-able copy of state, after
    /// snapshotting enough to honour a later
    /// [`Action::RollbackSpeculation`]. When the slot commits, the normal
    /// [`Action::Execute`] for it follows with the identical batch — the
    /// harness finalizes the speculative result instead of re-executing.
    SpeculativeExecute {
        /// The pre-prepared (not yet committed) slot.
        seq: Seq,
        /// The not-yet-executed requests of the slot's batch, in order
        /// (deduplicated exactly as [`Action::Execute`] would).
        batch: Vec<Request>,
    },
    /// A view change (or state install) discarded speculated slots: the
    /// harness must restore application state to what it was after the
    /// `Execute` for `to` (every `SpeculativeExecute` above `to` is void).
    RollbackSpeculation {
        /// The committed frontier speculation rolls back to.
        to: Seq,
    },
    /// The replica entered a new view.
    EnteredView(View),
    /// Maintain the view-change timer.
    ViewTimer(TimerCmd),
    /// Maintain the primary's batch-accumulation timer. When the timer
    /// fires the harness calls [`Replica::on_batch_timer`], which seals
    /// whatever is queued regardless of pipeline occupancy. The delay is
    /// the harness's rendering of [`Config::batch_delay_us`].
    BatchTimer(TimerCmd),
}

/// Execution-chain and dedup-set values captured when execution crosses a
/// checkpoint boundary, consumed when the harness answers with the
/// application snapshot.
#[derive(Debug, Clone)]
struct BoundaryInfo {
    exec_chain: Digest32,
    executed: ExecutedSet,
}

/// A fully-materialized checkpoint retained to serve state transfer. Its
/// digest is recomputed by fetchers from these components, so it is not
/// stored here. The manifest is the snapshot's page table
/// ([`PageManifest`]): `StateResponse` ships the manifest, and the pages
/// themselves are served range-by-range from `snapshot` in answer to
/// `FetchPages`.
#[derive(Debug, Clone)]
struct CheckpointState {
    seq: Seq,
    exec_chain: Digest32,
    snapshot: Bytes,
    manifest: PageManifest,
    executed: ExecutedSet,
}

/// An in-progress Merkle page transfer toward a certified checkpoint. The
/// manifest arrived in a `StateResponse` whose checkpoint digest reached
/// `f + 1` distinct vouchers — and that digest covers the manifest's Merkle
/// root, which covers every per-page digest — so each received page is
/// verified against the manifest before it fills a slot. The checkpoint
/// installs only once no page is missing; a Byzantine responder can stall
/// the transfer but never corrupt it.
#[derive(Debug)]
struct PageFetch {
    seq: Seq,
    digest: Digest32,
    exec_chain: Digest32,
    executed: ExecutedSet,
    manifest: PageManifest,
    /// Verified page bytes by index; `None` until fetched (pages already in
    /// the local store are filled at fetch start).
    pages: Vec<Option<Bytes>>,
    /// Pages asked of some responder in the current solicitation round.
    /// A page is never re-requested while this is set — redundant honest
    /// responders would otherwise all ship the same range — and the flag
    /// clears when the page's answer fails verification (re-ask another
    /// peer immediately) or when a new `FetchState` round begins.
    requested: Vec<bool>,
    /// Count of `None` entries in `pages`.
    missing: usize,
}

/// Claims for the batch agreed at one suffix slot, collected across
/// `StateResponse`s. The checkpoint digest does not cover the suffix, so a
/// slot replays only once `f + 1` distinct responders sent the identical
/// batch for it — then at least one correct replica vouches that this batch
/// really committed there.
#[derive(Debug, Default)]
struct SuffixVotes {
    /// Each responder's latest claim for this slot (a re-vote replaces).
    by_replica: HashMap<ReplicaId, Digest32>,
    /// The claimed batches, by batch digest.
    batches: HashMap<Digest32, Batch>,
}

#[derive(Debug, Clone)]
enum ReqState {
    /// Known but not yet ordered; payload retained for (re-)proposal.
    Pending(Request),
    /// Ordered in some slot; payload retained in case a view change drops it.
    Ordered(Request),
}

/// A CLBFT replica.
///
/// Drive it with [`Replica::on_request`], [`Replica::on_message`], and
/// [`Replica::on_view_timer`]; apply the returned [`Action`]s. See the
/// [crate docs](crate) for a complete in-memory example.
#[derive(Debug)]
pub struct Replica {
    id: ReplicaId,
    cfg: Config,
    view: View,
    in_view_change: bool,
    vc_target: View,
    /// Last sequence number this replica assigned as primary.
    next_seq: Seq,
    log: Log,
    last_exec: Seq,
    exec_chain: Digest32,
    stable_seq: Seq,
    stable_digest: Digest32,
    own_checkpoints: BTreeMap<Seq, Digest32>,
    checkpoint_votes: BTreeMap<Seq, HashMap<Digest32, HashSet<ReplicaId>>>,
    /// Per-peer index of the seqs it holds votes for in `checkpoint_votes`,
    /// capping how many entries any one peer can occupy (a Byzantine peer
    /// could otherwise grow the vote map without bound by voting for
    /// arbitrary far-future seqs that are never garbage-collected).
    ckpt_vote_index: HashMap<ReplicaId, BTreeSet<Seq>>,
    /// Suffix-slot claims gathered from `StateResponse`s; a slot replays
    /// only with `f + 1` identical copies ([`Replica::try_replay_suffix`]).
    suffix_votes: BTreeMap<Seq, SuffixVotes>,
    /// The latest view each `StateResponse` sender reported. A rebooted
    /// replica rejoins view `v` only when `f + 1` distinct responders
    /// report a view `>= v` (so at least one correct replica really is
    /// there); a lone Byzantine responder cannot strand it in a bogus
    /// far-future view.
    reported_views: HashMap<ReplicaId, View>,
    /// `StateResponse`s served per requester at the current stable
    /// checkpoint, bounding the large-message amplification a
    /// `FetchState`-spamming peer can extract.
    served_fetches: HashMap<ReplicaId, (Seq, u32)>,
    /// Chain/dedup values at checkpoint boundaries awaiting the harness's
    /// snapshot ([`Replica::on_snapshot`]).
    pending_boundaries: BTreeMap<Seq, BoundaryInfo>,
    /// Checkpoints taken locally but not yet group-stable.
    pending_states: BTreeMap<Seq, CheckpointState>,
    /// The latest stable checkpoint's full state, serving `FetchState`.
    latest_stable: Option<CheckpointState>,
    /// Highest checkpoint seq a lag-triggered fetch is in flight for
    /// (suppresses re-broadcasting for the same evidence).
    fetch_target: Option<Seq>,
    /// In-progress Merkle page transfer toward a certified checkpoint
    /// ([`Replica::begin_page_fetch`]); cleared on install or when a newer
    /// certified checkpoint supersedes it.
    page_fetch: Option<PageFetch>,
    /// Content-addressed store of pages this replica holds (the latest
    /// boundary's pages, plus verified fetched pages mid-transfer): the
    /// diff base that lets a warm fetcher pull only pages it is missing.
    /// Rebuilt wholesale at each boundary/install, so it stays bounded at
    /// one snapshot's worth of pages.
    page_store: HashMap<Digest32, Bytes>,
    /// The previous boundary's snapshot and manifest: the diff base for
    /// incremental hashing ([`PageManifest::compute_incremental`]).
    last_hashed: Option<(Bytes, PageManifest)>,
    /// Counters behind the `clbft.pages.*` metrics, drained by the harness
    /// via [`Replica::take_page_counters`].
    page_counters: PageCounters,
    /// Pages served per requester at the current stable checkpoint: the
    /// page-granular sibling of `served_fetches`, bounding the traffic a
    /// `FetchPages`-spamming peer can extract.
    served_pages: HashMap<ReplicaId, (Seq, u64)>,
    /// Requests known but not yet executed (pending or ordered). Entries
    /// move into the compact [`ExecutedSet`] on execution, so this map
    /// stays bounded by the in-flight window, not by history.
    requests: HashMap<RequestId, ReqState>,
    /// The executed-request dedup set, compacted per origin. Feeds the
    /// checkpoint digest and ships in `StateResponse`s.
    executed: ExecutedSet,
    outstanding: usize,
    /// Requests awaiting proposal at the primary: the batch accumulator.
    /// Drained into sealed batches by [`Replica::drain_queue`] whenever
    /// pipeline and watermark capacity allow.
    queue: VecDeque<RequestId>,
    /// Whether a batch-delay timer is currently armed at the harness.
    batch_timer_armed: bool,
    /// Re-entrancy guard: `drain_queue` can be re-entered through
    /// `try_execute` when a proposal executes synchronously (n = 1); the
    /// outer drain loop already continues, so inner calls are no-ops.
    draining: bool,
    /// Highest slot speculatively executed ([`Config::speculative`]);
    /// never below `last_exec` matters — reads are gated on
    /// `last_spec <= last_exec`, i.e. no tentative state ahead of the
    /// committed frontier.
    last_spec: Seq,
    /// Request ids delivered via [`Action::SpeculativeExecute`] whose slot
    /// has not yet committed; keeps re-proposals from speculating a
    /// request twice. Bounded by the in-flight window.
    spec_overlay: HashSet<RequestId>,
    /// State transfer in progress: set when this replica solicits a fetch
    /// (lag evidence or explicit rejoin) and cleared only once the fetch
    /// is satisfied *and* the known committed suffix has replayed — until
    /// then the replica's state may be a bare checkpoint behind the
    /// group's frontier and must not answer read-only requests.
    recovering: bool,
    view_changes: BTreeMap<View, HashMap<ReplicaId, ViewChangeMsg>>,
    new_view_sent: HashSet<u64>,
    /// Pre-prepares/prepares for views we have not entered yet (e.g. a new
    /// primary's first proposals racing ahead of its NewView on the wire).
    /// Drained on view entry; bounded to keep Byzantine peers from
    /// ballooning memory.
    stashed: Vec<(ReplicaId, Msg)>,
    /// Observability events awaiting the harness
    /// ([`Replica::take_obs_events`]). Bounded by [`OBS_BUFFER_CAP`].
    obs_events: Vec<ObsEvent>,
}

const STASH_CAP: usize = 10_000;

/// Maximum `StateResponse`s served to one requester per stable checkpoint:
/// one for the fetch that discovers the checkpoint, one spare in case the
/// requester loses its state again before the next boundary stabilizes.
const MAX_SERVES_PER_STABLE: u32 = 2;

/// Floor of the per-requester *page*-serve budget per stable checkpoint
/// (the budget itself is `MAX_SERVES_PER_STABLE` full transfers' worth of
/// pages); the floor keeps tiny snapshots from starving honest retries.
const MIN_PAGE_BUDGET: u64 = 2 * MAX_PAGES_PER_FETCH as u64;

/// The `Bytes` view of page `i` of `snapshot` (refcounted slice, no copy).
fn page_slice(snapshot: &Bytes, manifest: &PageManifest, i: usize) -> Bytes {
    let ps = manifest.page_size() as usize;
    let start = i * ps;
    snapshot.slice(start..(start + ps).min(snapshot.len()))
}

/// Concatenates a completed fetch's pages back into the snapshot bytes.
/// Every page was verified against the certified manifest, so the result
/// re-chunks to exactly that manifest.
fn assemble_pages(pf: &PageFetch) -> Bytes {
    let mut buf = Vec::with_capacity(pf.manifest.total_len() as usize);
    for page in &pf.pages {
        buf.extend_from_slice(page.as_ref().expect("fetch complete"));
    }
    Bytes::from(buf)
}

impl Replica {
    /// Creates a replica with the given id and group configuration.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for the group.
    pub fn new(id: ReplicaId, cfg: Config) -> Self {
        assert!(
            id.0 < cfg.n,
            "replica id {id:?} out of range for n={}",
            cfg.n
        );
        Replica {
            id,
            cfg,
            view: View(0),
            in_view_change: false,
            vc_target: View(0),
            next_seq: Seq::ZERO,
            log: Log::default(),
            last_exec: Seq::ZERO,
            exec_chain: Digest32::ZERO,
            stable_seq: Seq::ZERO,
            stable_digest: Digest32::ZERO,
            own_checkpoints: BTreeMap::new(),
            checkpoint_votes: BTreeMap::new(),
            ckpt_vote_index: HashMap::new(),
            suffix_votes: BTreeMap::new(),
            reported_views: HashMap::new(),
            served_fetches: HashMap::new(),
            pending_boundaries: BTreeMap::new(),
            pending_states: BTreeMap::new(),
            latest_stable: None,
            fetch_target: None,
            page_fetch: None,
            page_store: HashMap::new(),
            last_hashed: None,
            page_counters: PageCounters::default(),
            served_pages: HashMap::new(),
            requests: HashMap::new(),
            executed: ExecutedSet::new(),
            outstanding: 0,
            queue: VecDeque::new(),
            batch_timer_armed: false,
            draining: false,
            last_spec: Seq::ZERO,
            spec_overlay: HashSet::new(),
            recovering: false,
            view_changes: BTreeMap::new(),
            new_view_sent: HashSet::new(),
            stashed: Vec::new(),
            obs_events: Vec::new(),
        }
    }

    /// Records a request-lifecycle phase (no-op unless
    /// [`Config::obs_phases`]).
    fn obs_phase(&mut self, id: RequestId, phase: Phase) {
        if self.cfg.obs_phases {
            push_obs(&mut self.obs_events, ObsEvent::Phase { id, phase });
        }
    }

    /// Records a flight-recorder event (always collected).
    fn obs_flight(&mut self, kind: FlightKind, a: u64, b: u64) {
        push_obs(&mut self.obs_events, ObsEvent::Flight { kind, a, b });
    }

    /// Records a protocol-plane span phase (collected only with
    /// [`Config::obs_phases`], like request phases).
    fn obs_proto(&mut self, family: ProtoFamily, id: u64, phase: usize, count: u64) {
        if self.cfg.obs_phases {
            push_obs(
                &mut self.obs_events,
                ObsEvent::Proto {
                    family,
                    id,
                    phase,
                    count,
                },
            );
        }
    }

    /// Records an audit observation (collected only with [`Config::audit`]).
    fn obs_audit(&mut self, ev: AuditEvent) {
        if self.cfg.audit {
            push_obs(&mut self.obs_events, ObsEvent::Audit(ev));
        }
    }

    /// Drains the pending observability events. The harness stamps them
    /// with sim-time and feeds them to the simulation's recorder.
    pub fn take_obs_events(&mut self) -> Vec<ObsEvent> {
        std::mem::take(&mut self.obs_events)
    }

    /// This replica's id.
    pub fn id(&self) -> ReplicaId {
        self.id
    }

    /// The group configuration this replica runs with. The transport
    /// harness reads [`Config::batch_delay_us`] from here to size the
    /// timer behind [`Action::BatchTimer`].
    pub fn config(&self) -> &Config {
        &self.cfg
    }

    /// The current view.
    pub fn view(&self) -> View {
        self.view
    }

    /// The primary of the current view.
    pub fn primary(&self) -> ReplicaId {
        self.view.primary(self.cfg.n)
    }

    /// Whether this replica is the current primary.
    pub fn is_primary(&self) -> bool {
        self.primary() == self.id
    }

    /// Last executed sequence number.
    pub fn last_executed(&self) -> Seq {
        self.last_exec
    }

    /// Digest of the execution history (chained over all executed slots).
    pub fn execution_chain(&self) -> Digest32 {
        self.exec_chain
    }

    /// Last stable checkpoint.
    pub fn stable_seq(&self) -> Seq {
        self.stable_seq
    }

    /// Digest of the last stable checkpoint ([`checkpoint_digest`]; ZERO
    /// before the first checkpoint stabilizes).
    pub fn stable_digest(&self) -> Digest32 {
        self.stable_digest
    }

    /// Executed configuration records above the stable checkpoint, in slot
    /// order. Together with the checkpointed application snapshot this is
    /// the durable record a recovering coordinator replays so it never
    /// forgets a transaction decision or reshard step it already ordered.
    pub fn config_records_above_stable(&self) -> Vec<(Seq, Request)> {
        self.log.config_records_above(self.stable_seq)
    }

    /// Whether a view change is in progress.
    pub fn in_view_change(&self) -> bool {
        self.in_view_change
    }

    /// Number of known-but-unexecuted requests (drives the liveness timer).
    pub fn outstanding(&self) -> usize {
        self.outstanding
    }

    /// Requests queued at this replica awaiting batch proposal (primary
    /// only; always 0 on an idle backup).
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Slots this primary has proposed that have not yet executed locally.
    /// While this is below [`Config::pipeline_depth`] proposals go out
    /// immediately; above it, requests accumulate into batches.
    pub fn in_flight(&self) -> u64 {
        self.next_seq.0.saturating_sub(self.last_exec.0)
    }

    fn high_watermark(&self) -> Seq {
        Seq(self.stable_seq.0 + self.cfg.watermark_window)
    }

    fn in_watermarks(&self, seq: Seq) -> bool {
        seq > self.stable_seq && seq <= self.high_watermark()
    }

    /// Whether the read-only fast path may answer right now: not mid view
    /// change, no state transfer in flight (a freshly installed checkpoint
    /// may be a whole suffix behind the group), and no speculative results
    /// ahead of the committed frontier (a read must never observe state
    /// that could still roll back).
    pub fn can_serve_reads(&self) -> bool {
        !self.in_view_change && !self.recovering && self.last_spec <= self.last_exec
    }

    /// Whether a solicited state transfer is still in progress (reads stay
    /// gated until the fetched checkpoint's committed suffix replays).
    pub fn state_transfer_in_progress(&self) -> bool {
        self.recovering
    }

    /// Highest speculatively executed slot (equals [`Replica::last_executed`]
    /// or below whenever no tentative state is live).
    pub fn last_speculated(&self) -> Seq {
        self.last_spec.max(self.last_exec)
    }

    /// Submits a request at this replica (from a local client/driver).
    ///
    /// A read-only request never enters the ordering path: when the fast
    /// path is open it comes straight back as [`Action::ReadOnly`] —
    /// consuming no sequence slot, touching no dedup state — and when it
    /// is closed the request is silently dropped (the client's quorum
    /// fails and it falls back to an ordered resubmission).
    pub fn on_request(&mut self, request: Request) -> Vec<Action> {
        let mut out = Vec::new();
        if request.read_only {
            if self.can_serve_reads() {
                out.push(Action::ReadOnly(request));
            }
            return out;
        }
        if self.executed.contains(&request.id) || self.requests.contains_key(&request.id) {
            return out; // duplicate submission or already executed
        }
        self.requests
            .insert(request.id, ReqState::Pending(request.clone()));
        self.outstanding += 1;
        if self.outstanding == 1 {
            out.push(Action::ViewTimer(TimerCmd::Restart));
        }
        if self.in_view_change {
            // Will be (re-)proposed or forwarded when the new view installs.
            return out;
        }
        if self.is_primary() {
            self.queue.push_back(request.id);
            self.drain_queue(false, &mut out);
        } else {
            out.push(Action::Send(self.primary(), Msg::Forward(request)));
        }
        out
    }

    /// Seals queued requests into batches and proposes them, while the
    /// watermark window and (unless `force`) the pipeline depth permit.
    /// `force = true` is the batch timer's path: the accumulated batch goes
    /// out even with a full pipeline, bounding request latency.
    fn drain_queue(&mut self, force: bool, out: &mut Vec<Action>) {
        if self.draining {
            return;
        }
        self.draining = true;
        while !self.queue.is_empty() && self.next_seq < self.high_watermark() {
            if !force && self.in_flight() >= self.cfg.effective_pipeline_depth() {
                break;
            }
            let mut requests = Vec::new();
            while requests.len() < self.cfg.max_batch_size {
                let Some(id) = self.queue.pop_front() else {
                    break;
                };
                // Entries can go stale in the queue (dropped via
                // `drop_request`, or ordered through another path).
                if let Some(ReqState::Pending(r)) = self.requests.get(&id) {
                    // A config record always seals a slot of its own: an
                    // accumulating batch closes ahead of it, and nothing
                    // joins its slot behind it.
                    if r.config {
                        if requests.is_empty() {
                            requests.push(r.clone());
                        } else {
                            self.queue.push_front(id);
                        }
                        break;
                    }
                    requests.push(r.clone());
                }
            }
            if requests.is_empty() {
                continue;
            }
            self.propose_batch(Batch::new(requests), out);
        }
        self.draining = false;
        self.update_batch_timer(out);
    }

    fn propose_batch(&mut self, batch: Batch, out: &mut Vec<Action>) {
        self.next_seq = self.next_seq.next();
        let seq = self.next_seq;
        let digest = batch.digest();
        let pp = PrePrepareMsg {
            view: self.view,
            seq,
            digest,
            batch: batch.clone(),
        };
        let slot = self.log.slot_mut(seq);
        slot.pre_prepare = Some((self.view, digest, batch.clone()));
        for r in &batch.requests {
            if let Some(state) = self.requests.get_mut(&r.id) {
                *state = ReqState::Ordered(r.clone());
            }
        }
        if self.cfg.obs_phases {
            // The primary never receives its own pre-prepare, so it stamps
            // both the seal and its own acceptance here.
            for r in &batch.requests {
                self.obs_phase(r.id, Phase::Batched);
                self.obs_phase(r.id, Phase::PrePrepared);
            }
        }
        self.obs_audit(AuditEvent::PrePrepare {
            view: self.view.0,
            seq: seq.0,
            digest: fold_digest(&digest),
        });
        out.push(Action::Broadcast(Msg::PrePrepare(pp)));
        // n = 1 degenerate group: prepared immediately.
        self.try_prepare_transition(seq, out);
        self.try_speculate(out);
    }

    /// Speculative execution (Zyzzyva-style): as soon as slots
    /// pre-prepare contiguously above the speculation frontier in the
    /// current view, emit their not-yet-executed requests for tentative
    /// execution — without waiting for prepare/commit. Commit later
    /// finalizes each slot via the ordinary [`Action::Execute`]; a view
    /// change that discards a speculated slot triggers
    /// [`Action::RollbackSpeculation`] from [`Replica::enter_view`].
    fn try_speculate(&mut self, out: &mut Vec<Action>) {
        if !self.cfg.speculative || self.in_view_change || self.recovering {
            return;
        }
        self.last_spec = self.last_spec.max(self.last_exec);
        loop {
            let next = self.last_spec.next();
            let Some((v, batch)) = self
                .log
                .slot(next)
                .and_then(|s| s.pre_prepare.as_ref())
                .map(|(v, _, b)| (*v, b.clone()))
            else {
                break;
            };
            if v != self.view {
                break;
            }
            self.last_spec = next;
            let fresh: Vec<Request> = batch
                .requests
                .into_iter()
                .filter(|r| !self.executed.contains(&r.id) && self.spec_overlay.insert(r.id))
                .collect();
            if !fresh.is_empty() {
                out.push(Action::SpeculativeExecute {
                    seq: next,
                    batch: fresh,
                });
            }
        }
    }

    /// Arms the batch timer while requests are waiting in the queue and
    /// stops it when the queue drains, emitting at most one command per
    /// transition. A queue blocked on the *watermark* (rather than the
    /// pipeline) does not arm the timer — firing could not seal anything,
    /// so re-arming would busy-spin every `batch_delay_us` until a
    /// checkpoint stabilizes; the watermark-advance path in
    /// `try_stabilize` drains the queue instead.
    fn update_batch_timer(&mut self, out: &mut Vec<Action>) {
        let want = !self.queue.is_empty()
            && self.is_primary()
            && !self.in_view_change
            && self.next_seq < self.high_watermark();
        if want && !self.batch_timer_armed {
            self.batch_timer_armed = true;
            out.push(Action::BatchTimer(TimerCmd::Restart));
        } else if !want && self.batch_timer_armed {
            self.batch_timer_armed = false;
            out.push(Action::BatchTimer(TimerCmd::Stop));
        }
    }

    /// The batch-delay timer fired: seal whatever is queued, even though
    /// the pipeline is still full.
    pub fn on_batch_timer(&mut self) -> Vec<Action> {
        let mut out = Vec::new();
        self.batch_timer_armed = false;
        if self.is_primary() && !self.in_view_change {
            self.drain_queue(true, &mut out);
        }
        out
    }

    /// Handles a protocol message from another replica.
    pub fn on_message(&mut self, from: ReplicaId, msg: Msg) -> Vec<Action> {
        let mut out = Vec::new();
        match msg {
            Msg::Forward(req) => {
                return self.on_request(req);
            }
            Msg::PrePrepare(pp) => self.handle_pre_prepare(from, pp, &mut out),
            Msg::Prepare(p) => self.handle_prepare(from, p, &mut out),
            Msg::Commit(c) => self.handle_commit(from, c, &mut out),
            Msg::Checkpoint(c) => self.handle_checkpoint(from, c, &mut out),
            Msg::ViewChange(vc) => self.handle_view_change(from, vc, &mut out),
            Msg::NewView(nv) => self.handle_new_view(from, nv, &mut out),
            Msg::FetchState(fs) => self.handle_fetch_state(from, fs, &mut out),
            Msg::StateResponse(sr) => self.handle_state_response(from, sr, &mut out),
            Msg::FetchPages(fp) => self.handle_fetch_pages(from, fp, &mut out),
            Msg::PageResponse(pr) => self.handle_page_response(from, pr, &mut out),
        }
        out
    }

    fn handle_pre_prepare(&mut self, from: ReplicaId, pp: PrePrepareMsg, out: &mut Vec<Action>) {
        if pp.view > self.view || (pp.view == self.view && self.in_view_change) {
            // A new primary's proposal can overtake its NewView on the
            // wire; keep it until we enter that view.
            if self.stashed.len() < STASH_CAP {
                self.stashed.push((from, Msg::PrePrepare(pp)));
            }
            return;
        }
        if pp.view != self.view
            || from != self.primary()
            || !self.in_watermarks(pp.seq)
            || pp.digest != pp.batch.digest()
        {
            return;
        }
        let slot = self.log.slot_mut(pp.seq);
        if let Some((v, d, _)) = &slot.pre_prepare {
            if *v == pp.view && *d != pp.digest {
                return; // equivocating primary; keep first, let the timer fire
            }
            if *v == pp.view {
                return; // duplicate
            }
            // Accepting a re-proposal from a newer view: the commit state of
            // the old view no longer applies.
            slot.commit_sent = false;
        }
        slot.pre_prepare = Some((pp.view, pp.digest, pp.batch.clone()));
        let was_idle = self.outstanding == 0;
        for r in &pp.batch.requests {
            match self.requests.get_mut(&r.id) {
                Some(st @ ReqState::Pending(_)) => *st = ReqState::Ordered(r.clone()),
                Some(_) => {}
                None if self.executed.contains(&r.id) => {} // replayed history
                None => {
                    self.requests.insert(r.id, ReqState::Ordered(r.clone()));
                    self.outstanding += 1;
                }
            }
        }
        if was_idle && self.outstanding > 0 {
            out.push(Action::ViewTimer(TimerCmd::Restart));
        }
        if self.cfg.obs_phases {
            for r in &pp.batch.requests {
                self.obs_phase(r.id, Phase::PrePrepared);
            }
        }
        self.obs_audit(AuditEvent::PrePrepare {
            view: pp.view.0,
            seq: pp.seq.0,
            digest: fold_digest(&pp.digest),
        });
        let prep = PrepareMsg {
            view: pp.view,
            seq: pp.seq,
            digest: pp.digest,
            replica: self.id,
        };
        // Record our own prepare (broadcasts do not loop back).
        self.log
            .slot_mut(pp.seq)
            .prepares
            .entry((pp.view, pp.digest))
            .or_default()
            .insert(self.id);
        out.push(Action::Broadcast(Msg::Prepare(prep)));
        self.try_prepare_transition(pp.seq, out);
        self.try_speculate(out);
    }

    fn handle_prepare(&mut self, from: ReplicaId, p: PrepareMsg, out: &mut Vec<Action>) {
        if p.view > self.view || (p.view == self.view && self.in_view_change) {
            if self.stashed.len() < STASH_CAP {
                self.stashed.push((from, Msg::Prepare(p)));
            }
            return;
        }
        if p.view != self.view || !self.in_watermarks(p.seq) || from != p.replica {
            return;
        }
        self.forget_stale_votes(from, p.view);
        if p.replica == p.view.primary(self.cfg.n) {
            return; // the primary never prepares its own proposal
        }
        self.log
            .slot_mut(p.seq)
            .prepares
            .entry((p.view, p.digest))
            .or_default()
            .insert(p.replica);
        self.try_prepare_transition(p.seq, out);
    }

    /// Vote hygiene: a prepare/commit from `from` in view `v` proves it is
    /// operating normally there — a replica in a view change sends
    /// neither — so any view-change votes it has parked for views above
    /// `v` are stale (it abandoned them, see
    /// [`Replica::adopt_reported_view`]) and must not count toward a later
    /// quorum: the stale vote's prepared claims predate whatever `from`
    /// prepares from here on. Dropping votes is strictly conservative —
    /// view changes only get *harder* — and a replica that genuinely wants
    /// one re-votes with fresh claims when it next joins.
    fn forget_stale_votes(&mut self, from: ReplicaId, v: View) {
        self.view_changes.retain(|target, votes| {
            if *target > v {
                votes.remove(&from);
            }
            !votes.is_empty()
        });
    }

    fn try_prepare_transition(&mut self, seq: Seq, out: &mut Vec<Action>) {
        let cfg = self.cfg.clone();
        let slot = self.log.slot_mut(seq);
        if slot.commit_sent {
            return;
        }
        let Some((v, d)) = slot.prepared(&cfg) else {
            return;
        };
        slot.commit_sent = true;
        slot.commits.entry((v, d)).or_default().insert(self.id);
        if cfg.obs_phases {
            if let Some((_, _, batch)) = &slot.pre_prepare {
                for r in &batch.requests {
                    push_obs(
                        &mut self.obs_events,
                        ObsEvent::Phase {
                            id: r.id,
                            phase: Phase::Prepared,
                        },
                    );
                }
            }
        }
        self.obs_audit(AuditEvent::Prepared {
            view: v.0,
            seq: seq.0,
            digest: fold_digest(&d),
        });
        out.push(Action::Broadcast(Msg::Commit(CommitMsg {
            view: v,
            seq,
            digest: d,
            replica: self.id,
        })));
        self.try_execute(out);
    }

    fn handle_commit(&mut self, from: ReplicaId, c: CommitMsg, out: &mut Vec<Action>) {
        if !self.in_watermarks(c.seq) || from != c.replica {
            return;
        }
        if c.view == self.view {
            self.forget_stale_votes(from, c.view);
        }
        self.log
            .slot_mut(c.seq)
            .commits
            .entry((c.view, c.digest))
            .or_default()
            .insert(c.replica);
        self.try_execute(out);
    }

    fn try_execute(&mut self, out: &mut Vec<Action>) {
        let cfg = self.cfg.clone();
        let mut progressed = false;
        loop {
            let next = self.last_exec.next();
            let committed = self.log.slot(next).is_some_and(|s| s.committed(&cfg));
            if !committed {
                break;
            }
            let slot = self.log.slot_mut(next);
            slot.executed = true;
            let (_, digest, batch) = slot.pre_prepare.clone().expect("committed implies pp");
            self.last_exec = next;
            progressed = true;
            // Chain the execution history for checkpoints.
            let mut h = Sha256::new();
            h.update(self.exec_chain.as_bytes());
            h.update_u64(next.0);
            h.update(digest.as_bytes());
            self.exec_chain = h.finalize();
            self.obs_audit(AuditEvent::Committed {
                seq: next.0,
                digest: fold_digest(&digest),
                via_transfer: false,
            });

            // Unpack the batch in order, skipping already-executed requests
            // (re-proposals across view changes can repeat them). Executed
            // ids move from the live request map into the compact dedup
            // set.
            let mut fresh = Vec::new();
            for request in batch.requests {
                let first_time = self.executed.insert(request.id);
                self.spec_overlay.remove(&request.id);
                if self.requests.remove(&request.id).is_some() {
                    self.outstanding = self.outstanding.saturating_sub(1);
                }
                if first_time {
                    fresh.push(request);
                }
            }
            if !fresh.is_empty() {
                if self.cfg.obs_phases {
                    for r in &fresh {
                        self.obs_phase(r.id, Phase::Committed);
                    }
                }
                out.push(Action::Execute {
                    seq: next,
                    batch: fresh,
                });
            }

            if next.0.is_multiple_of(self.cfg.checkpoint_interval) {
                self.request_checkpoint(next, out);
            }
        }
        if progressed {
            self.maybe_finish_recovery();
            out.push(Action::ViewTimer(if self.outstanding == 0 {
                TimerCmd::Stop
            } else {
                TimerCmd::Restart
            }));
            // Completed slots free pipeline capacity: the primary seals the
            // next batch from whatever accumulated meanwhile.
            if self.is_primary() && !self.in_view_change {
                self.drain_queue(false, out);
            }
        }
    }

    /// Captures the boundary values and asks the harness for the
    /// application snapshot; [`Replica::on_snapshot`] completes the
    /// checkpoint.
    fn request_checkpoint(&mut self, seq: Seq, out: &mut Vec<Action>) {
        self.pending_boundaries.insert(
            seq,
            BoundaryInfo {
                exec_chain: self.exec_chain,
                // The compact dedup set is canonical by construction, so
                // this clone is identical at every correct replica at the
                // same execution point (and O(origins), not O(history)).
                executed: self.executed.clone(),
            },
        );
        out.push(Action::TakeCheckpoint(seq));
    }

    /// The executed-request dedup set (for assertions and size metrics).
    pub fn executed_set(&self) -> &ExecutedSet {
        &self.executed
    }

    /// Drains the page-subsystem counters ([`PageCounters`]): the harness
    /// publishes them as the `clbft.pages.*` metrics and charges hashing
    /// and transfer costs from them.
    pub fn take_page_counters(&mut self) -> PageCounters {
        self.page_counters.take()
    }

    /// Hands over the content-addressed page store, e.g. so a harness can
    /// carry still-warm pages across a state wipe. The replica keeps
    /// nothing; re-seed the successor with [`Replica::seed_page_store`].
    pub fn take_page_store(&mut self) -> Vec<Bytes> {
        self.page_store.drain().map(|(_, page)| page).collect()
    }

    /// Seeds the content-addressed page store. Every page is keyed by its
    /// *recomputed* content digest, never a claimed one, so corrupt or
    /// stale seeds are harmless: a damaged page keys under its own (wrong)
    /// digest, matches no certified manifest entry, and is simply fetched
    /// over the wire instead — re-verification against the `f + 1`-vouched
    /// root, not the seed itself, is what makes a warm restart trustworthy.
    pub fn seed_page_store(&mut self, pages: impl IntoIterator<Item = Bytes>) {
        for page in pages {
            self.page_store.insert(page_digest(&page), page);
        }
    }

    /// Replaces the page store with the pages of `snapshot`, bounding it at
    /// one snapshot's worth (the working set a warm fetcher diffs against).
    fn rebuild_page_store(&mut self, snapshot: &Bytes, manifest: &PageManifest) {
        self.page_store.clear();
        for i in 0..manifest.len() {
            let d = *manifest.digest(i).expect("index in range");
            self.page_store.insert(d, page_slice(snapshot, manifest, i));
        }
    }

    /// The harness's answer to [`Action::TakeCheckpoint`]: `snapshot` is
    /// the application state at `seq`. Chunks it into the page table
    /// (re-hashing only pages dirtied since the previous boundary), digests
    /// `(seq, page-tree root, dedup set, exec chain)`, retains the full
    /// state for state transfer, and broadcasts this replica's checkpoint
    /// vote.
    pub fn on_snapshot(&mut self, seq: Seq, snapshot: Bytes) -> Vec<Action> {
        let mut out = Vec::new();
        let Some(info) = self.pending_boundaries.remove(&seq) else {
            return out; // boundary superseded by an install or never emitted
        };
        if seq <= self.stable_seq {
            return out;
        }
        let (manifest, hashed, dirty) = {
            let prev = self.last_hashed.as_ref().map(|(b, m)| (b.as_ref(), m));
            PageManifest::compute_incremental(&snapshot, self.cfg.page_size, prev)
        };
        self.page_counters.hashed += hashed;
        self.page_counters.dirty += dirty;
        self.obs_flight(FlightKind::CheckpointTaken, seq.0, snapshot.len() as u64);
        self.obs_proto(ProtoFamily::Ckpt, seq.0, 0, snapshot.len() as u64);
        let digest = checkpoint_digest(seq, &manifest, &info.executed, &info.exec_chain);
        self.rebuild_page_store(&snapshot, &manifest);
        self.last_hashed = Some((snapshot.clone(), manifest.clone()));
        self.pending_states.insert(
            seq,
            CheckpointState {
                seq,
                exec_chain: info.exec_chain,
                snapshot,
                manifest,
                executed: info.executed,
            },
        );
        self.own_checkpoints.insert(seq, digest);
        self.record_checkpoint_vote(seq, digest, self.id);
        out.push(Action::Broadcast(Msg::Checkpoint(CheckpointMsg {
            seq,
            state_digest: digest,
            replica: self.id,
        })));
        self.try_stabilize(seq, &mut out);
        out
    }

    fn handle_checkpoint(&mut self, from: ReplicaId, c: CheckpointMsg, out: &mut Vec<Action>) {
        if c.seq <= self.stable_seq || from != c.replica {
            return;
        }
        self.record_checkpoint_vote(c.seq, c.state_digest, from);
        self.try_stabilize(c.seq, out);
        self.maybe_fetch(c.seq, out);
    }

    /// How many distinct checkpoint seqs one peer's votes may occupy: the
    /// boundaries a correct replica can legitimately have in flight at once
    /// (one per interval across the watermark window) plus slack for races
    /// around stabilization.
    fn max_tracked_ckpts(&self) -> usize {
        (self.cfg.watermark_window / self.cfg.checkpoint_interval.max(1)) as usize + 2
    }

    /// Records one replica's checkpoint vote, keeping the vote map bounded:
    /// votes off the interval cadence are rejected outright (honest
    /// checkpoints only happen at boundaries), a peer voting two digests
    /// for the same seq keeps only its first, and a peer exceeding
    /// [`Replica::max_tracked_ckpts`] seqs has its lowest-seq vote evicted.
    fn record_checkpoint_vote(&mut self, seq: Seq, digest: Digest32, from: ReplicaId) {
        if seq.0 == 0 || !seq.0.is_multiple_of(self.cfg.checkpoint_interval) || from.0 >= self.cfg.n
        {
            return;
        }
        let cap = self.max_tracked_ckpts();
        let per = self.checkpoint_votes.entry(seq).or_default();
        if per
            .iter()
            .any(|(d, voters)| *d != digest && voters.contains(&from))
        {
            return; // equivocating vote; keep the first
        }
        per.entry(digest).or_default().insert(from);
        self.obs_audit(AuditEvent::CheckpointVote {
            seq: seq.0,
            digest: fold_digest(&digest),
            voter: from.0 as u64,
        });
        let index = self.ckpt_vote_index.entry(from).or_default();
        index.insert(seq);
        if index.len() > cap {
            // Evict this peer's lowest-seq vote (if the newcomer is itself
            // the lowest, the newcomer is what gets dropped).
            let evict = index.pop_first().expect("index non-empty");
            if let Some(per) = self.checkpoint_votes.get_mut(&evict) {
                per.retain(|_, voters| {
                    voters.remove(&from);
                    !voters.is_empty()
                });
                if per.is_empty() {
                    self.checkpoint_votes.remove(&evict);
                }
            }
        }
    }

    /// Drops per-peer vote-index entries at or below the new stable
    /// checkpoint, mirroring the `checkpoint_votes` garbage collection.
    fn gc_ckpt_vote_index(&mut self, stable: Seq) {
        for index in self.ckpt_vote_index.values_mut() {
            while index.first().is_some_and(|s| *s <= stable) {
                index.pop_first();
            }
        }
        self.ckpt_vote_index.retain(|_, index| !index.is_empty());
    }

    /// Lag detection: `f + 1` distinct replicas vouching for a checkpoint a
    /// full interval (or a whole watermark window) ahead of our execution
    /// frontier means we missed history that retransmits will never
    /// replay — the slots below the group's stable checkpoint are
    /// garbage-collected at every correct peer. Fetch state instead.
    fn maybe_fetch(&mut self, seq: Seq, out: &mut Vec<Action>) {
        if seq <= self.last_exec {
            return;
        }
        let lagging =
            seq > self.high_watermark() || seq.0 >= self.last_exec.0 + self.cfg.checkpoint_interval;
        if !lagging {
            return;
        }
        let vouched = self
            .checkpoint_votes
            .get(&seq)
            .is_some_and(|per| per.values().any(|v| v.len() > self.cfg.f() as usize));
        if !vouched || self.fetch_target.is_some_and(|t| t >= seq) {
            return;
        }
        self.fetch_target = Some(seq);
        self.recovering = true;
        self.obs_flight(FlightKind::StateFetchStarted, self.stable_seq.0, 0);
        // The lag-triggered transfer knows its certified target up front,
        // so the `xfer.<seq>` span opens at "triggered" here. The proactive
        // path ([`Replica::begin_state_fetch`]) learns its target only from
        // the first response; its span opens at "manifest-verified".
        self.obs_proto(ProtoFamily::Xfer, seq.0, 0, 0);
        // A new solicitation round: pages whose holder stalled become
        // eligible for re-request from whoever answers this broadcast.
        if let Some(pf) = &mut self.page_fetch {
            pf.requested.fill(false);
        }
        out.push(Action::Broadcast(Msg::FetchState(FetchStateMsg {
            have: self.stable_seq,
            replica: self.id,
        })));
    }

    /// Explicitly (re)joins via state transfer: broadcast a `FetchState`
    /// for anything newer than our stable checkpoint. Used by proactive
    /// recovery right after a replica's state is torn down.
    pub fn begin_state_fetch(&mut self) -> Vec<Action> {
        if self.cfg.n == 1 {
            return Vec::new();
        }
        // Gate the read-only fast path until the transfer completes (the
        // suffix has replayed); a bare fetched checkpoint may be a whole
        // suffix behind the group's committed frontier.
        self.recovering = true;
        self.obs_flight(FlightKind::StateFetchStarted, self.stable_seq.0, 0);
        // A new solicitation round re-opens stalled page requests (see
        // `PageFetch::requested`).
        if let Some(pf) = &mut self.page_fetch {
            pf.requested.fill(false);
        }
        vec![Action::Broadcast(Msg::FetchState(FetchStateMsg {
            have: self.stable_seq,
            replica: self.id,
        }))]
    }

    fn handle_fetch_state(&mut self, from: ReplicaId, fs: FetchStateMsg, out: &mut Vec<Action>) {
        if from != fs.replica || from == self.id || from.0 >= self.cfg.n {
            return;
        }
        let Some(state) = &self.latest_stable else {
            return;
        };
        if state.seq <= fs.have {
            return;
        }
        // Honest responders respect the wire caps. A dedup set past the
        // entry cap cannot be shipped at all (no fetcher would decode the
        // frame), while an oversized suffix can simply be truncated — the
        // fetcher lands earlier and re-fetches. Per-origin compaction
        // keeps honest sets at O(origins + reorder residue), far below
        // the cap for any realistic deployment lifetime.
        if state.executed.wire_entries() > crate::wire::MAX_WIRE_EXECUTED {
            return;
        }
        // Amplification bound: a requester gets at most
        // [`MAX_SERVES_PER_STABLE`] full responses per stable checkpoint; a
        // `FetchState`-spamming peer cannot extract more large messages
        // until the group's next boundary stabilizes.
        let stable = state.seq;
        let served = self.served_fetches.entry(from).or_insert((stable, 0));
        if served.0 != stable {
            *served = (stable, 0);
        }
        if served.1 >= MAX_SERVES_PER_STABLE {
            return;
        }
        served.1 += 1;
        let state = self.latest_stable.as_ref().expect("checked above");
        let mut suffix: Vec<SuffixSlot> = self
            .log
            .executed_suffix(state.seq, self.last_exec)
            .into_iter()
            .map(|(seq, batch)| SuffixSlot { seq, batch })
            .collect();
        suffix.truncate(crate::wire::MAX_WIRE_SUFFIX);
        out.push(Action::Send(
            from,
            Msg::StateResponse(StateResponseMsg {
                seq: state.seq,
                view: self.view,
                exec_chain: state.exec_chain,
                manifest: state.manifest.clone(),
                executed: state.executed.clone(),
                suffix,
                replica: self.id,
            }),
        ));
    }

    /// Handles a `StateResponse`. Only the checkpoint part is covered by
    /// the `f + 1`-voucher digest check, so the rest of the frame is never
    /// trusted from a single responder: suffix slots are held back until
    /// `f + 1` distinct responders sent identical copies
    /// ([`Replica::try_replay_suffix`]), and the view field only counts as
    /// one report toward the `f + 1` needed to rejoin a later view
    /// ([`Replica::adopt_reported_view`]).
    fn handle_state_response(
        &mut self,
        from: ReplicaId,
        sr: StateResponseMsg,
        out: &mut Vec<Action>,
    ) {
        if from != sr.replica || from == self.id || from.0 >= self.cfg.n {
            return;
        }
        // Honest checkpoints sit on interval boundaries; anything else
        // could only grow the vote maps.
        if sr.seq.0 == 0 || !sr.seq.0.is_multiple_of(self.cfg.checkpoint_interval) {
            self.obs_flight(FlightKind::StateRejected, sr.seq.0, 0);
            return;
        }
        if sr.seq < self.stable_seq {
            return; // older than what we already hold
        }
        self.reported_views.insert(from, sr.view);
        self.record_suffix_votes(&sr, from);
        let mut installed = false;
        if sr.seq > self.stable_seq && sr.seq > self.last_exec {
            let digest = checkpoint_digest(sr.seq, &sr.manifest, &sr.executed, &sr.exec_chain);
            // The response itself is the sender's implicit checkpoint vote.
            self.record_checkpoint_vote(sr.seq, digest, from);
            let votes = self
                .checkpoint_votes
                .get(&sr.seq)
                .and_then(|per| per.get(&digest))
                .map_or(0, HashSet::len);
            if votes > self.cfg.f() as usize {
                installed = self.begin_page_fetch(from, sr, digest, out);
            }
        }
        // Responses matching an already-installed checkpoint keep feeding
        // suffix copies and view reports; replay whatever just reached the
        // `f + 1` bar.
        if self.try_replay_suffix(out) || installed {
            self.post_transfer_progress(out);
        }
        self.adopt_reported_view(out);
    }

    /// Starts (or continues) the page transfer toward the certified
    /// checkpoint of `sr`: fills every page the local content-addressed
    /// store already holds, then asks `from` for the rest in
    /// [`MAX_PAGES_PER_FETCH`]-bounded ranges. Installs immediately — and
    /// returns `true` — when nothing is missing (the warm-restart and
    /// digest-identical-peer fast path: zero pages travel).
    fn begin_page_fetch(
        &mut self,
        from: ReplicaId,
        sr: StateResponseMsg,
        digest: Digest32,
        out: &mut Vec<Action>,
    ) -> bool {
        if let Some(pf) = &self.page_fetch {
            if pf.seq == sr.seq && pf.digest == digest {
                // Same certified target: ask this responder too for
                // whatever is still missing and unclaimed this round.
                self.request_missing_pages(from, out);
                return false;
            }
            if pf.seq >= sr.seq {
                // A stale (or equal-seq; two digests cannot both reach
                // `f + 1` with at most `f` faults) response must not
                // displace the newer in-flight target.
                return false;
            }
        }
        let manifest = sr.manifest;
        let pages: Vec<Option<Bytes>> = (0..manifest.len())
            .map(|i| {
                manifest
                    .digest(i)
                    .and_then(|d| self.page_store.get(d))
                    .cloned()
            })
            .collect();
        let missing = pages.iter().filter(|p| p.is_none()).count();
        // The manifest is now `f + 1`-certified: the transfer has a trusted
        // page-by-page work list (`count` = pages still to travel).
        self.obs_proto(ProtoFamily::Xfer, sr.seq.0, 1, missing as u64);
        let requested = vec![false; pages.len()];
        let pf = PageFetch {
            seq: sr.seq,
            digest,
            exec_chain: sr.exec_chain,
            executed: sr.executed,
            manifest,
            pages,
            requested,
            missing,
        };
        if missing == 0 {
            let snapshot = assemble_pages(&pf);
            self.install_checkpoint(
                pf.seq,
                pf.exec_chain,
                digest,
                pf.manifest,
                snapshot,
                pf.executed,
                out,
            );
            return true;
        }
        self.page_fetch = Some(pf);
        self.request_missing_pages(from, out);
        false
    }

    /// Sends `to` range-bounded `FetchPages` requests for every page that
    /// is missing and not already requested from some responder this round,
    /// marking the asked pages so redundant responders are not all asked
    /// for the same range.
    fn request_missing_pages(&mut self, to: ReplicaId, out: &mut Vec<Action>) {
        let Some(pf) = &mut self.page_fetch else {
            return;
        };
        let mut i = 0;
        while i < pf.pages.len() {
            if pf.pages[i].is_some() || pf.requested[i] {
                i += 1;
                continue;
            }
            let first = i;
            let mut count: u32 = 0;
            while i < pf.pages.len()
                && pf.pages[i].is_none()
                && !pf.requested[i]
                && count < MAX_PAGES_PER_FETCH
            {
                pf.requested[i] = true;
                count += 1;
                i += 1;
            }
            out.push(Action::Send(
                to,
                Msg::FetchPages(FetchPagesMsg {
                    seq: pf.seq,
                    first: first as u32,
                    count,
                    replica: self.id,
                }),
            ));
        }
    }

    /// Serves a range of stable-checkpoint pages. Honest requests name the
    /// current stable boundary with an in-range, non-empty,
    /// cap-respecting range; anything else is silently refused, and a
    /// per-requester budget (two full transfers per stable checkpoint)
    /// bounds the amplification a spamming peer can extract.
    fn handle_fetch_pages(&mut self, from: ReplicaId, fp: FetchPagesMsg, out: &mut Vec<Action>) {
        if from != fp.replica || from == self.id || from.0 >= self.cfg.n {
            return;
        }
        if fp.count == 0 || fp.count > MAX_PAGES_PER_FETCH {
            return;
        }
        let Some(state) = &self.latest_stable else {
            return;
        };
        if state.seq != fp.seq {
            return; // stale target; the fetcher will rediscover via FetchState
        }
        let first = fp.first as usize;
        let count = fp.count as usize;
        let Some(end) = first.checked_add(count) else {
            return;
        };
        if end > state.manifest.len() {
            return;
        }
        let budget = (state.manifest.len() as u64 * 2).max(MIN_PAGE_BUDGET);
        let served = self.served_pages.entry(from).or_insert((state.seq, 0));
        if served.0 != state.seq {
            *served = (state.seq, 0);
        }
        if served.1.saturating_add(count as u64) > budget {
            return;
        }
        served.1 += count as u64;
        let state = self.latest_stable.as_ref().expect("checked above");
        let pages = (first..end)
            .map(|i| page_slice(&state.snapshot, &state.manifest, i))
            .collect();
        out.push(Action::Send(
            from,
            Msg::PageResponse(PageResponseMsg {
                seq: fp.seq,
                first: fp.first,
                pages,
                replica: self.id,
            }),
        ));
    }

    /// Absorbs a page range into the in-flight fetch. Every page is
    /// verified against the `f + 1`-vouched manifest before it fills a
    /// slot; unsolicited frames, wrong-target frames, empty or over-cap
    /// frames, out-of-range ranges, duplicates of filled slots, and
    /// digest-mismatched pages are all rejected *and counted* — a
    /// Byzantine responder's misbehavior is observable, never installable.
    /// When the last page fills, the checkpoint assembles and installs.
    fn handle_page_response(
        &mut self,
        from: ReplicaId,
        pr: PageResponseMsg,
        out: &mut Vec<Action>,
    ) {
        if from != pr.replica || from == self.id || from.0 >= self.cfg.n {
            return;
        }
        let Some(pf) = &mut self.page_fetch else {
            self.page_counters.rejected += 1; // unsolicited
            push_obs(
                &mut self.obs_events,
                ObsEvent::Flight {
                    kind: FlightKind::PageRejected,
                    a: pr.first as u64,
                    b: 0,
                },
            );
            return;
        };
        let in_range = (pr.first as usize)
            .checked_add(pr.pages.len())
            .is_some_and(|end| end <= pf.manifest.len());
        if pr.seq != pf.seq
            || pr.pages.is_empty()
            || pr.pages.len() > MAX_PAGES_PER_FETCH as usize
            || !in_range
        {
            self.page_counters.rejected += 1;
            push_obs(
                &mut self.obs_events,
                ObsEvent::Flight {
                    kind: FlightKind::PageRejected,
                    a: pr.first as u64,
                    b: 0,
                },
            );
            return;
        }
        for (k, bytes) in pr.pages.iter().enumerate() {
            let i = pr.first as usize + k;
            if pf.pages[i].is_some() {
                self.page_counters.rejected += 1; // duplicate
                continue;
            }
            if !pf.manifest.verify_page(i, bytes) {
                self.page_counters.rejected += 1;
                push_obs(
                    &mut self.obs_events,
                    ObsEvent::Flight {
                        kind: FlightKind::PageRejected,
                        a: i as u64,
                        b: 0,
                    },
                );
                // Re-ask another responder without waiting for a new round.
                pf.requested[i] = false;
                continue;
            }
            self.page_counters.fetched += 1;
            self.page_counters.verified += 1;
            self.page_store
                .insert(*pf.manifest.digest(i).expect("in range"), bytes.clone());
            pf.pages[i] = Some(bytes.clone());
            pf.missing -= 1;
        }
        if self.page_fetch.as_ref().is_some_and(|p| p.missing == 0) {
            let pf = self.page_fetch.take().expect("checked above");
            self.obs_proto(ProtoFamily::Xfer, pf.seq.0, 2, pf.manifest.len() as u64);
            if pf.seq > self.stable_seq && pf.seq > self.last_exec {
                let snapshot = assemble_pages(&pf);
                self.install_checkpoint(
                    pf.seq,
                    pf.exec_chain,
                    pf.digest,
                    pf.manifest,
                    snapshot,
                    pf.executed,
                    out,
                );
                self.try_replay_suffix(out);
            }
            // Else execution caught up past the fetch target while pages
            // were in flight: installing now would jump state backward, so
            // the completed fetch is simply dropped.
            self.post_transfer_progress(out);
        }
    }

    /// Records one responder's claimed suffix slots for
    /// [`Replica::try_replay_suffix`]. Bounded regardless of peer behavior:
    /// only slots within one watermark window above the response's
    /// checkpoint count, a responder re-voting a slot replaces its earlier
    /// claim, replayed slots are pruned, and far-future overflow is evicted
    /// first (the slots closest to our frontier are the next to replay).
    fn record_suffix_votes(&mut self, sr: &StateResponseMsg, from: ReplicaId) {
        let horizon = Seq(sr.seq.0.saturating_add(self.cfg.watermark_window));
        for slot in &sr.suffix {
            if slot.seq <= self.last_exec || slot.seq <= sr.seq || slot.seq > horizon {
                continue;
            }
            let digest = slot.batch.digest();
            let votes = self.suffix_votes.entry(slot.seq).or_default();
            if let Some(prev) = votes.by_replica.insert(from, digest) {
                if prev != digest && !votes.by_replica.values().any(|d| *d == prev) {
                    votes.batches.remove(&prev);
                }
            }
            votes
                .batches
                .entry(digest)
                .or_insert_with(|| slot.batch.clone());
        }
        let cap = self.cfg.watermark_window as usize + 16;
        while self.suffix_votes.len() > cap {
            self.suffix_votes.pop_last();
        }
    }

    /// Replays contiguous suffix slots whose batch `f + 1` distinct
    /// responders agree on: at least one of them is correct, and a correct
    /// replica only ever puts committed slots in a suffix. Tie-breaking is
    /// deterministic (vote count, then digest), though with at most `f`
    /// faulty replicas two digests can never both reach `f + 1`. Returns
    /// whether any slot replayed; the caller owns
    /// [`Replica::post_transfer_progress`].
    fn try_replay_suffix(&mut self, out: &mut Vec<Action>) -> bool {
        let need = self.cfg.f() as usize + 1;
        let mut progressed = false;
        loop {
            let next = self.last_exec.next();
            while self
                .suffix_votes
                .first_key_value()
                .is_some_and(|(s, _)| *s < next)
            {
                self.suffix_votes.pop_first();
            }
            let Some(votes) = self.suffix_votes.get(&next) else {
                break;
            };
            let best = votes
                .batches
                .keys()
                .map(|d| {
                    let count = votes.by_replica.values().filter(|v| **v == *d).count();
                    (count, *d)
                })
                .max();
            let Some((count, digest)) = best else {
                break;
            };
            if count < need {
                break;
            }
            let batch = self
                .suffix_votes
                .remove(&next)
                .and_then(|mut v| v.batches.remove(&digest))
                .expect("tallied batch present");
            self.apply_transferred_slot(next, batch, out);
            progressed = true;
        }
        progressed
    }

    /// Rejoins a later view on `f + 1` distinct `StateResponse` reports:
    /// the `(f + 1)`-th highest reported view is one at least one correct
    /// replica really reached (views only advance), so a rebooted replica
    /// rejoins the live primary without trusting any single responder.
    ///
    /// The same evidence also *abandons a stale view change*: a replica
    /// that voted for ever-higher views while partitioned away (its timer
    /// kept firing with no peer to join it) would otherwise stay
    /// `in_view_change` forever once healed — peers still in the old view
    /// never send the NewView it waits for, and stashed proposals never
    /// release. `f + 1` responders reporting the current view prove at
    /// least one correct replica is live and serving there, so re-entering
    /// it is exactly the recovering replica's move; liveness against a
    /// genuinely dead primary is preserved because the view timer re-arms
    /// with the outstanding work.
    ///
    /// Abandonment bends strict PBFT view-vote monotonicity (a replica
    /// prepares in a view it once voted to leave, while its old vote's
    /// frozen claims still circulate). Honest peers neutralize the stale
    /// vote the moment they see the abandoner participating again
    /// ([`Replica::forget_stale_votes`]), and the abandoner re-votes with
    /// fresh claims if it ever rejoins that view change; the residual
    /// window — a Byzantine peer racing the stale vote into a new-view
    /// quorum before the drop lands — is subsumed by this
    /// implementation's documented structural trust in the new-view
    /// primary's re-proposals (see the crate-level trust-boundary note).
    fn adopt_reported_view(&mut self, out: &mut Vec<Action>) {
        let f = self.cfg.f() as usize;
        if self.reported_views.len() <= f {
            return;
        }
        let mut views: Vec<View> = self.reported_views.values().copied().collect();
        views.sort_unstable_by(|a, b| b.cmp(a));
        let v = views[f];
        if v > self.view || (self.in_view_change && v >= self.view) {
            self.enter_view(v.max(self.view), out);
        }
    }

    /// Installs a fetched checkpoint whose digest is vouched for by
    /// `f + 1` distinct replicas (so at least one correct replica holds
    /// exactly this state); `snapshot` was assembled from pages that each
    /// verified against the vouched manifest. The committed log suffix is
    /// *not* installed here — it replays separately, slot by slot, as
    /// copies reach the `f + 1` bar ([`Replica::try_replay_suffix`]).
    #[allow(clippy::too_many_arguments)]
    fn install_checkpoint(
        &mut self,
        seq: Seq,
        exec_chain: Digest32,
        digest: Digest32,
        manifest: PageManifest,
        snapshot: Bytes,
        executed: ExecutedSet,
        out: &mut Vec<Action>,
    ) {
        self.obs_flight(FlightKind::StateInstalled, seq.0, manifest.len() as u64);
        self.obs_proto(ProtoFamily::Xfer, seq.0, 3, manifest.len() as u64);
        // Jump the protocol state to the verified checkpoint. Any live
        // speculation is void — `InstallState` replaces application state
        // wholesale, so no separate rollback action is needed — and reads
        // stay gated until the committed suffix replays.
        self.last_spec = seq;
        self.spec_overlay.clear();
        self.recovering = true;
        self.last_exec = seq;
        self.exec_chain = exec_chain;
        self.stable_seq = seq;
        self.stable_digest = digest;
        self.log.gc_below(seq);
        self.own_checkpoints = self.own_checkpoints.split_off(&seq);
        self.own_checkpoints.insert(seq, digest);
        self.checkpoint_votes = self.checkpoint_votes.split_off(&seq.next());
        self.gc_ckpt_vote_index(seq);
        self.pending_boundaries = self.pending_boundaries.split_off(&seq.next());
        self.pending_states = self.pending_states.split_off(&seq.next());
        // Any older in-flight page fetch is obsolete.
        self.page_fetch = None;
        self.rebuild_page_store(&snapshot, &manifest);
        // The installed state is the next incremental-hashing diff base.
        self.last_hashed = Some((snapshot.clone(), manifest.clone()));
        self.latest_stable = Some(CheckpointState {
            seq,
            exec_chain,
            snapshot: snapshot.clone(),
            manifest,
            executed: executed.clone(),
        });
        // Adopt the transferred dedup set so replayed or re-proposed
        // requests are filtered exactly as at the peers, and drop live
        // entries the set already covers.
        self.executed = executed;
        let covered: Vec<RequestId> = self
            .requests
            .keys()
            .filter(|id| self.executed.contains(id))
            .copied()
            .collect();
        for id in covered {
            self.requests.remove(&id);
            self.outstanding = self.outstanding.saturating_sub(1);
            self.queue.retain(|q| *q != id);
        }
        out.push(Action::InstallState { seq, snapshot });
        out.push(Action::Stable(seq));
    }

    /// Shared tail of checkpoint installation and suffix replay: clear a
    /// satisfied fetch, re-aim the proposal counter, reset the liveness
    /// timer, and pick up whatever the jump unblocked.
    fn post_transfer_progress(&mut self, out: &mut Vec<Action>) {
        if self.fetch_target.is_some_and(|t| t <= self.last_exec) {
            self.fetch_target = None;
        }
        self.maybe_finish_recovery();
        self.next_seq = self.next_seq.max(self.last_exec);
        out.push(Action::ViewTimer(if self.outstanding == 0 {
            TimerCmd::Stop
        } else {
            TimerCmd::Restart
        }));
        // Commits that arrived while we lagged may already complete later
        // slots; the watermark jump also unblocks a primary's queue.
        self.try_execute(out);
        if self.is_primary() && !self.in_view_change {
            self.drain_queue(false, out);
        }
        self.update_batch_timer(out);
    }

    /// Re-opens the read-only fast path once a solicited transfer is fully
    /// absorbed: the fetch target (if any) is satisfied, no page transfer
    /// is mid-flight, and no further committed-suffix slot is pending
    /// replay. A Byzantine responder parking a bogus vote on the next slot
    /// can keep this replica's fast path closed (a liveness-only
    /// degradation at one replica — reads fall back to the ordered path);
    /// it cannot reopen it early.
    fn maybe_finish_recovery(&mut self) {
        // A page fetch whose target execution has already passed is moot
        // (installing it would jump state backward); drop it rather than
        // let it gate reads forever.
        if self
            .page_fetch
            .as_ref()
            .is_some_and(|p| p.seq <= self.last_exec)
        {
            self.page_fetch = None;
        }
        if self.recovering
            && self.fetch_target.is_none()
            && self.page_fetch.is_none()
            && !self.suffix_votes.contains_key(&self.last_exec.next())
        {
            self.recovering = false;
        }
    }

    /// Applies one state-transferred slot: chains the execution digest,
    /// dedups, delivers, and re-enters the checkpoint cadence at
    /// boundaries.
    fn apply_transferred_slot(&mut self, seq: Seq, batch: Batch, out: &mut Vec<Action>) {
        let digest = batch.digest();
        let slot = self.log.slot_mut(seq);
        slot.pre_prepare = Some((self.view, digest, batch.clone()));
        slot.executed = true;
        slot.commit_sent = true;
        self.last_exec = seq;
        let mut h = Sha256::new();
        h.update(self.exec_chain.as_bytes());
        h.update_u64(seq.0);
        h.update(digest.as_bytes());
        self.exec_chain = h.finalize();
        let mut fresh = Vec::new();
        for request in batch.requests {
            let first_time = self.executed.insert(request.id);
            self.spec_overlay.remove(&request.id);
            if self.requests.remove(&request.id).is_some() {
                self.outstanding = self.outstanding.saturating_sub(1);
                self.queue.retain(|q| *q != request.id);
            }
            // Unknown-but-agreed requests also deliver; `outstanding` is
            // only adjusted for entries this replica had counted.
            if first_time {
                fresh.push(request);
            }
        }
        if !fresh.is_empty() {
            out.push(Action::Execute { seq, batch: fresh });
        }
        // `via_transfer`: this slot landed through an `f + 1`-agreed suffix
        // copy, not a local commit certificate, so the auditor must not
        // demand a covering prepare sighting for it.
        self.obs_audit(AuditEvent::Committed {
            seq: seq.0,
            digest: fold_digest(&digest),
            via_transfer: true,
        });
        if seq.0.is_multiple_of(self.cfg.checkpoint_interval) {
            self.request_checkpoint(seq, out);
        }
    }

    fn try_stabilize(&mut self, seq: Seq, out: &mut Vec<Action>) {
        if seq <= self.stable_seq {
            return;
        }
        let Some(own) = self.own_checkpoints.get(&seq).copied() else {
            return;
        };
        let quorum = self
            .checkpoint_votes
            .get(&seq)
            .and_then(|per_digest| per_digest.get(&own))
            .is_some_and(|voters| voters.len() >= self.cfg.checkpoint_quorum());
        if !quorum {
            return;
        }
        self.stable_seq = seq;
        self.stable_digest = own;
        self.obs_flight(FlightKind::CheckpointStable, seq.0, 0);
        self.obs_proto(ProtoFamily::Ckpt, seq.0, 1, 0);
        self.obs_audit(AuditEvent::CheckpointStable {
            seq: seq.0,
            digest: fold_digest(&own),
        });
        self.log.gc_below(seq);
        self.own_checkpoints = self.own_checkpoints.split_off(&seq);
        self.checkpoint_votes = self.checkpoint_votes.split_off(&seq.next());
        self.gc_ckpt_vote_index(seq);
        // Promote the full state to serve FetchState; drop older retained
        // checkpoints (and boundaries the harness never answered).
        if let Some(state) = self.pending_states.remove(&seq) {
            self.latest_stable = Some(state);
        }
        self.pending_states = self.pending_states.split_off(&seq.next());
        self.pending_boundaries = self.pending_boundaries.split_off(&seq.next());
        out.push(Action::Stable(seq));
        // The watermark advanced: the primary can seal queued batches that
        // were blocked on the window.
        if self.is_primary() && !self.in_view_change {
            self.drain_queue(false, out);
        }
    }

    /// Withdraws a not-yet-ordered request (e.g. a Perpetual result proposal
    /// made obsolete by an abort). Ordered or executed requests are
    /// unaffected.
    pub fn drop_request(&mut self, id: RequestId) -> Vec<Action> {
        let mut out = Vec::new();
        if matches!(self.requests.get(&id), Some(ReqState::Pending(_))) {
            self.requests.remove(&id);
            self.queue.retain(|b| *b != id);
            self.outstanding = self.outstanding.saturating_sub(1);
            if self.outstanding == 0 {
                out.push(Action::ViewTimer(TimerCmd::Stop));
            }
            self.update_batch_timer(&mut out);
        }
        out
    }

    /// The view-change timer fired: vote to replace the current primary.
    pub fn on_view_timer(&mut self) -> Vec<Action> {
        let mut out = Vec::new();
        let target = if self.in_view_change {
            self.vc_target.next()
        } else {
            self.view.next()
        };
        self.start_view_change(target, &mut out);
        out
    }

    fn start_view_change(&mut self, target: View, out: &mut Vec<Action>) {
        self.obs_flight(FlightKind::ViewChangeStarted, self.view.0, target.0);
        self.obs_proto(ProtoFamily::Vc, target.0, 0, 0);
        self.in_view_change = true;
        self.vc_target = target;
        // The primary role is suspended until the new view installs.
        self.update_batch_timer(out);
        let prepared = self
            .log
            .prepared_above(self.stable_seq, &self.cfg)
            .into_iter()
            .map(|(seq, view, digest, batch)| PreparedClaim {
                view,
                seq,
                digest,
                batch,
            })
            .collect();
        let vc = ViewChangeMsg {
            new_view: target,
            stable_seq: self.stable_seq,
            stable_digest: self.stable_digest,
            prepared,
            replica: self.id,
        };
        self.view_changes
            .entry(target)
            .or_default()
            .insert(self.id, vc.clone());
        out.push(Action::Broadcast(Msg::ViewChange(vc)));
        out.push(Action::ViewTimer(TimerCmd::Restart));
        self.try_new_view(target, out);
    }

    fn handle_view_change(&mut self, from: ReplicaId, vc: ViewChangeMsg, out: &mut Vec<Action>) {
        if from != vc.replica || vc.new_view <= self.view {
            return;
        }
        let target = vc.new_view;
        self.view_changes
            .entry(target)
            .or_default()
            .insert(vc.replica, vc);
        // Liveness: if f+1 replicas are already voting for views above ours,
        // join the smallest such view even if our timer has not fired.
        let join = self
            .view_changes
            .range((
                std::ops::Bound::Excluded(self.view),
                std::ops::Bound::Unbounded,
            ))
            .filter(|(v, votes)| {
                **v > self.view
                    && (!self.in_view_change || **v > self.vc_target)
                    && votes.len() > self.cfg.f() as usize
            })
            .map(|(v, _)| *v)
            .next();
        if let Some(v) = join {
            self.start_view_change(v, out);
        }
        self.try_new_view(target, out);
    }

    fn try_new_view(&mut self, target: View, out: &mut Vec<Action>) {
        if target.primary(self.cfg.n) != self.id
            || target <= self.view
            || self.new_view_sent.contains(&target.0)
        {
            return;
        }
        let Some(votes) = self.view_changes.get(&target) else {
            return;
        };
        if votes.len() < self.cfg.view_change_quorum() {
            return;
        }
        let votes: Vec<ViewChangeMsg> = votes.values().cloned().collect();
        let min_s = votes
            .iter()
            .map(|vc| vc.stable_seq)
            .max()
            .unwrap_or(Seq::ZERO);
        let max_s = votes
            .iter()
            .flat_map(|vc| vc.prepared.iter().map(|c| c.seq))
            .max()
            .unwrap_or(min_s)
            .max(min_s);
        let mut pre_prepares = Vec::new();
        let mut s = min_s.next();
        while s <= max_s {
            // Choose the claim from the highest view for this seq. The
            // claim's batch is re-proposed verbatim — same membership, same
            // internal order — or, if no quorum member prepared this slot,
            // the whole batch is dropped and a null batch fills the gap.
            let best = votes
                .iter()
                .flat_map(|vc| vc.prepared.iter())
                .filter(|c| c.seq == s)
                .max_by_key(|c| c.view);
            let (digest, batch) = match best {
                Some(c) => (c.digest, c.batch.clone()),
                None => {
                    let null = Batch::null();
                    (null.digest(), null)
                }
            };
            pre_prepares.push(PrePrepareMsg {
                view: target,
                seq: s,
                digest,
                batch,
            });
            s = s.next();
        }
        let nv = NewViewMsg {
            view: target,
            voters: votes.iter().map(|v| v.replica).collect(),
            pre_prepares: pre_prepares.clone(),
            replica: self.id,
        };
        self.new_view_sent.insert(target.0);
        out.push(Action::Broadcast(Msg::NewView(nv)));
        self.enter_view(target, out);
        self.next_seq = max_s;
        // Install our own re-proposals.
        for pp in pre_prepares {
            self.obs_audit(AuditEvent::PrePrepare {
                view: pp.view.0,
                seq: pp.seq.0,
                digest: fold_digest(&pp.digest),
            });
            let slot = self.log.slot_mut(pp.seq);
            slot.pre_prepare = Some((pp.view, pp.digest, pp.batch.clone()));
            slot.commit_sent = false;
            for r in &pp.batch.requests {
                if let Some(st) = self.requests.get_mut(&r.id) {
                    if matches!(st, ReqState::Pending(_)) {
                        *st = ReqState::Ordered(r.clone());
                    }
                }
            }
            self.try_prepare_transition(pp.seq, out);
        }
        self.try_speculate(out);
        self.repropose_pending(out);
    }

    fn handle_new_view(&mut self, from: ReplicaId, nv: NewViewMsg, out: &mut Vec<Action>) {
        if nv.view <= self.view
            || from != nv.view.primary(self.cfg.n)
            || from != nv.replica
            || nv.voters.len() < self.cfg.view_change_quorum()
        {
            return;
        }
        self.enter_view(nv.view, out);
        for pp in nv.pre_prepares {
            self.handle_pre_prepare(from, pp, out);
        }
        self.repropose_pending(out);
    }

    fn enter_view(&mut self, v: View, out: &mut Vec<Action>) {
        // Speculative execution beyond the committed prefix is void: the new
        // view may re-propose those slots differently (or drop them). Tell
        // the application to restore its last durable state and re-derive
        // from the executed chain before anything from the new view runs.
        if self.last_spec > self.last_exec {
            out.push(Action::RollbackSpeculation { to: self.last_exec });
        }
        self.last_spec = self.last_exec;
        self.spec_overlay.clear();
        self.view = v;
        self.obs_flight(FlightKind::EnteredView, v.0, 0);
        // Installing view `v` also retires every still-open view-change
        // span below `v` (the recorder closes them as "abandoned").
        self.obs_proto(ProtoFamily::Vc, v.0, 1, 0);
        self.in_view_change = false;
        self.vc_target = v;
        self.view_changes = self.view_changes.split_off(&v.next());
        // View reports served their purpose: abandoning a *future* view
        // change (adopt_reported_view) must rest on fresh evidence
        // gathered after this entry, never on reports from a bygone era
        // in which the reported view was still live.
        self.reported_views.clear();
        // The old view's batch accumulator is stale; `repropose_pending`
        // rebuilds it (or forwards) from the demoted request states below.
        self.queue.clear();
        // Ordered-but-unexecuted requests may have been dropped by the view
        // change; demote them so they are re-proposed if needed.
        for st in self.requests.values_mut() {
            if let ReqState::Ordered(req) = st {
                *st = ReqState::Pending(req.clone());
            }
        }
        out.push(Action::EnteredView(v));
        out.push(Action::ViewTimer(if self.outstanding == 0 {
            TimerCmd::Stop
        } else {
            TimerCmd::Restart
        }));
        // Replay messages that raced ahead of the view installation.
        let stashed = std::mem::take(&mut self.stashed);
        for (from, msg) in stashed {
            let applies_now = match &msg {
                Msg::PrePrepare(pp) => pp.view <= v,
                Msg::Prepare(p) => p.view <= v,
                _ => true,
            };
            if applies_now {
                match msg {
                    Msg::PrePrepare(pp) => self.handle_pre_prepare(from, pp, out),
                    Msg::Prepare(p) => self.handle_prepare(from, p, out),
                    _ => {}
                }
            } else {
                self.stashed.push((from, msg));
            }
        }
    }

    fn repropose_pending(&mut self, out: &mut Vec<Action>) {
        let mut pending: Vec<Request> = self
            .requests
            .values()
            .filter_map(|st| match st {
                ReqState::Pending(r) => Some(r.clone()),
                _ => None,
            })
            .collect();
        // Deterministic order: by request id.
        pending.sort_by_key(|r| r.id);
        if self.is_primary() {
            for req in &pending {
                self.queue.push_back(req.id);
            }
            self.drain_queue(false, out);
        } else {
            for req in pending {
                out.push(Action::Send(self.primary(), Msg::Forward(req)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;

    fn req(c: u64) -> Request {
        Request::new(RequestId::new(1, c), Bytes::from(format!("op-{c}")))
    }

    /// Delivers all actions among a set of replicas until quiescence.
    /// Returns the Execute actions observed per replica.
    fn run_to_quiescence(
        replicas: &mut [Replica],
        mut inbox: VecDeque<(usize, ReplicaId, Msg)>,
        drop_to: &[usize],
    ) -> Vec<Vec<(Seq, RequestId)>> {
        let mut executed: Vec<Vec<(Seq, RequestId)>> = vec![Vec::new(); replicas.len()];
        let mut steps = 0;
        while let Some((to, from, msg)) = inbox.pop_front() {
            steps += 1;
            assert!(steps < 1_000_000, "protocol livelock");
            if drop_to.contains(&to) {
                continue;
            }
            let actions = replicas[to].on_message(from, msg);
            route(replicas, to, actions, &mut inbox, &mut executed);
        }
        executed
    }

    fn route(
        replicas: &mut [Replica],
        at: usize,
        actions: Vec<Action>,
        inbox: &mut VecDeque<(usize, ReplicaId, Msg)>,
        executed: &mut [Vec<(Seq, RequestId)>],
    ) {
        let me = replicas[at].id();
        for a in actions {
            match a {
                Action::Broadcast(m) => {
                    for (i, r) in replicas.iter().enumerate() {
                        if i != at {
                            let _ = r;
                            inbox.push_back((i, me, m.clone()));
                        }
                    }
                }
                Action::Send(dest, m) => inbox.push_back((dest.0 as usize, me, m)),
                Action::Execute { seq, batch } => {
                    for request in batch {
                        executed[at].push((seq, request.id));
                    }
                }
                Action::TakeCheckpoint(seq) => {
                    // The harness answers synchronously with a snapshot
                    // that is a deterministic function of the boundary, as
                    // a real deterministic application would be.
                    let actions = replicas[at].on_snapshot(seq, test_snapshot(seq));
                    route(replicas, at, actions, inbox, executed);
                }
                Action::InstallState { .. }
                | Action::Stable(_)
                | Action::EnteredView(_)
                | Action::ViewTimer(_)
                | Action::BatchTimer(_)
                | Action::ReadOnly(_)
                | Action::SpeculativeExecute { .. }
                | Action::RollbackSpeculation { .. } => {}
            }
        }
    }

    /// The stand-in application snapshot at `seq`.
    fn test_snapshot(seq: Seq) -> Bytes {
        Bytes::from(format!("app@{}", seq.0))
    }

    fn submit(
        replicas: &mut [Replica],
        at: usize,
        r: Request,
        inbox: &mut VecDeque<(usize, ReplicaId, Msg)>,
        executed: &mut [Vec<(Seq, RequestId)>],
    ) {
        let actions = replicas[at].on_request(r);
        route(replicas, at, actions, inbox, executed);
    }

    fn group(n: u32) -> Vec<Replica> {
        group_with(n, |_| {})
    }

    fn group_with(n: u32, tweak: impl Fn(&mut Config)) -> Vec<Replica> {
        let mut cfg = Config::new(n);
        tweak(&mut cfg);
        (0..n)
            .map(|i| Replica::new(ReplicaId(i), cfg.clone()))
            .collect()
    }

    #[test]
    fn four_replicas_agree_on_one_request() {
        let mut rs = group(4);
        let mut inbox = VecDeque::new();
        let mut executed = vec![Vec::new(); 4];
        submit(&mut rs, 0, req(1), &mut inbox, &mut executed);
        let more = run_to_quiescence(&mut rs, inbox, &[]);
        for (i, m) in more.into_iter().enumerate() {
            executed[i].extend(m);
        }
        for (i, ex) in executed.iter().enumerate() {
            assert_eq!(ex.len(), 1, "replica {i}");
            assert_eq!(ex[0], (Seq(1), RequestId::new(1, 1)));
        }
        assert!(rs.iter().all(|r| r.last_executed() == Seq(1)));
        let chains: HashSet<_> = rs.iter().map(|r| r.execution_chain()).collect();
        assert_eq!(chains.len(), 1, "execution chains agree");
    }

    #[test]
    fn requests_submitted_at_backup_reach_primary() {
        let mut rs = group(4);
        let mut inbox = VecDeque::new();
        let mut executed = vec![Vec::new(); 4];
        submit(&mut rs, 2, req(1), &mut inbox, &mut executed);
        let more = run_to_quiescence(&mut rs, inbox, &[]);
        assert!(more.iter().all(|ex| ex.len() == 1));
    }

    #[test]
    fn many_requests_execute_in_identical_order_everywhere() {
        let mut rs = group(4);
        let mut inbox = VecDeque::new();
        let mut executed = vec![Vec::new(); 4];
        for c in 1..=20 {
            submit(&mut rs, (c % 4) as usize, req(c), &mut inbox, &mut executed);
        }
        let more = run_to_quiescence(&mut rs, inbox, &[]);
        for (i, m) in more.into_iter().enumerate() {
            executed[i].extend(m);
        }
        for ex in &executed {
            assert_eq!(ex.len(), 20);
        }
        for i in 1..4 {
            assert_eq!(executed[0], executed[i], "order differs at replica {i}");
        }
    }

    #[test]
    fn requests_accumulate_into_batches_under_load() {
        let mut rs = group(4);
        let mut inbox = VecDeque::new();
        let mut executed = vec![Vec::new(); 4];
        // Ten requests land at the primary before any agreement messages
        // are delivered: the pipeline (depth 2) admits two solo proposals,
        // the rest accumulate in the batch queue.
        for c in 1..=10 {
            submit(&mut rs, 0, req(c), &mut inbox, &mut executed);
        }
        assert_eq!(rs[0].in_flight(), 2, "pipeline admits two proposals");
        assert_eq!(rs[0].queued(), 8, "the rest accumulate");
        let more = run_to_quiescence(&mut rs, inbox, &[]);
        for (i, m) in more.into_iter().enumerate() {
            executed[i].extend(m);
        }
        for (i, ex) in executed.iter().enumerate() {
            assert_eq!(ex.len(), 10, "replica {i} executed all requests");
        }
        for i in 1..4 {
            assert_eq!(executed[0], executed[i], "order differs at replica {i}");
        }
        // Batching engaged: the ten requests rode in fewer than ten slots.
        let slots: HashSet<Seq> = executed[0].iter().map(|(s, _)| *s).collect();
        assert!(
            slots.len() < 10,
            "expected multi-request batches, got {} slots",
            slots.len()
        );
        assert_eq!(rs[0].queued(), 0, "queue fully drained");
    }

    #[test]
    fn batch_timer_seals_when_pipeline_is_full() {
        // Pipeline depth 0: nothing proposes until the batch timer fires,
        // and submitting arms the timer exactly once.
        let mut rs = group_with(4, |c| c.pipeline_depth = 0);
        let a1 = rs[0].on_request(req(1));
        assert!(
            a1.iter()
                .any(|a| matches!(a, Action::BatchTimer(TimerCmd::Restart))),
            "first queued request arms the batch timer: {a1:?}"
        );
        let a2 = rs[0].on_request(req(2));
        assert!(
            !a2.iter().any(|a| matches!(a, Action::BatchTimer(_))),
            "timer already armed: {a2:?}"
        );
        let fired = rs[0].on_batch_timer();
        let pp = fired
            .iter()
            .find_map(|a| match a {
                Action::Broadcast(Msg::PrePrepare(pp)) => Some(pp),
                _ => None,
            })
            .expect("timer seals the batch");
        assert_eq!(pp.batch.len(), 2, "both requests ride one batch");
        assert!(
            !fired
                .iter()
                .any(|a| matches!(a, Action::BatchTimer(TimerCmd::Restart))),
            "queue drained: the one-shot timer must not re-arm: {fired:?}"
        );
    }

    #[test]
    fn single_replica_group_executes_immediately() {
        let mut rs = group(1);
        let actions = rs[0].on_request(req(1));
        let execs: Vec<_> = actions
            .iter()
            .filter(|a| matches!(a, Action::Execute { .. }))
            .collect();
        assert_eq!(execs.len(), 1);
        assert_eq!(rs[0].last_executed(), Seq(1));
    }

    #[test]
    fn duplicate_requests_execute_once() {
        let mut rs = group(4);
        let mut inbox = VecDeque::new();
        let mut executed = vec![Vec::new(); 4];
        submit(&mut rs, 0, req(1), &mut inbox, &mut executed);
        submit(&mut rs, 0, req(1), &mut inbox, &mut executed);
        submit(&mut rs, 1, req(1), &mut inbox, &mut executed);
        let more = run_to_quiescence(&mut rs, inbox, &[]);
        for (i, m) in more.into_iter().enumerate() {
            executed[i].extend(m);
        }
        for ex in &executed {
            assert_eq!(ex.len(), 1);
        }
    }

    #[test]
    fn checkpoints_stabilize_and_gc() {
        // One request per slot (batching off) so 69 requests cross the
        // 64-execution checkpoint interval.
        let mut rs = group_with(4, |c| c.max_batch_size = 1);
        let interval = rs[0].cfg.checkpoint_interval;
        let mut inbox = VecDeque::new();
        let mut executed = vec![Vec::new(); 4];
        for c in 1..=interval + 5 {
            submit(&mut rs, 0, req(c), &mut inbox, &mut executed);
        }
        run_to_quiescence(&mut rs, inbox, &[]);
        for r in &rs {
            assert_eq!(r.stable_seq(), Seq(interval), "stable at first interval");
            assert!(r.log.len() <= 6, "log GCed, len={}", r.log.len());
        }
    }

    #[test]
    fn progress_with_f_silent_backups() {
        let mut rs = group(4);
        let mut inbox = VecDeque::new();
        let mut executed = vec![Vec::new(); 4];
        submit(&mut rs, 0, req(1), &mut inbox, &mut executed);
        // Replica 3 is silent (drops all input).
        let more = run_to_quiescence(&mut rs, inbox, &[3]);
        for i in 0..3 {
            assert_eq!(executed[i].len() + more[i].len(), 1, "replica {i}");
        }
        assert_eq!(more[3].len(), 0);
    }

    #[test]
    fn view_change_elects_new_primary_and_recovers_request() {
        let mut rs = group(4);
        let mut inbox = VecDeque::new();
        let mut executed = vec![Vec::new(); 4];
        // Submit at a backup; drop everything addressed to the primary (0)
        // so the request is never ordered.
        submit(&mut rs, 1, req(1), &mut inbox, &mut executed);
        run_to_quiescence(&mut rs, inbox, &[0]);
        assert!(executed.iter().all(|e| e.is_empty()));

        // Timers fire at the three live replicas.
        let mut inbox = VecDeque::new();
        for i in 1..4 {
            let actions = rs[i].on_view_timer();
            route(&mut rs, i, actions, &mut inbox, &mut executed);
        }
        let more = run_to_quiescence(&mut rs, inbox, &[0]);
        for i in 1..4 {
            let total = executed[i].len() + more[i].len();
            assert_eq!(total, 1, "replica {i} executed after view change");
            assert_eq!(rs[i].view(), View(1));
            assert!(!rs[i].in_view_change());
        }
        assert_eq!(rs[1].primary(), ReplicaId(1));
    }

    #[test]
    fn view_change_preserves_prepared_requests() {
        let mut rs = group(4);
        let mut inbox = VecDeque::new();
        let mut executed = vec![Vec::new(); 4];
        // Order a request fully first.
        submit(&mut rs, 0, req(1), &mut inbox, &mut executed);
        let more = run_to_quiescence(&mut rs, std::mem::take(&mut inbox), &[]);
        for (i, m) in more.into_iter().enumerate() {
            executed[i].extend(m);
        }
        // Now force a view change with nothing pending.
        let mut inbox = VecDeque::new();
        for i in 1..4 {
            let actions = rs[i].on_view_timer();
            route(&mut rs, i, actions, &mut inbox, &mut executed);
        }
        run_to_quiescence(&mut rs, inbox, &[0]);
        // Replica 1..3 entered view 1; the executed request must not be
        // re-executed (its id is deduplicated).
        for i in 1..4 {
            assert_eq!(executed[i].len(), 1, "replica {i}");
            assert_eq!(rs[i].view(), View(1));
        }
        // New requests still execute in the new view.
        let mut inbox = VecDeque::new();
        submit(&mut rs, 1, req(2), &mut inbox, &mut executed);
        let more = run_to_quiescence(&mut rs, inbox, &[0]);
        for i in 1..4 {
            assert_eq!(executed[i].len() + more[i].len(), 2, "replica {i}");
        }
    }

    #[test]
    fn equivocating_pre_prepare_is_ignored() {
        let mut rs = group(4);
        let b1 = Batch::of(req(1));
        let b2 = Batch::of(req(2));
        // Primary 0 equivocates: sends different pre-prepares for seq 1.
        let pp1 = PrePrepareMsg {
            view: View(0),
            seq: Seq(1),
            digest: b1.digest(),
            batch: b1,
        };
        let pp2 = PrePrepareMsg {
            view: View(0),
            seq: Seq(1),
            digest: b2.digest(),
            batch: b2,
        };
        let a1 = rs[1].on_message(ReplicaId(0), Msg::PrePrepare(pp1.clone()));
        assert!(a1
            .iter()
            .any(|a| matches!(a, Action::Broadcast(Msg::Prepare(_)))));
        let a2 = rs[1].on_message(ReplicaId(0), Msg::PrePrepare(pp2));
        assert!(
            !a2.iter()
                .any(|a| matches!(a, Action::Broadcast(Msg::Prepare(_)))),
            "second conflicting pre-prepare must not be prepared"
        );
        // Duplicate of the first is also ignored.
        let a3 = rs[1].on_message(ReplicaId(0), Msg::PrePrepare(pp1));
        assert!(!a3
            .iter()
            .any(|a| matches!(a, Action::Broadcast(Msg::Prepare(_)))));
    }

    #[test]
    fn pre_prepare_from_non_primary_rejected() {
        let mut rs = group(4);
        let b1 = Batch::of(req(1));
        let pp = PrePrepareMsg {
            view: View(0),
            seq: Seq(1),
            digest: b1.digest(),
            batch: b1,
        };
        let a = rs[2].on_message(ReplicaId(1), Msg::PrePrepare(pp));
        assert!(a.is_empty());
    }

    #[test]
    fn mismatched_digest_pre_prepare_rejected() {
        let mut rs = group(4);
        let pp = PrePrepareMsg {
            view: View(0),
            seq: Seq(1),
            digest: Batch::of(req(9)).digest(),
            batch: Batch::of(req(1)),
        };
        let a = rs[1].on_message(ReplicaId(0), Msg::PrePrepare(pp));
        assert!(a.is_empty());
    }

    #[test]
    fn out_of_watermark_pre_prepare_rejected() {
        let mut rs = group(4);
        let b1 = Batch::of(req(1));
        let pp = PrePrepareMsg {
            view: View(0),
            seq: Seq(100_000),
            digest: b1.digest(),
            batch: b1,
        };
        let a = rs[1].on_message(ReplicaId(0), Msg::PrePrepare(pp));
        assert!(a.is_empty());
    }

    #[test]
    fn commits_before_prepares_are_buffered() {
        // Deliver commits first, then the pre-prepare/prepares; execution
        // must still happen exactly once.
        let mut rs = group(4);
        let b1 = Batch::of(req(1));
        let d = b1.digest();
        let mk_commit = |i: u32| CommitMsg {
            view: View(0),
            seq: Seq(1),
            digest: d,
            replica: ReplicaId(i),
        };
        let mut all = Vec::new();
        all.extend(rs[3].on_message(ReplicaId(0), Msg::Commit(mk_commit(0))));
        all.extend(rs[3].on_message(ReplicaId(1), Msg::Commit(mk_commit(1))));
        all.extend(rs[3].on_message(ReplicaId(2), Msg::Commit(mk_commit(2))));
        assert!(!all.iter().any(|a| matches!(a, Action::Execute { .. })));
        let pp = PrePrepareMsg {
            view: View(0),
            seq: Seq(1),
            digest: d,
            batch: b1,
        };
        all.extend(rs[3].on_message(ReplicaId(0), Msg::PrePrepare(pp)));
        let mk_prep = |i: u32| PrepareMsg {
            view: View(0),
            seq: Seq(1),
            digest: d,
            replica: ReplicaId(i),
        };
        all.extend(rs[3].on_message(ReplicaId(1), Msg::Prepare(mk_prep(1))));
        all.extend(rs[3].on_message(ReplicaId(2), Msg::Prepare(mk_prep(2))));
        let execs = all
            .iter()
            .filter(|a| matches!(a, Action::Execute { .. }))
            .count();
        assert_eq!(execs, 1);
    }

    #[test]
    fn proposals_racing_ahead_of_new_view_are_stashed_and_replayed() {
        // A new primary's PrePrepare can arrive before its NewView when the
        // network reorders messages; the backup must buffer it and prepare
        // once the view installs, or a single reorder stalls the view.
        let mut rs = group(4);
        // Put replica 3 into a view change for view 1.
        let mut executed = vec![Vec::new(); 4];
        let _ = rs[3].on_request(req(1)); // outstanding work
        let _ = rs[3].on_view_timer();
        assert!(rs[3].in_view_change());
        // The (future) view-1 primary's proposal arrives first...
        let b1 = Batch::of(req(1));
        let pp = PrePrepareMsg {
            view: View(1),
            seq: Seq(1),
            digest: b1.digest(),
            batch: b1,
        };
        let a = rs[3].on_message(ReplicaId(1), Msg::PrePrepare(pp));
        assert!(
            !a.iter()
                .any(|x| matches!(x, Action::Broadcast(Msg::Prepare(_)))),
            "must not prepare while the view change is pending"
        );
        // ... then the NewView. Build it legitimately via the new primary.
        let mut inbox = VecDeque::new();
        for i in [0usize, 2, 3] {
            let vc = ViewChangeMsg {
                new_view: View(1),
                stable_seq: Seq::ZERO,
                stable_digest: Digest32::ZERO,
                prepared: vec![],
                replica: ReplicaId(i as u32),
            };
            let actions = rs[1].on_message(ReplicaId(i as u32), Msg::ViewChange(vc));
            route(&mut rs, 1, actions, &mut inbox, &mut executed);
        }
        // Deliver the NewView to replica 3 and check the stashed proposal
        // got replayed (a Prepare goes out).
        let nv = inbox
            .iter()
            .find_map(|(to, _, m)| {
                if *to == 3 {
                    if let Msg::NewView(nv) = m {
                        return Some(nv.clone());
                    }
                }
                None
            })
            .expect("new view broadcast");
        let actions = rs[3].on_message(ReplicaId(1), Msg::NewView(nv));
        assert!(
            actions
                .iter()
                .any(|x| matches!(x, Action::Broadcast(Msg::Prepare(p)) if p.view == View(1))),
            "stashed pre-prepare must be prepared after entering the view: {actions:?}"
        );
    }

    #[test]
    fn wiped_replica_rejoins_via_explicit_state_fetch() {
        // Run past a checkpoint, wipe replica 3, let it recover through
        // FetchState/StateResponse: it must land at its peers' execution
        // frontier with the identical execution chain.
        let mut cfg = Config::new(4);
        cfg.max_batch_size = 1;
        cfg.checkpoint_interval = 8;
        let mut rs: Vec<Replica> = (0..4)
            .map(|i| Replica::new(ReplicaId(i), cfg.clone()))
            .collect();
        let mut inbox = VecDeque::new();
        let mut executed = vec![Vec::new(); 4];
        for c in 1..=13 {
            submit(&mut rs, 0, req(c), &mut inbox, &mut executed);
        }
        run_to_quiescence(&mut rs, inbox, &[]);
        assert_eq!(rs[0].stable_seq(), Seq(8), "checkpoint stabilized");
        let frontier = rs[0].last_executed();
        let chain = rs[0].execution_chain();

        // Crash-and-wipe replica 3, then rejoin via state transfer.
        rs[3] = Replica::new(ReplicaId(3), cfg);
        let mut inbox = VecDeque::new();
        let actions = rs[3].begin_state_fetch();
        route(&mut rs, 3, actions, &mut inbox, &mut executed);
        let more = run_to_quiescence(&mut rs, inbox, &[]);
        assert_eq!(rs[3].last_executed(), frontier, "suffix replayed");
        assert_eq!(rs[3].execution_chain(), chain, "chains agree");
        assert_eq!(rs[3].stable_seq(), Seq(8));
        assert_eq!(rs[3].stable_digest(), rs[0].stable_digest());
        // The snapshot install plus suffix redelivered slots 9..=13 to the
        // (fresh) application.
        assert!(!more[3].is_empty(), "suffix slots delivered");

        // The recovered replica keeps up with new traffic normally.
        let mut inbox = VecDeque::new();
        submit(&mut rs, 0, req(99), &mut inbox, &mut executed);
        run_to_quiescence(&mut rs, inbox, &[]);
        assert_eq!(rs[3].last_executed(), rs[0].last_executed());
        assert_eq!(rs[3].execution_chain(), rs[0].execution_chain());
    }

    #[test]
    fn lag_evidence_triggers_automatic_state_fetch() {
        // Replica 3 misses everything for two checkpoint intervals; the
        // peers' checkpoint votes are the lag evidence that must trigger a
        // fetch — no explicit recovery call.
        let mut cfg = Config::new(4);
        cfg.max_batch_size = 1;
        cfg.checkpoint_interval = 8;
        let mut rs: Vec<Replica> = (0..4)
            .map(|i| Replica::new(ReplicaId(i), cfg.clone()))
            .collect();
        let mut inbox = VecDeque::new();
        let mut executed = vec![Vec::new(); 4];
        for c in 1..=20 {
            submit(&mut rs, 0, req(c), &mut inbox, &mut executed);
        }
        run_to_quiescence(&mut rs, std::mem::take(&mut inbox), &[3]);
        assert_eq!(rs[3].last_executed(), Seq::ZERO, "replica 3 missed all");

        // New traffic crosses the next boundary with replica 3 connected:
        // its peers' checkpoint broadcasts reveal the lag.
        let mut inbox = VecDeque::new();
        for c in 21..=28 {
            submit(&mut rs, 0, req(c), &mut inbox, &mut executed);
        }
        run_to_quiescence(&mut rs, inbox, &[]);
        assert_eq!(rs[3].last_executed(), rs[0].last_executed());
        assert_eq!(rs[3].execution_chain(), rs[0].execution_chain());
        assert!(rs[3].stable_seq() >= Seq(16), "installed a fetched state");
    }

    #[test]
    fn state_response_requires_f_plus_one_vouchers() {
        let mut cfg = Config::new(4);
        cfg.checkpoint_interval = 8;
        cfg.page_size = 4;
        let mut target = Replica::new(ReplicaId(3), cfg);
        let snapshot = Bytes::from_static(b"claimed-state");
        let manifest = PageManifest::compute(&snapshot, 4);
        let chain = Digest32([7u8; 32]);
        let executed: ExecutedSet = [RequestId::new(1, 1)].into_iter().collect();
        let response = StateResponseMsg {
            seq: Seq(8),
            view: View(0),
            exec_chain: chain,
            manifest: manifest.clone(),
            executed: executed.clone(),
            suffix: vec![],
            replica: ReplicaId(1),
        };
        // One voucher (the responder itself) is not enough for f = 1: no
        // page fetch even starts.
        let a = target.on_message(ReplicaId(1), Msg::StateResponse(response.clone()));
        assert!(
            !a.iter()
                .any(|x| matches!(x, Action::Send(_, Msg::FetchPages(_)))),
            "a lone responder must not be believed: {a:?}"
        );
        assert_eq!(target.last_executed(), Seq::ZERO);

        // A matching checkpoint vote from a second replica makes f + 1:
        // the cold fetcher asks the responder for every page it lacks.
        let digest = crate::messages::checkpoint_digest(Seq(8), &manifest, &executed, &chain);
        let _ = target.on_message(
            ReplicaId(2),
            Msg::Checkpoint(CheckpointMsg {
                seq: Seq(8),
                state_digest: digest,
                replica: ReplicaId(2),
            }),
        );
        let a = target.on_message(ReplicaId(1), Msg::StateResponse(response));
        let fp = a
            .iter()
            .find_map(|x| match x {
                Action::Send(to, Msg::FetchPages(fp)) if *to == ReplicaId(1) => Some(*fp),
                _ => None,
            })
            .expect("vouched manifest starts a page fetch");
        assert_eq!((fp.first, fp.count as usize), (0, manifest.len()));
        assert!(
            !a.iter().any(|x| matches!(x, Action::InstallState { .. })),
            "nothing installs before pages verify: {a:?}"
        );

        // The correct pages arrive: every one verifies against the vouched
        // manifest and the checkpoint installs.
        let pages: Vec<Bytes> = (0..manifest.len())
            .map(|i| snapshot.slice(i * 4..snapshot.len().min((i + 1) * 4)))
            .collect();
        let a = target.on_message(
            ReplicaId(1),
            Msg::PageResponse(PageResponseMsg {
                seq: Seq(8),
                first: 0,
                pages,
                replica: ReplicaId(1),
            }),
        );
        assert!(
            a.iter().any(|x| matches!(
                x,
                Action::InstallState { seq, snapshot: s } if *seq == Seq(8) && s == &snapshot
            )),
            "vouched and verified state must install: {a:?}"
        );
        assert_eq!(target.last_executed(), Seq(8));
        assert_eq!(target.stable_seq(), Seq(8));
        let c = target.take_page_counters();
        assert_eq!(c.fetched, manifest.len() as u64);
        assert_eq!(c.verified, manifest.len() as u64);
        assert_eq!(c.rejected, 0);

        // A tampered manifest no longer matches the vouched digest: no
        // fetch, no install.
        let mut fresh_cfg = Config::new(4);
        fresh_cfg.checkpoint_interval = 8;
        fresh_cfg.page_size = 4;
        let mut fresh = Replica::new(ReplicaId(3), fresh_cfg);
        let _ = fresh.on_message(
            ReplicaId(2),
            Msg::Checkpoint(CheckpointMsg {
                seq: Seq(8),
                state_digest: digest,
                replica: ReplicaId(2),
            }),
        );
        let bogus = StateResponseMsg {
            seq: Seq(8),
            view: View(0),
            exec_chain: chain,
            manifest: PageManifest::compute(b"tampered-state", 4),
            executed,
            suffix: vec![],
            replica: ReplicaId(1),
        };
        let a = fresh.on_message(ReplicaId(1), Msg::StateResponse(bogus));
        assert!(!a.iter().any(|x| matches!(
            x,
            Action::Send(_, Msg::FetchPages(_)) | Action::InstallState { .. }
        )));
        assert_eq!(fresh.last_executed(), Seq::ZERO);
    }

    /// The page table of the canonical test checkpoint state `b"state"`
    /// (one page at the default page size).
    fn test_manifest() -> PageManifest {
        PageManifest::compute(b"state", crate::pages::DEFAULT_PAGE_SIZE)
    }

    /// A `StateResponse` for checkpoint 8 with the given suffix, as
    /// replica `from` would send it.
    fn state_response(from: u32, view: u64, suffix: Vec<SuffixSlot>) -> StateResponseMsg {
        StateResponseMsg {
            seq: Seq(8),
            view: View(view),
            exec_chain: Digest32::ZERO,
            manifest: test_manifest(),
            executed: ExecutedSet::new(),
            suffix,
            replica: ReplicaId(from),
        }
    }

    /// A replica primed with one matching checkpoint vote for seq 8 —
    /// so the first `state_response` delivered to it reaches `f + 1 = 2`
    /// checkpoint vouchers — and a warm page store already holding the
    /// checkpoint's single page, so installation needs no page fetch.
    fn primed_fetcher() -> Replica {
        let mut cfg = Config::new(4);
        cfg.checkpoint_interval = 8;
        let mut target = Replica::new(ReplicaId(3), cfg);
        target.seed_page_store([Bytes::from_static(b"state")]);
        let digest = crate::messages::checkpoint_digest(
            Seq(8),
            &test_manifest(),
            &ExecutedSet::new(),
            &Digest32::ZERO,
        );
        let _ = target.on_message(
            ReplicaId(2),
            Msg::Checkpoint(CheckpointMsg {
                seq: Seq(8),
                state_digest: digest,
                replica: ReplicaId(2),
            }),
        );
        target
    }

    #[test]
    fn suffix_slots_require_f_plus_one_matching_copies() {
        let mut target = primed_fetcher();
        let suffix = vec![SuffixSlot {
            seq: Seq(9),
            batch: Batch::of(req(50)),
        }];
        // First response: the checkpoint installs (two vouchers), but the
        // suffix has a single copy — a lone responder could have fabricated
        // it, so nothing past the checkpoint executes.
        let a = target.on_message(
            ReplicaId(1),
            Msg::StateResponse(state_response(1, 0, suffix)),
        );
        assert!(a.iter().any(|x| matches!(x, Action::InstallState { .. })));
        assert_eq!(
            target.last_executed(),
            Seq(8),
            "a single-responder suffix must not replay"
        );
        // A second responder sends a *different* batch for slot 9: still
        // no digest with f + 1 copies, still no replay.
        let forged = vec![SuffixSlot {
            seq: Seq(9),
            batch: Batch::of(req(66)),
        }];
        let _ = target.on_message(
            ReplicaId(0),
            Msg::StateResponse(state_response(0, 0, forged)),
        );
        assert_eq!(
            target.last_executed(),
            Seq(8),
            "conflicting copies don't count"
        );
        // The second *matching* copy crosses the bar and the slot replays.
        let suffix = vec![SuffixSlot {
            seq: Seq(9),
            batch: Batch::of(req(50)),
        }];
        let a = target.on_message(
            ReplicaId(2),
            Msg::StateResponse(state_response(2, 0, suffix)),
        );
        assert_eq!(
            target.last_executed(),
            Seq(9),
            "f + 1 matching copies replay"
        );
        assert!(
            a.iter().any(|x| matches!(
                x,
                Action::Execute { seq, .. } if *seq == Seq(9)
            )),
            "the vouched slot executes: {a:?}"
        );
    }

    #[test]
    fn non_contiguous_suffix_is_cut_at_the_gap() {
        let mut target = primed_fetcher();
        // Slot 9 is contiguous; slot 11 is not and must never replay, even
        // with f + 1 matching copies of it.
        let suffix = || {
            vec![
                SuffixSlot {
                    seq: Seq(9),
                    batch: Batch::of(req(50)),
                },
                SuffixSlot {
                    seq: Seq(11),
                    batch: Batch::of(req(51)),
                },
            ]
        };
        let a = target.on_message(
            ReplicaId(1),
            Msg::StateResponse(state_response(1, 0, suffix())),
        );
        assert!(a.iter().any(|x| matches!(x, Action::InstallState { .. })));
        let _ = target.on_message(
            ReplicaId(2),
            Msg::StateResponse(state_response(2, 0, suffix())),
        );
        assert_eq!(target.last_executed(), Seq(9), "stopped at the gap");
    }

    #[test]
    fn rejoining_a_view_requires_f_plus_one_reports() {
        let mut target = primed_fetcher();
        // A Byzantine responder claims a far-future view; installing the
        // (correct) checkpoint must not drag us there.
        let a = target.on_message(
            ReplicaId(1),
            Msg::StateResponse(state_response(1, u64::MAX, vec![])),
        );
        assert!(a.iter().any(|x| matches!(x, Action::InstallState { .. })));
        assert_eq!(target.view(), View(0), "one report must not move the view");
        // A second report makes f + 1 = 2 distinct reporters; the adopted
        // view is the (f+1)-th highest — the honest one, not the forgery.
        let _ = target.on_message(
            ReplicaId(2),
            Msg::StateResponse(state_response(2, 3, vec![])),
        );
        assert_eq!(
            target.view(),
            View(3),
            "f + 1 reports rejoin the vouched view"
        );
    }

    #[test]
    fn stale_view_change_is_abandoned_on_f_plus_one_current_view_reports() {
        // A replica whose view timer kept firing while it was partitioned
        // away accumulates a far-future view-change target no peer will
        // ever join. Once healed, f + 1 StateResponses reporting the
        // group's *current* view must snap it out of the stale view
        // change — otherwise it stashes live proposals forever.
        let mut target = primed_fetcher();
        let _ = target.on_request(req(1));
        let _ = target.on_view_timer();
        let _ = target.on_view_timer();
        assert!(target.in_view_change(), "wedged in a lonely view change");
        let _ = target.on_message(
            ReplicaId(1),
            Msg::StateResponse(state_response(1, 0, vec![])),
        );
        assert!(target.in_view_change(), "one report is not evidence");
        let _ = target.on_message(
            ReplicaId(2),
            Msg::StateResponse(state_response(2, 0, vec![])),
        );
        assert!(
            !target.in_view_change(),
            "f + 1 current-view reports abandon the stale view change"
        );
        assert_eq!(target.view(), View(0), "still in the group's view");
    }

    #[test]
    fn fetch_responses_are_rate_limited_per_stable_checkpoint() {
        // Drive a group past a checkpoint so replica 0 holds a stable
        // state, then spam it with FetchState from the same requester: at
        // most MAX_SERVES_PER_STABLE responses may go out.
        let mut rs = group_with(4, |c| {
            c.max_batch_size = 1;
            c.checkpoint_interval = 8;
        });
        let mut inbox = VecDeque::new();
        let mut executed = vec![Vec::new(); 4];
        for c in 1..=10 {
            submit(&mut rs, 0, req(c), &mut inbox, &mut executed);
        }
        run_to_quiescence(&mut rs, inbox, &[]);
        assert_eq!(rs[0].stable_seq(), Seq(8));
        let fetch = FetchStateMsg {
            have: Seq::ZERO,
            replica: ReplicaId(3),
        };
        let mut responses = 0;
        for _ in 0..10 {
            let a = rs[0].on_message(ReplicaId(3), Msg::FetchState(fetch));
            responses += a
                .iter()
                .filter(|x| matches!(x, Action::Send(_, Msg::StateResponse(_))))
                .count();
        }
        assert_eq!(
            responses, MAX_SERVES_PER_STABLE as usize,
            "FetchState spam must not amplify"
        );
    }

    // ---- Merkle page transfer: adversarial battery ----

    /// Sixteen bytes — four pages of four at the test page size.
    const ADV_STATE: &[u8] = b"0123456789abcdef";

    fn page_of(state: &'static [u8], i: usize) -> Bytes {
        Bytes::from_static(&state[i * 4..state.len().min((i + 1) * 4)])
    }

    fn page_resp(from: u32, seq: Seq, first: u32, pages: Vec<Bytes>) -> Msg {
        Msg::PageResponse(PageResponseMsg {
            seq,
            first,
            pages,
            replica: ReplicaId(from),
        })
    }

    /// A cold fetcher mid page-fetch for checkpoint 8 over `state` at page
    /// size 4: the manifest is certified (`f + 1` vouchers) and the
    /// `FetchPages` request has gone out to replica 1.
    fn mid_fetch(state: &'static [u8]) -> (Replica, PageManifest) {
        let mut cfg = Config::new(4);
        cfg.checkpoint_interval = 8;
        cfg.page_size = 4;
        let mut target = Replica::new(ReplicaId(3), cfg);
        let manifest = PageManifest::compute(state, 4);
        let digest = crate::messages::checkpoint_digest(
            Seq(8),
            &manifest,
            &ExecutedSet::new(),
            &Digest32::ZERO,
        );
        let _ = target.on_message(
            ReplicaId(2),
            Msg::Checkpoint(CheckpointMsg {
                seq: Seq(8),
                state_digest: digest,
                replica: ReplicaId(2),
            }),
        );
        let sr = StateResponseMsg {
            seq: Seq(8),
            view: View(0),
            exec_chain: Digest32::ZERO,
            manifest: manifest.clone(),
            executed: ExecutedSet::new(),
            suffix: vec![],
            replica: ReplicaId(1),
        };
        let a = target.on_message(ReplicaId(1), Msg::StateResponse(sr));
        assert!(a
            .iter()
            .any(|x| matches!(x, Action::Send(_, Msg::FetchPages(_)))));
        (target, manifest)
    }

    #[test]
    fn byzantine_page_responses_are_rejected_and_counted() {
        let (mut target, _) = mid_fetch(ADV_STATE);
        // Wrong checkpoint target.
        let _ = target.on_message(
            ReplicaId(0),
            page_resp(0, Seq(16), 0, vec![page_of(ADV_STATE, 0)]),
        );
        assert_eq!(target.take_page_counters().rejected, 1);
        // Empty frame.
        let _ = target.on_message(ReplicaId(0), page_resp(0, Seq(8), 0, vec![]));
        assert_eq!(target.take_page_counters().rejected, 1);
        // Range running past the end of the manifest: the whole frame is
        // refused even though its first page would have verified.
        let _ = target.on_message(
            ReplicaId(0),
            page_resp(
                0,
                Seq(8),
                3,
                vec![page_of(ADV_STATE, 3), Bytes::from_static(b"xxxx")],
            ),
        );
        assert_eq!(target.take_page_counters().rejected, 1);
        // Over the per-frame protocol cap: decodes (the wire cap is
        // higher), reaches the fetcher, rejected as one frame.
        let over: Vec<Bytes> = (0..=MAX_PAGES_PER_FETCH as usize)
            .map(|_| Bytes::from_static(b"xxxx"))
            .collect();
        let _ = target.on_message(ReplicaId(0), page_resp(0, Seq(8), 0, over));
        assert_eq!(target.take_page_counters().rejected, 1);
        // Digest-mismatched page bytes: rejected, nothing fills.
        let _ = target.on_message(
            ReplicaId(0),
            page_resp(0, Seq(8), 0, vec![Bytes::from_static(b"evil")]),
        );
        let c = target.take_page_counters();
        assert_eq!((c.rejected, c.fetched), (1, 0));
        assert_eq!(target.last_executed(), Seq::ZERO, "nothing installed");
        // An honest peer answers: every page verifies and the state
        // installs — the corrupt responder only ever stalled the transfer,
        // it never poisoned it.
        let pages: Vec<Bytes> = (0..4).map(|i| page_of(ADV_STATE, i)).collect();
        let a = target.on_message(ReplicaId(2), page_resp(2, Seq(8), 0, pages));
        assert!(
            a.iter().any(|x| matches!(
                x,
                Action::InstallState { seq, snapshot } if *seq == Seq(8)
                    && snapshot == &Bytes::from_static(ADV_STATE)
            )),
            "honest pages must converge: {a:?}"
        );
        let c = target.take_page_counters();
        assert_eq!((c.fetched, c.verified, c.rejected), (4, 4, 0));
        assert_eq!(target.stable_seq(), Seq(8));
    }

    #[test]
    fn duplicate_pages_are_rejected_and_counted() {
        let (mut target, _) = mid_fetch(ADV_STATE);
        let _ = target.on_message(
            ReplicaId(1),
            page_resp(1, Seq(8), 0, vec![page_of(ADV_STATE, 0)]),
        );
        assert_eq!(target.take_page_counters().fetched, 1);
        // The same page again — byte-identical and digest-valid, but the
        // slot is already filled: a duplicate is counted as a rejection.
        let _ = target.on_message(
            ReplicaId(2),
            page_resp(2, Seq(8), 0, vec![page_of(ADV_STATE, 0)]),
        );
        let c = target.take_page_counters();
        assert_eq!((c.fetched, c.rejected), (0, 1));
        // The remaining pages complete the fetch normally.
        let rest: Vec<Bytes> = (1..4).map(|i| page_of(ADV_STATE, i)).collect();
        let a = target.on_message(ReplicaId(1), page_resp(1, Seq(8), 1, rest));
        assert!(a.iter().any(|x| matches!(x, Action::InstallState { .. })));
        assert_eq!(target.last_executed(), Seq(8));
    }

    #[test]
    fn unsolicited_page_response_is_rejected_and_counted() {
        let mut target = Replica::new(ReplicaId(3), Config::new(4));
        let _ = target.on_message(
            ReplicaId(1),
            page_resp(1, Seq(8), 0, vec![Bytes::from_static(b"x")]),
        );
        assert_eq!(target.take_page_counters().rejected, 1);
    }

    #[test]
    fn warm_fetcher_pulls_only_differing_pages() {
        // The fetcher's store holds an old state differing from the
        // certified one in exactly one page: only that page is requested
        // and travels — an O(k) transfer for a k-page diff.
        let old: &[u8] = b"0123XXXX89abcdef";
        let mut cfg = Config::new(4);
        cfg.checkpoint_interval = 8;
        cfg.page_size = 4;
        let mut target = Replica::new(ReplicaId(3), cfg);
        target.seed_page_store((0..4).map(|i| page_of(old, i)));
        let manifest = PageManifest::compute(ADV_STATE, 4);
        let digest = crate::messages::checkpoint_digest(
            Seq(8),
            &manifest,
            &ExecutedSet::new(),
            &Digest32::ZERO,
        );
        let _ = target.on_message(
            ReplicaId(2),
            Msg::Checkpoint(CheckpointMsg {
                seq: Seq(8),
                state_digest: digest,
                replica: ReplicaId(2),
            }),
        );
        let sr = StateResponseMsg {
            seq: Seq(8),
            view: View(0),
            exec_chain: Digest32::ZERO,
            manifest,
            executed: ExecutedSet::new(),
            suffix: vec![],
            replica: ReplicaId(1),
        };
        let a = target.on_message(ReplicaId(1), Msg::StateResponse(sr));
        let fetches: Vec<_> = a
            .iter()
            .filter_map(|x| match x {
                Action::Send(to, Msg::FetchPages(fp)) => Some((*to, *fp)),
                _ => None,
            })
            .collect();
        assert_eq!(fetches.len(), 1, "one bounded range request: {a:?}");
        assert_eq!(
            fetches[0].0,
            ReplicaId(1),
            "asked of the responder, not broadcast"
        );
        assert_eq!(
            (fetches[0].1.first, fetches[0].1.count),
            (1, 1),
            "only the differing page is asked for"
        );
        let a = target.on_message(
            ReplicaId(1),
            page_resp(1, Seq(8), 1, vec![page_of(ADV_STATE, 1)]),
        );
        assert!(
            a.iter().any(|x| matches!(
                x,
                Action::InstallState { seq, snapshot } if *seq == Seq(8)
                    && snapshot == &Bytes::from_static(ADV_STATE)
            )),
            "reassembled from warm pages plus the one fetched: {a:?}"
        );
        let c = target.take_page_counters();
        assert_eq!((c.fetched, c.verified, c.rejected), (1, 1, 0));
    }

    #[test]
    fn page_requests_are_validated_and_budgeted() {
        // Drive a group past a checkpoint so replica 0 can serve pages,
        // then probe every responder-side guard.
        let mut rs = group_with(4, |c| {
            c.max_batch_size = 1;
            c.checkpoint_interval = 8;
            c.page_size = 2;
        });
        let mut inbox = VecDeque::new();
        let mut executed = vec![Vec::new(); 4];
        for c in 1..=10 {
            submit(&mut rs, 0, req(c), &mut inbox, &mut executed);
        }
        run_to_quiescence(&mut rs, inbox, &[]);
        assert_eq!(rs[0].stable_seq(), Seq(8));
        let total = test_snapshot(Seq(8)).len().div_ceil(2) as u32;
        let fetch = |first: u32, count: u32| {
            Msg::FetchPages(FetchPagesMsg {
                seq: Seq(8),
                first,
                count,
                replica: ReplicaId(3),
            })
        };
        let served_pages = |a: &[Action]| {
            a.iter()
                .filter_map(|x| match x {
                    Action::Send(to, Msg::PageResponse(pr)) => {
                        assert_eq!(*to, ReplicaId(3));
                        assert_eq!(pr.seq, Seq(8));
                        Some(pr.pages.len())
                    }
                    _ => None,
                })
                .sum::<usize>()
        };
        // An honest full-range request serves every page.
        let mut total_served = served_pages(&rs[0].on_message(ReplicaId(3), fetch(0, total)));
        assert_eq!(total_served as u32, total);
        // Zero count, over-cap count, out-of-range, wrong boundary, and a
        // spoofed requester id: all refused outright.
        assert_eq!(
            served_pages(&rs[0].on_message(ReplicaId(3), fetch(0, 0))),
            0
        );
        assert_eq!(
            served_pages(&rs[0].on_message(ReplicaId(3), fetch(0, MAX_PAGES_PER_FETCH + 1))),
            0
        );
        assert_eq!(
            served_pages(&rs[0].on_message(ReplicaId(3), fetch(total, 1))),
            0
        );
        let wrong_seq = Msg::FetchPages(FetchPagesMsg {
            seq: Seq(16),
            first: 0,
            count: 1,
            replica: ReplicaId(3),
        });
        assert_eq!(served_pages(&rs[0].on_message(ReplicaId(3), wrong_seq)), 0);
        let spoofed = Msg::FetchPages(FetchPagesMsg {
            seq: Seq(8),
            first: 0,
            count: 1,
            replica: ReplicaId(3),
        });
        assert!(!rs[0]
            .on_message(ReplicaId(2), spoofed)
            .iter()
            .any(|x| matches!(x, Action::Send(_, Msg::PageResponse(_)))));
        // A spamming requester exhausts its per-stable page budget and is
        // then cut off entirely.
        for _ in 0..200 {
            let a = rs[0].on_message(ReplicaId(3), fetch(0, total));
            total_served += served_pages(&a);
        }
        assert!(
            total_served as u64 <= MIN_PAGE_BUDGET,
            "FetchPages spam must not amplify: {total_served} pages"
        );
        assert_eq!(
            served_pages(&rs[0].on_message(ReplicaId(3), fetch(0, total))),
            0,
            "budget stays exhausted until the next stable checkpoint"
        );
    }

    #[test]
    fn far_future_checkpoint_votes_stay_bounded() {
        let mut cfg = Config::new(4);
        cfg.checkpoint_interval = 8;
        let mut target = Replica::new(ReplicaId(3), cfg);
        let cap = target.max_tracked_ckpts();
        // A Byzantine peer votes for thousands of distinct far-future
        // boundaries; only its newest `cap` may remain tracked.
        for i in 1..=1_000u64 {
            let _ = target.on_message(
                ReplicaId(1),
                Msg::Checkpoint(CheckpointMsg {
                    seq: Seq(i * 8),
                    state_digest: Digest32([9u8; 32]),
                    replica: ReplicaId(1),
                }),
            );
        }
        assert!(
            target.checkpoint_votes.len() <= cap,
            "vote map grew to {} entries (cap {cap})",
            target.checkpoint_votes.len()
        );
        // Votes off the interval cadence are rejected outright.
        let _ = target.on_message(
            ReplicaId(2),
            Msg::Checkpoint(CheckpointMsg {
                seq: Seq(13),
                state_digest: Digest32([9u8; 32]),
                replica: ReplicaId(2),
            }),
        );
        assert!(
            !target.checkpoint_votes.contains_key(&Seq(13)),
            "non-boundary votes must not be tracked"
        );
    }

    #[test]
    fn prepares_in_the_current_view_drop_the_senders_stale_votes() {
        // Replica 1 votes to leave view 0, then shows up preparing in
        // view 0 again (it abandoned the view change): its parked vote
        // must stop counting toward a later quorum, because its frozen
        // claims no longer cover what it prepares from here on.
        let mut rs = group(4);
        let vc = ViewChangeMsg {
            new_view: View(1),
            stable_seq: Seq::ZERO,
            stable_digest: Digest32::ZERO,
            prepared: vec![],
            replica: ReplicaId(1),
        };
        let _ = rs[3].on_message(ReplicaId(1), Msg::ViewChange(vc));
        assert!(rs[3].view_changes.contains_key(&View(1)));
        // Seed a pre-prepare so replica 3 accepts replica 1's prepare.
        let b1 = Batch::of(req(1));
        let pp = PrePrepareMsg {
            view: View(0),
            seq: Seq(1),
            digest: b1.digest(),
            batch: b1.clone(),
        };
        let _ = rs[3].on_message(ReplicaId(0), Msg::PrePrepare(pp));
        let _ = rs[3].on_message(
            ReplicaId(1),
            Msg::Prepare(PrepareMsg {
                view: View(0),
                seq: Seq(1),
                digest: b1.digest(),
                replica: ReplicaId(1),
            }),
        );
        assert!(
            !rs[3].view_changes.contains_key(&View(1)),
            "stale vote must be dropped once the voter prepares in view 0"
        );
        // A second vote for view 1 from replica 2 alone must not reach
        // the f + 1 join bar using the dropped vote.
        let vc2 = ViewChangeMsg {
            new_view: View(1),
            stable_seq: Seq::ZERO,
            stable_digest: Digest32::ZERO,
            prepared: vec![],
            replica: ReplicaId(2),
        };
        let a = rs[3].on_message(ReplicaId(2), Msg::ViewChange(vc2));
        assert!(
            !a.iter()
                .any(|x| matches!(x, Action::Broadcast(Msg::ViewChange(_)))),
            "one live vote plus a dropped stale vote must not trigger a join"
        );
    }

    #[test]
    fn f_plus_one_view_changes_trigger_join() {
        let mut rs = group(4);
        let vc = |i: u32| ViewChangeMsg {
            new_view: View(1),
            stable_seq: Seq::ZERO,
            stable_digest: Digest32::ZERO,
            prepared: vec![],
            replica: ReplicaId(i),
        };
        let a1 = rs[3].on_message(ReplicaId(0), Msg::ViewChange(vc(0)));
        assert!(!a1
            .iter()
            .any(|a| matches!(a, Action::Broadcast(Msg::ViewChange(_)))));
        let a2 = rs[3].on_message(ReplicaId(1), Msg::ViewChange(vc(1)));
        assert!(
            a2.iter()
                .any(|a| matches!(a, Action::Broadcast(Msg::ViewChange(_)))),
            "f+1 = 2 votes should trigger a join"
        );
        assert!(rs[3].in_view_change());
    }

    // ---- Read-only fast path ----

    fn ro(c: u64) -> Request {
        Request::read_only(RequestId::new(9, c), Bytes::from_static(b"get"))
    }

    #[test]
    fn read_only_requests_consume_no_sequence_slot() {
        let mut rs = group(4);
        let mut inbox = VecDeque::new();
        let mut executed = vec![Vec::new(); 4];
        submit(&mut rs, 0, req(1), &mut inbox, &mut executed);
        run_to_quiescence(&mut rs, inbox, &[]);
        let frontier = rs[0].last_executed();
        let next = rs[0].next_seq;
        // A burst of reads at every replica: each answers straight from
        // committed state — no protocol traffic, no ordering state touched.
        for (i, rep) in rs.iter_mut().enumerate() {
            for c in 0..50 {
                let r = ro(c);
                let a = rep.on_request(r.clone());
                assert_eq!(a.len(), 1, "replica {i}: exactly one action: {a:?}");
                assert!(matches!(&a[0], Action::ReadOnly(got) if got.id == r.id));
            }
            assert_eq!(rep.outstanding(), 0, "replica {i}");
            assert_eq!(rep.queued(), 0, "replica {i}");
        }
        assert_eq!(
            rs[0].next_seq, next,
            "reads must not advance the proposal counter"
        );
        assert_eq!(rs[0].last_executed(), frontier);
    }

    #[test]
    fn read_only_gate_closes_during_view_change() {
        let mut rs = group(4);
        assert!(rs[1].can_serve_reads());
        let _ = rs[1].on_view_timer();
        assert!(rs[1].in_view_change());
        assert!(!rs[1].can_serve_reads());
        let a = rs[1].on_request(ro(1));
        assert!(a.is_empty(), "gated reads are dropped: {a:?}");
    }

    #[test]
    fn read_only_gate_closes_during_state_transfer_until_suffix_replays() {
        // A replica that installed a fetched checkpoint must not answer
        // reads until the committed suffix has replayed: the bare
        // checkpoint may be a whole suffix behind the group's frontier.
        let mut target = primed_fetcher();
        let _ = target.begin_state_fetch();
        assert!(target.state_transfer_in_progress());
        assert!(!target.can_serve_reads());
        // The checkpoint installs, but slot 9 has a single-copy suffix
        // claim: still mid-transfer, reads stay gated.
        let suffix = vec![SuffixSlot {
            seq: Seq(9),
            batch: Batch::of(req(50)),
        }];
        let _ = target.on_message(
            ReplicaId(1),
            Msg::StateResponse(state_response(1, 0, suffix.clone())),
        );
        assert_eq!(target.last_executed(), Seq(8));
        assert!(target.state_transfer_in_progress());
        assert!(!target.can_serve_reads());
        let a = target.on_request(ro(1));
        assert!(a.is_empty(), "mid-transfer reads must be dropped: {a:?}");
        // The second matching copy replays the suffix; reads reopen.
        let _ = target.on_message(
            ReplicaId(0),
            Msg::StateResponse(state_response(0, 0, suffix)),
        );
        assert_eq!(target.last_executed(), Seq(9));
        assert!(!target.state_transfer_in_progress());
        assert!(target.can_serve_reads());
    }

    #[test]
    fn wiped_replica_blocks_reads_until_recovered() {
        // End-to-end variant against the full rejoin flow.
        let mut cfg = Config::new(4);
        cfg.max_batch_size = 1;
        cfg.checkpoint_interval = 8;
        let mut rs: Vec<Replica> = (0..4)
            .map(|i| Replica::new(ReplicaId(i), cfg.clone()))
            .collect();
        let mut inbox = VecDeque::new();
        let mut executed = vec![Vec::new(); 4];
        for c in 1..=13 {
            submit(&mut rs, 0, req(c), &mut inbox, &mut executed);
        }
        run_to_quiescence(&mut rs, inbox, &[]);
        rs[3] = Replica::new(ReplicaId(3), cfg);
        let mut inbox = VecDeque::new();
        let actions = rs[3].begin_state_fetch();
        assert!(!rs[3].can_serve_reads(), "fetch in flight gates reads");
        route(&mut rs, 3, actions, &mut inbox, &mut executed);
        run_to_quiescence(&mut rs, inbox, &[]);
        assert_eq!(rs[3].last_executed(), rs[0].last_executed());
        assert!(rs[3].can_serve_reads(), "reads reopen once caught up");
    }

    // ---- Speculative execution ----

    #[test]
    fn speculation_fires_at_pre_prepare_time() {
        let mut rs = group_with(4, |c| c.speculative = true);
        // The primary speculates at proposal time...
        let a = rs[0].on_request(req(1));
        assert!(
            a.iter().any(|x| matches!(
                x,
                Action::SpeculativeExecute { seq, batch } if *seq == Seq(1) && batch.len() == 1
            )),
            "primary speculates its own proposal: {a:?}"
        );
        assert_eq!(rs[0].last_speculated(), Seq(1));
        assert!(
            !rs[0].can_serve_reads(),
            "tentative state must not serve reads"
        );
        // ...and a backup speculates on receiving the pre-prepare.
        let pp = a
            .iter()
            .find_map(|x| match x {
                Action::Broadcast(Msg::PrePrepare(pp)) => Some(pp.clone()),
                _ => None,
            })
            .expect("proposal broadcast");
        let b = rs[1].on_message(ReplicaId(0), Msg::PrePrepare(pp.clone()));
        assert!(
            b.iter()
                .any(|x| matches!(x, Action::SpeculativeExecute { seq, .. } if *seq == Seq(1))),
            "backup speculates at pre-prepare: {b:?}"
        );
        // A duplicate pre-prepare must not re-execute the slot.
        let dup = rs[1].on_message(ReplicaId(0), Msg::PrePrepare(pp));
        assert!(
            !dup.iter()
                .any(|x| matches!(x, Action::SpeculativeExecute { .. })),
            "{dup:?}"
        );
    }

    #[test]
    fn speculative_group_converges_and_folds_into_committed_frontier() {
        let mut rs = group_with(4, |c| c.speculative = true);
        let mut inbox = VecDeque::new();
        let mut executed = vec![Vec::new(); 4];
        for c in 1..=20 {
            submit(&mut rs, (c % 4) as usize, req(c), &mut inbox, &mut executed);
        }
        let more = run_to_quiescence(&mut rs, inbox, &[]);
        for (i, m) in more.into_iter().enumerate() {
            executed[i].extend(m);
        }
        for ex in &executed {
            assert_eq!(ex.len(), 20);
        }
        for i in 1..4 {
            assert_eq!(executed[0], executed[i], "order differs at replica {i}");
        }
        for r in &rs {
            assert_eq!(
                r.last_speculated(),
                r.last_executed(),
                "no dangling speculation"
            );
            assert!(r.can_serve_reads());
        }
        let chains: HashSet<_> = rs.iter().map(|r| r.execution_chain()).collect();
        assert_eq!(chains.len(), 1);
    }

    #[test]
    fn view_change_rolls_back_uncommitted_speculation() {
        let mut rs = group_with(4, |c| c.speculative = true);
        // Replica 3 speculates slot 1 from a pre-prepare that never commits.
        let b1 = Batch::of(req(1));
        let pp = PrePrepareMsg {
            view: View(0),
            seq: Seq(1),
            digest: b1.digest(),
            batch: b1,
        };
        let a = rs[3].on_message(ReplicaId(0), Msg::PrePrepare(pp));
        assert!(a
            .iter()
            .any(|x| matches!(x, Action::SpeculativeExecute { seq, .. } if *seq == Seq(1))));
        assert_eq!(rs[3].last_speculated(), Seq(1));
        // A valid NewView discards the slot: the replica must order a
        // rollback to its committed frontier before any new-view work.
        let nv = NewViewMsg {
            view: View(1),
            voters: vec![ReplicaId(1), ReplicaId(2), ReplicaId(3)],
            pre_prepares: vec![],
            replica: ReplicaId(1),
        };
        let a = rs[3].on_message(ReplicaId(1), Msg::NewView(nv));
        let rb = a
            .iter()
            .position(|x| matches!(x, Action::RollbackSpeculation { to } if *to == Seq::ZERO))
            .expect("rollback to the committed frontier");
        let ev = a
            .iter()
            .position(|x| matches!(x, Action::EnteredView(_)))
            .expect("view entry");
        assert!(rb < ev, "rollback precedes the view entry: {a:?}");
        assert_eq!(rs[3].last_speculated(), Seq::ZERO);
        assert!(rs[3].can_serve_reads());
    }

    #[test]
    fn speculation_rolled_back_by_view_change_leaves_converged_chains() {
        let mut rs = group_with(4, |c| c.speculative = true);
        let mut inbox = VecDeque::new();
        let mut executed = vec![Vec::new(); 4];
        submit(&mut rs, 0, req(1), &mut inbox, &mut executed);
        let more = run_to_quiescence(&mut rs, inbox, &[]);
        for (i, m) in more.into_iter().enumerate() {
            executed[i].extend(m);
        }
        // Primary 0 proposes — and speculates — request 2, but the
        // proposal never leaves: the group view-changes around it.
        let mut lost = VecDeque::new();
        submit(&mut rs, 0, req(2), &mut lost, &mut executed);
        drop(lost);
        assert_eq!(rs[0].last_speculated(), Seq(2));
        assert!(!rs[0].can_serve_reads());
        let mut inbox = VecDeque::new();
        for i in 1..4 {
            let actions = rs[i].on_view_timer();
            route(&mut rs, i, actions, &mut inbox, &mut executed);
        }
        let more = run_to_quiescence(&mut rs, inbox, &[]);
        for (i, m) in more.into_iter().enumerate() {
            executed[i].extend(m);
        }
        // The demoted request re-proposes in the new view; every replica
        // executes both requests exactly once and the chains converge —
        // the rolled-back tentative execution left no trace.
        for (i, ex) in executed.iter().enumerate() {
            assert_eq!(ex.len(), 2, "replica {i} executed both exactly once");
        }
        for i in 1..4 {
            assert_eq!(executed[0], executed[i], "order differs at replica {i}");
        }
        let chains: HashSet<_> = rs.iter().map(|r| r.execution_chain()).collect();
        assert_eq!(chains.len(), 1, "chains converge after rollback");
        for r in &rs {
            assert_eq!(r.last_speculated(), r.last_executed());
            assert!(r.can_serve_reads());
        }
    }

    // ---- Batch-timer force path ----

    #[test]
    fn forced_batch_seal_respects_the_watermark() {
        // Regression guard for the batch timer's force path: `force` may
        // bypass the pipeline-depth brake, but never the high watermark —
        // slots past `stable + window` must stay queued until a checkpoint
        // stabilizes and the window slides.
        let mut rs = group_with(4, |c| {
            c.pipeline_depth = 0;
            c.max_batch_size = 1;
            c.watermark_window = 4;
        });
        for c in 1..=6 {
            let _ = rs[0].on_request(req(c));
        }
        assert_eq!(rs[0].queued(), 6, "depth 0: nothing proposes untimed");
        let fired = rs[0].on_batch_timer();
        let seqs: Vec<Seq> = fired
            .iter()
            .filter_map(|a| match a {
                Action::Broadcast(Msg::PrePrepare(pp)) => Some(pp.seq),
                _ => None,
            })
            .collect();
        assert_eq!(
            seqs,
            vec![Seq(1), Seq(2), Seq(3), Seq(4)],
            "force stops at the watermark: {fired:?}"
        );
        assert_eq!(rs[0].queued(), 2, "overflow stays queued");
        assert_eq!(rs[0].in_flight(), 4);
    }
}
