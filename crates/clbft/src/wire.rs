//! A hand-rolled, dependency-free binary codec for CLBFT messages.
//!
//! The format is length-prefixed and tag-discriminated; it exists so the
//! voter layer can ship CLBFT messages over `pws-simnet` as opaque bytes
//! without pulling a serialization framework into the digest-stable wire
//! path.

use crate::messages::{
    Batch, CheckpointMsg, CommitMsg, FetchPagesMsg, FetchStateMsg, Msg, NewViewMsg,
    PageResponseMsg, PrePrepareMsg, PrepareMsg, PreparedClaim, Request, RequestId,
    StateResponseMsg, SuffixSlot, ViewChangeMsg,
};
use crate::pages::{PageManifest, MAX_WIRE_PAGES, MAX_WIRE_PAGE_RESPONSE};
use crate::{ReplicaId, Seq, View};
use bytes::{Bytes, BytesMut};
use pws_crypto::sha256::Digest32;
use std::fmt;

/// Error produced when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    what: &'static str,
}

impl WireError {
    fn new(what: &'static str) -> Self {
        WireError { what }
    }

    /// A malformed-input error with an explicit cause, for codecs layered
    /// on [`Encoder`]/[`Decoder`] outside this crate (snapshot formats).
    pub fn malformed(what: &'static str) -> Self {
        WireError::new(what)
    }
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed clbft message: {}", self.what)
    }
}

impl std::error::Error for WireError {}

/// An append-only encoder.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// A fresh encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
    }

    /// Appends a 32-byte digest.
    pub fn put_digest(&mut self, d: &Digest32) {
        self.buf.extend_from_slice(d.as_bytes());
    }

    /// Finishes, returning the encoded bytes.
    pub fn finish(self) -> Bytes {
        BytesMut::from(&self.buf[..]).freeze()
    }
}

/// A cursor-based decoder.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wraps `buf` for decoding.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::new("truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let s = self.take(4)?;
        Ok(u32::from_be_bytes([s[0], s[1], s[2], s[3]]))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let s = self.take(8)?;
        Ok(u64::from_be_bytes([
            s[0], s[1], s[2], s[3], s[4], s[5], s[6], s[7],
        ]))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<Bytes, WireError> {
        let len = self.u32()? as usize;
        if len > 64 * 1024 * 1024 {
            return Err(WireError::new("length prefix too large"));
        }
        Ok(Bytes::copy_from_slice(self.take(len)?))
    }

    /// Reads a 32-byte digest.
    pub fn digest(&mut self) -> Result<Digest32, WireError> {
        let s = self.take(32)?;
        let mut d = [0u8; 32];
        d.copy_from_slice(s);
        Ok(Digest32(d))
    }

    /// Fails unless the whole buffer was consumed.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::new("trailing bytes"))
        }
    }
}

fn put_request(e: &mut Encoder, r: &Request) {
    e.put_u64(r.id.origin);
    e.put_u64(r.id.counter);
    e.put_u8(r.flags());
    e.put_bytes(&r.payload);
}

fn get_request(d: &mut Decoder<'_>) -> Result<Request, WireError> {
    let origin = d.u64()?;
    let counter = d.u64()?;
    // Flag bitfield: bit 0 read-only, bit 1 config. A plain request still
    // encodes byte 0 and a read-only request byte 1, so pre-config frames
    // decode (and re-encode) unchanged.
    let flags = d.u8()?;
    if flags > 3 {
        return Err(WireError::new("bad request flags"));
    }
    let payload = d.bytes()?;
    let mut req = Request::new(RequestId::new(origin, counter), payload);
    req.read_only = flags & 1 != 0;
    req.config = flags & 2 != 0;
    Ok(req)
}

/// Hard cap on the request count of one wire batch: far above any sane
/// [`crate::Config::max_batch_size`], low enough that a hostile count
/// prefix cannot drive a huge allocation.
const MAX_WIRE_BATCH: usize = 65_536;

fn put_batch(e: &mut Encoder, b: &Batch) {
    e.put_u32(b.requests.len() as u32);
    for r in &b.requests {
        put_request(e, r);
    }
}

fn get_batch(d: &mut Decoder<'_>) -> Result<Batch, WireError> {
    let n = d.u32()? as usize;
    if n > MAX_WIRE_BATCH {
        return Err(WireError::new("batch too large"));
    }
    let mut requests = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        requests.push(get_request(d)?);
    }
    Ok(Batch::new(requests))
}

fn put_pre_prepare(e: &mut Encoder, pp: &PrePrepareMsg) {
    e.put_u64(pp.view.0);
    e.put_u64(pp.seq.0);
    e.put_digest(&pp.digest);
    put_batch(e, &pp.batch);
}

fn get_pre_prepare(d: &mut Decoder<'_>) -> Result<PrePrepareMsg, WireError> {
    Ok(PrePrepareMsg {
        view: View(d.u64()?),
        seq: Seq(d.u64()?),
        digest: d.digest()?,
        batch: get_batch(d)?,
    })
}

const TAG_FORWARD: u8 = 1;
const TAG_PRE_PREPARE: u8 = 2;
const TAG_PREPARE: u8 = 3;
const TAG_COMMIT: u8 = 4;
const TAG_CHECKPOINT: u8 = 5;
const TAG_VIEW_CHANGE: u8 = 6;
const TAG_NEW_VIEW: u8 = 7;
const TAG_FETCH_STATE: u8 = 8;
const TAG_STATE_RESPONSE: u8 = 9;
const TAG_FETCH_PAGES: u8 = 10;
const TAG_PAGE_RESPONSE: u8 = 11;

/// Hard cap on the executed-set *wire entries* of one state response
/// (origins plus out-of-order residue counters; see
/// [`crate::ExecutedSet::wire_entries`]): bounds the allocation a hostile
/// count prefix can drive, like the wire batch cap. Public because honest
/// responders must also respect it — a dedup set past the cap cannot be
/// shipped and the responder stays silent rather than emit a frame no
/// fetcher would accept. With per-origin compaction the entry count is
/// O(origins + reorder residue), not O(executed requests), so honest sets
/// sit far below this cap for the lifetime of a deployment.
pub const MAX_WIRE_EXECUTED: usize = 1 << 20;

/// Hard cap on the log-suffix slot count of one state response: the suffix
/// spans at most a watermark window of slots in any honest response.
/// Public so responders can truncate an oversized suffix (safe: the
/// fetcher just lands earlier and re-fetches) instead of emitting an
/// undecodable frame.
pub const MAX_WIRE_SUFFIX: usize = 65_536;

/// Encodes a CLBFT message.
pub fn encode_msg(msg: &Msg) -> Bytes {
    let mut e = Encoder::new();
    match msg {
        Msg::Forward(r) => {
            e.put_u8(TAG_FORWARD);
            put_request(&mut e, r);
        }
        Msg::PrePrepare(pp) => {
            e.put_u8(TAG_PRE_PREPARE);
            put_pre_prepare(&mut e, pp);
        }
        Msg::Prepare(p) => {
            e.put_u8(TAG_PREPARE);
            e.put_u64(p.view.0);
            e.put_u64(p.seq.0);
            e.put_digest(&p.digest);
            e.put_u32(p.replica.0);
        }
        Msg::Commit(c) => {
            e.put_u8(TAG_COMMIT);
            e.put_u64(c.view.0);
            e.put_u64(c.seq.0);
            e.put_digest(&c.digest);
            e.put_u32(c.replica.0);
        }
        Msg::Checkpoint(c) => {
            e.put_u8(TAG_CHECKPOINT);
            e.put_u64(c.seq.0);
            e.put_digest(&c.state_digest);
            e.put_u32(c.replica.0);
        }
        Msg::ViewChange(vc) => {
            e.put_u8(TAG_VIEW_CHANGE);
            e.put_u64(vc.new_view.0);
            e.put_u64(vc.stable_seq.0);
            e.put_digest(&vc.stable_digest);
            e.put_u32(vc.prepared.len() as u32);
            for c in &vc.prepared {
                e.put_u64(c.view.0);
                e.put_u64(c.seq.0);
                e.put_digest(&c.digest);
                put_batch(&mut e, &c.batch);
            }
            e.put_u32(vc.replica.0);
        }
        Msg::NewView(nv) => {
            e.put_u8(TAG_NEW_VIEW);
            e.put_u64(nv.view.0);
            e.put_u32(nv.voters.len() as u32);
            for v in &nv.voters {
                e.put_u32(v.0);
            }
            e.put_u32(nv.pre_prepares.len() as u32);
            for pp in &nv.pre_prepares {
                put_pre_prepare(&mut e, pp);
            }
            e.put_u32(nv.replica.0);
        }
        Msg::FetchState(fs) => {
            e.put_u8(TAG_FETCH_STATE);
            e.put_u64(fs.have.0);
            e.put_u32(fs.replica.0);
        }
        Msg::StateResponse(sr) => {
            e.put_u8(TAG_STATE_RESPONSE);
            e.put_u64(sr.seq.0);
            e.put_u64(sr.view.0);
            e.put_digest(&sr.exec_chain);
            sr.manifest.encode_into(&mut e);
            sr.executed.encode_into(&mut e);
            e.put_u32(sr.suffix.len() as u32);
            for slot in &sr.suffix {
                e.put_u64(slot.seq.0);
                put_batch(&mut e, &slot.batch);
            }
            e.put_u32(sr.replica.0);
        }
        Msg::FetchPages(fp) => {
            e.put_u8(TAG_FETCH_PAGES);
            e.put_u64(fp.seq.0);
            e.put_u32(fp.first);
            e.put_u32(fp.count);
            e.put_u32(fp.replica.0);
        }
        Msg::PageResponse(pr) => {
            e.put_u8(TAG_PAGE_RESPONSE);
            e.put_u64(pr.seq.0);
            e.put_u32(pr.first);
            e.put_u32(pr.pages.len() as u32);
            for p in &pr.pages {
                e.put_bytes(p);
            }
            e.put_u32(pr.replica.0);
        }
    }
    e.finish()
}

/// Decodes a CLBFT message.
///
/// # Errors
///
/// Returns [`WireError`] for truncated, oversized, or unknown-tag input.
pub fn decode_msg(buf: &[u8]) -> Result<Msg, WireError> {
    let mut d = Decoder::new(buf);
    let tag = d.u8()?;
    let msg = match tag {
        TAG_FORWARD => Msg::Forward(get_request(&mut d)?),
        TAG_PRE_PREPARE => Msg::PrePrepare(get_pre_prepare(&mut d)?),
        TAG_PREPARE => Msg::Prepare(PrepareMsg {
            view: View(d.u64()?),
            seq: Seq(d.u64()?),
            digest: d.digest()?,
            replica: ReplicaId(d.u32()?),
        }),
        TAG_COMMIT => Msg::Commit(CommitMsg {
            view: View(d.u64()?),
            seq: Seq(d.u64()?),
            digest: d.digest()?,
            replica: ReplicaId(d.u32()?),
        }),
        TAG_CHECKPOINT => Msg::Checkpoint(CheckpointMsg {
            seq: Seq(d.u64()?),
            state_digest: d.digest()?,
            replica: ReplicaId(d.u32()?),
        }),
        TAG_VIEW_CHANGE => {
            let new_view = View(d.u64()?);
            let stable_seq = Seq(d.u64()?);
            let stable_digest = d.digest()?;
            let n = d.u32()? as usize;
            if n > 100_000 {
                return Err(WireError::new("too many prepared claims"));
            }
            let mut prepared = Vec::with_capacity(n);
            for _ in 0..n {
                prepared.push(PreparedClaim {
                    view: View(d.u64()?),
                    seq: Seq(d.u64()?),
                    digest: d.digest()?,
                    batch: get_batch(&mut d)?,
                });
            }
            Msg::ViewChange(ViewChangeMsg {
                new_view,
                stable_seq,
                stable_digest,
                prepared,
                replica: ReplicaId(d.u32()?),
            })
        }
        TAG_NEW_VIEW => {
            let view = View(d.u64()?);
            let nv_count = d.u32()? as usize;
            if nv_count > 100_000 {
                return Err(WireError::new("too many voters"));
            }
            let mut voters = Vec::with_capacity(nv_count);
            for _ in 0..nv_count {
                voters.push(ReplicaId(d.u32()?));
            }
            let pp_count = d.u32()? as usize;
            if pp_count > 1_000_000 {
                return Err(WireError::new("too many pre-prepares"));
            }
            let mut pre_prepares = Vec::with_capacity(pp_count);
            for _ in 0..pp_count {
                pre_prepares.push(get_pre_prepare(&mut d)?);
            }
            Msg::NewView(NewViewMsg {
                view,
                voters,
                pre_prepares,
                replica: ReplicaId(d.u32()?),
            })
        }
        TAG_FETCH_STATE => Msg::FetchState(FetchStateMsg {
            have: Seq(d.u64()?),
            replica: ReplicaId(d.u32()?),
        }),
        TAG_STATE_RESPONSE => {
            let seq = Seq(d.u64()?);
            let view = View(d.u64()?);
            let exec_chain = d.digest()?;
            let manifest = PageManifest::decode_from(&mut d, MAX_WIRE_PAGES)?;
            let executed = crate::ExecutedSet::decode_from(&mut d, MAX_WIRE_EXECUTED)?;
            let suffix_count = d.u32()? as usize;
            if suffix_count > MAX_WIRE_SUFFIX {
                return Err(WireError::new("suffix too large"));
            }
            let mut suffix = Vec::with_capacity(suffix_count.min(4096));
            for _ in 0..suffix_count {
                suffix.push(SuffixSlot {
                    seq: Seq(d.u64()?),
                    batch: get_batch(&mut d)?,
                });
            }
            Msg::StateResponse(StateResponseMsg {
                seq,
                view,
                exec_chain,
                manifest,
                executed,
                suffix,
                replica: ReplicaId(d.u32()?),
            })
        }
        TAG_FETCH_PAGES => Msg::FetchPages(FetchPagesMsg {
            seq: Seq(d.u64()?),
            first: d.u32()?,
            count: d.u32()?,
            replica: ReplicaId(d.u32()?),
        }),
        TAG_PAGE_RESPONSE => {
            let seq = Seq(d.u64()?);
            let first = d.u32()?;
            let count = d.u32()? as usize;
            // Decode cap only: the protocol cap (MAX_PAGES_PER_FETCH) is
            // enforced — and *counted* — by the fetch state machine, so an
            // over-cap-but-decodable response is observable misbehavior,
            // not a silent codec drop.
            if count > MAX_WIRE_PAGE_RESPONSE {
                return Err(WireError::new("too many response pages"));
            }
            let mut pages = Vec::with_capacity(count.min(4096));
            for _ in 0..count {
                pages.push(d.bytes()?);
            }
            Msg::PageResponse(PageResponseMsg {
                seq,
                first,
                pages,
                replica: ReplicaId(d.u32()?),
            })
        }
        _ => return Err(WireError::new("unknown tag")),
    };
    d.finish()?;
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sample_request(c: u64) -> Request {
        Request::new(RequestId::new(3, c), Bytes::from(vec![c as u8; 5]))
    }

    fn roundtrip(m: Msg) {
        let bytes = encode_msg(&m);
        let back = decode_msg(&bytes).expect("decode");
        assert_eq!(m, back);
    }

    #[test]
    fn roundtrip_all_variants() {
        roundtrip(Msg::Forward(sample_request(1)));
        roundtrip(Msg::Forward(Request::read_only(
            RequestId::new(3, 7),
            Bytes::from_static(b"read"),
        )));
        let batch = Batch::new(vec![sample_request(1), sample_request(2)]);
        let pp = PrePrepareMsg {
            view: View(2),
            seq: Seq(9),
            digest: batch.digest(),
            batch,
        };
        roundtrip(Msg::PrePrepare(pp.clone()));
        // Null (gap-filling) batches also round-trip.
        roundtrip(Msg::PrePrepare(PrePrepareMsg {
            view: View(3),
            seq: Seq(10),
            digest: Batch::null().digest(),
            batch: Batch::null(),
        }));
        roundtrip(Msg::Prepare(PrepareMsg {
            view: View(2),
            seq: Seq(9),
            digest: sample_request(1).digest(),
            replica: ReplicaId(3),
        }));
        roundtrip(Msg::Commit(CommitMsg {
            view: View(2),
            seq: Seq(9),
            digest: sample_request(1).digest(),
            replica: ReplicaId(3),
        }));
        roundtrip(Msg::Checkpoint(CheckpointMsg {
            seq: Seq(64),
            state_digest: sample_request(2).digest(),
            replica: ReplicaId(1),
        }));
        roundtrip(Msg::ViewChange(ViewChangeMsg {
            new_view: View(4),
            stable_seq: Seq(64),
            stable_digest: sample_request(2).digest(),
            prepared: vec![PreparedClaim {
                view: View(3),
                seq: Seq(65),
                digest: Batch::of(sample_request(3)).digest(),
                batch: Batch::of(sample_request(3)),
            }],
            replica: ReplicaId(2),
        }));
        roundtrip(Msg::NewView(NewViewMsg {
            view: View(4),
            voters: vec![ReplicaId(0), ReplicaId(1), ReplicaId(2)],
            pre_prepares: vec![pp],
            replica: ReplicaId(0),
        }));
        roundtrip(Msg::FetchState(FetchStateMsg {
            have: Seq(64),
            replica: ReplicaId(3),
        }));
        roundtrip(Msg::StateResponse(StateResponseMsg {
            seq: Seq(64),
            view: View(2),
            exec_chain: sample_request(1).digest(),
            manifest: PageManifest::compute(b"app-state", 4),
            executed: [
                RequestId::new(3, 0),
                RequestId::new(3, 1),
                RequestId::new(3, 5),
                RequestId::new(0xFEED, 9),
            ]
            .into_iter()
            .collect(),
            suffix: vec![SuffixSlot {
                seq: Seq(65),
                batch: Batch::of(sample_request(4)),
            }],
            replica: ReplicaId(1),
        }));
        roundtrip(Msg::FetchPages(FetchPagesMsg {
            seq: Seq(64),
            first: 3,
            count: 5,
            replica: ReplicaId(2),
        }));
        roundtrip(Msg::PageResponse(PageResponseMsg {
            seq: Seq(64),
            first: 3,
            pages: vec![Bytes::from_static(b"page"), Bytes::new()],
            replica: ReplicaId(0),
        }));
    }

    #[test]
    fn oversized_state_response_counts_rejected() {
        let chain = sample_request(1).digest();
        for (ranged_count, singles_count, suffix_count, what) in [
            (
                (MAX_WIRE_EXECUTED + 1) as u32,
                0,
                0,
                "executed set too large",
            ),
            (
                0,
                (MAX_WIRE_EXECUTED + 1) as u32,
                0,
                "executed set too large",
            ),
            (0, 0, (MAX_WIRE_SUFFIX + 1) as u32, "suffix too large"),
        ] {
            let mut e = Encoder::new();
            e.put_u8(TAG_STATE_RESPONSE);
            e.put_u64(64); // seq
            e.put_u64(0); // view
            e.put_digest(&chain);
            PageManifest::compute(b"snap", 4).encode_into(&mut e);
            e.put_u32(ranged_count); // executed-set ranged section
            e.put_u32(singles_count); // executed-set singleton section
            e.put_u32(suffix_count);
            let err = decode_msg(&e.finish()).unwrap_err();
            assert!(err.to_string().contains(what), "{err}");
        }
    }

    #[test]
    fn oversized_or_inconsistent_state_response_manifest_rejected() {
        let chain = sample_request(1).digest();
        // Page count past the wire cap.
        let mut e = Encoder::new();
        e.put_u8(TAG_STATE_RESPONSE);
        e.put_u64(64);
        e.put_u64(0);
        e.put_digest(&chain);
        e.put_u32(1); // page_size
        e.put_u64(u64::MAX); // total_len
        e.put_u32(u32::MAX); // absurd page count
        let err = decode_msg(&e.finish()).unwrap_err();
        assert!(err.to_string().contains("too many pages"), "{err}");
        // Page count inconsistent with the claimed length.
        let mut e = Encoder::new();
        e.put_u8(TAG_STATE_RESPONSE);
        e.put_u64(64);
        e.put_u64(0);
        e.put_digest(&chain);
        e.put_u32(4); // page_size
        e.put_u64(100); // total_len => 25 pages
        e.put_u32(2); // but only 2 claimed
        e.put_digest(&chain);
        e.put_digest(&chain);
        let err = decode_msg(&e.finish()).unwrap_err();
        assert!(err.to_string().contains("mismatch"), "{err}");
    }

    #[test]
    fn oversized_page_response_count_rejected() {
        let mut e = Encoder::new();
        e.put_u8(TAG_PAGE_RESPONSE);
        e.put_u64(64); // seq
        e.put_u32(0); // first
        e.put_u32((MAX_WIRE_PAGE_RESPONSE + 1) as u32);
        let err = decode_msg(&e.finish()).unwrap_err();
        assert!(err.to_string().contains("too many response pages"), "{err}");
    }

    #[test]
    fn truncated_page_frames_rejected() {
        // Every proper prefix of both new frames must fail to decode.
        let fp = encode_msg(&Msg::FetchPages(FetchPagesMsg {
            seq: Seq(64),
            first: 1,
            count: 2,
            replica: ReplicaId(3),
        }));
        for cut in 0..fp.len() {
            assert!(decode_msg(&fp[..cut]).is_err(), "fetch-pages cut={cut}");
        }
        let pr = encode_msg(&Msg::PageResponse(PageResponseMsg {
            seq: Seq(64),
            first: 1,
            pages: vec![Bytes::from_static(b"abcd"), Bytes::from_static(b"efgh")],
            replica: ReplicaId(3),
        }));
        for cut in 0..pr.len() {
            assert!(decode_msg(&pr[..cut]).is_err(), "page-response cut={cut}");
        }
        // And every prefix of a manifest-bearing state response.
        let sr = encode_msg(&Msg::StateResponse(StateResponseMsg {
            seq: Seq(64),
            view: View(0),
            exec_chain: sample_request(1).digest(),
            manifest: PageManifest::compute(&[7u8; 33], 8),
            executed: [RequestId::new(1, 1)].into_iter().collect(),
            suffix: vec![],
            replica: ReplicaId(2),
        }));
        for cut in 0..sr.len() {
            assert!(decode_msg(&sr[..cut]).is_err(), "state-response cut={cut}");
        }
    }

    #[test]
    fn rejects_malformed() {
        assert!(decode_msg(&[]).is_err());
        assert!(decode_msg(&[99]).is_err(), "unknown tag");
        assert!(decode_msg(&[TAG_PREPARE, 0, 1]).is_err(), "truncated");
        // Trailing bytes rejected.
        let mut bytes = encode_msg(&Msg::Forward(sample_request(1))).to_vec();
        bytes.push(0);
        assert!(decode_msg(&bytes).is_err());
    }

    #[test]
    fn oversized_batch_count_rejected() {
        let mut e = Encoder::new();
        e.put_u8(TAG_PRE_PREPARE);
        e.put_u64(0); // view
        e.put_u64(1); // seq
        e.put_digest(&Batch::null().digest());
        e.put_u32((MAX_WIRE_BATCH + 1) as u32); // absurd request count
        let bytes = e.finish();
        let err = decode_msg(&bytes).unwrap_err();
        assert!(err.to_string().contains("batch too large"));
    }

    #[test]
    fn truncated_batch_rejected() {
        let batch = Batch::new(vec![sample_request(1), sample_request(2)]);
        let full = encode_msg(&Msg::PrePrepare(PrePrepareMsg {
            view: View(0),
            seq: Seq(1),
            digest: batch.digest(),
            batch,
        }));
        // Every proper prefix must fail to decode (the count promises more
        // requests than the frame carries).
        for cut in 1..full.len() {
            assert!(decode_msg(&full[..cut]).is_err(), "prefix len {cut}");
        }
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut e = Encoder::new();
        e.put_u8(TAG_FORWARD);
        e.put_u64(1);
        e.put_u64(2);
        e.put_u32(u32::MAX); // absurd length prefix
        let mut bytes = e.finish().to_vec();
        bytes.extend_from_slice(&[0; 16]);
        assert!(decode_msg(&bytes).is_err());
    }

    #[test]
    fn junk_request_flags_rejected() {
        let mut e = Encoder::new();
        e.put_u8(TAG_FORWARD);
        e.put_u64(1);
        e.put_u64(2);
        e.put_u8(4); // flags must fit the two defined bits
        e.put_bytes(b"x");
        let err = decode_msg(&e.finish()).unwrap_err();
        assert!(err.to_string().contains("request flags"), "{err}");
    }

    #[test]
    fn config_flag_roundtrips_and_plain_frames_stay_byte_identical() {
        roundtrip(Msg::Forward(Request::config_record(
            RequestId::new(5, 11),
            Bytes::from_static(b"cfg"),
        )));
        // The flag byte is a bitfield over the byte read-only used alone,
        // so frames without config records are unchanged on the wire.
        let plain = Msg::Forward(sample_request(1));
        let mut e = Encoder::new();
        e.put_u8(TAG_FORWARD);
        e.put_u64(3);
        e.put_u64(1);
        e.put_u8(0);
        e.put_bytes(&[1u8; 5]);
        assert_eq!(encode_msg(&plain), e.finish());
    }

    #[test]
    fn wire_error_displays() {
        let err = decode_msg(&[]).unwrap_err();
        assert!(err.to_string().contains("malformed"));
    }

    proptest! {
        #[test]
        fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_msg(&data);
        }

        #[test]
        fn forward_roundtrip(origin in any::<u64>(), counter in any::<u64>(),
                             payload in proptest::collection::vec(any::<u8>(), 0..128)) {
            let m = Msg::Forward(Request::new(RequestId::new(origin, counter), Bytes::from(payload)));
            let back = decode_msg(&encode_msg(&m)).unwrap();
            prop_assert_eq!(m, back);
        }

        #[test]
        fn fetch_pages_roundtrip(seq in any::<u64>(), first in any::<u32>(),
                                 count in any::<u32>(), replica in any::<u32>()) {
            let m = Msg::FetchPages(FetchPagesMsg {
                seq: Seq(seq), first, count, replica: ReplicaId(replica),
            });
            prop_assert_eq!(decode_msg(&encode_msg(&m)).unwrap(), m);
        }

        #[test]
        fn page_response_roundtrip(seq in any::<u64>(), first in any::<u32>(),
                                   pages in proptest::collection::vec(
                                       proptest::collection::vec(any::<u8>(), 0..64), 0..8)) {
            let m = Msg::PageResponse(PageResponseMsg {
                seq: Seq(seq),
                first,
                pages: pages.into_iter().map(Bytes::from).collect(),
                replica: ReplicaId(1),
            });
            prop_assert_eq!(decode_msg(&encode_msg(&m)).unwrap(), m);
        }

        #[test]
        fn state_response_manifest_roundtrip(
            snapshot in proptest::collection::vec(any::<u8>(), 0..256),
            ps in 1u32..32) {
            let m = Msg::StateResponse(StateResponseMsg {
                seq: Seq(64),
                view: View(1),
                exec_chain: Digest32::ZERO,
                manifest: PageManifest::compute(&snapshot, ps),
                executed: [RequestId::new(2, 1)].into_iter().collect(),
                suffix: vec![],
                replica: ReplicaId(0),
            });
            prop_assert_eq!(decode_msg(&encode_msg(&m)).unwrap(), m);
        }
    }
}
