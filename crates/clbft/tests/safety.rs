//! Property-based safety tests for CLBFT.
//!
//! The central invariant: no two correct replicas execute different requests
//! at the same sequence number, no matter how the network reorders,
//! duplicates, or delays messages, and regardless of which ≤ f replicas are
//! silenced.

use bytes::Bytes;
use proptest::prelude::*;
use pws_clbft::{Action, Config, Msg, Replica, ReplicaId, Request, RequestId, Seq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Harness {
    replicas: Vec<Replica>,
    /// Pending messages: (to, from, msg).
    pending: Vec<(usize, ReplicaId, Msg)>,
    executed: Vec<Vec<(Seq, RequestId)>>,
    silenced: Vec<usize>,
}

impl Harness {
    fn new(n: u32, silenced: Vec<usize>) -> Self {
        let cfg = Config::new(n);
        Harness {
            replicas: (0..n)
                .map(|i| Replica::new(ReplicaId(i), cfg.clone()))
                .collect(),
            pending: Vec::new(),
            executed: vec![Vec::new(); n as usize],
            silenced,
        }
    }

    fn apply(&mut self, at: usize, actions: Vec<Action>) {
        let me = self.replicas[at].id();
        for a in actions {
            match a {
                Action::Broadcast(m) => {
                    for i in 0..self.replicas.len() {
                        if i != at {
                            self.pending.push((i, me, m.clone()));
                        }
                    }
                }
                Action::Send(dest, m) => self.pending.push((dest.0 as usize, me, m)),
                Action::Execute { seq, request } => self.executed[at].push((seq, request.id)),
                _ => {}
            }
        }
    }

    fn submit(&mut self, at: usize, req: Request) {
        let actions = self.replicas[at].on_request(req);
        self.apply(at, actions);
    }

    /// Delivers messages in a random order, sometimes duplicating them,
    /// until none remain (messages to silenced replicas are dropped).
    fn run_randomized(&mut self, rng: &mut StdRng) {
        let mut steps = 0usize;
        while !self.pending.is_empty() {
            steps += 1;
            assert!(steps < 2_000_000, "livelock in randomized run");
            let idx = rng.gen_range(0..self.pending.len());
            let (to, from, msg) = self.pending.swap_remove(idx);
            if self.silenced.contains(&to) {
                continue;
            }
            // 5% duplication.
            if rng.gen_bool(0.05) {
                self.pending.push((to, from, msg.clone()));
            }
            let actions = self.replicas[to].on_message(from, msg);
            self.apply(to, actions);
        }
    }
}

fn check_agreement(h: &Harness) {
    // Safety: for each sequence number, all correct replicas that executed
    // it executed the same request.
    use std::collections::HashMap;
    let mut by_seq: HashMap<Seq, RequestId> = HashMap::new();
    for (i, log) in h.executed.iter().enumerate() {
        if h.silenced.contains(&i) {
            continue;
        }
        // Each replica's own order is gap-free and increasing.
        for (k, (seq, _)) in log.iter().enumerate() {
            assert_eq!(seq.0, (k + 1) as u64, "replica {i} has order gaps");
        }
        for (seq, id) in log {
            match by_seq.get(seq) {
                Some(existing) => assert_eq!(existing, id, "divergence at {seq:?}"),
                None => {
                    by_seq.insert(*seq, *id);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_schedules_preserve_safety(seed in any::<u64>(), req_count in 1usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = Harness::new(4, vec![]);
        for c in 0..req_count {
            let submit_at = rng.gen_range(0..4);
            h.submit(submit_at, Request::new(
                RequestId::new(7, c as u64),
                Bytes::from(format!("op{c}")),
            ));
            if rng.gen_bool(0.5) {
                h.run_randomized(&mut rng);
            }
        }
        h.run_randomized(&mut rng);
        check_agreement(&h);
        // Liveness in the fault-free case: everyone executed everything.
        for log in &h.executed {
            prop_assert_eq!(log.len(), req_count);
        }
    }

    #[test]
    fn random_schedules_with_f_silent_replicas(seed in any::<u64>(), req_count in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Silence one non-primary replica (f = 1 for n = 4).
        let silenced = 1 + rng.gen_range(0..3usize);
        let mut h = Harness::new(4, vec![silenced]);
        for c in 0..req_count {
            let mut at = rng.gen_range(0..4usize);
            if at == silenced { at = 0; }
            h.submit(at, Request::new(
                RequestId::new(9, c as u64),
                Bytes::from(format!("op{c}")),
            ));
        }
        h.run_randomized(&mut rng);
        check_agreement(&h);
        for (i, log) in h.executed.iter().enumerate() {
            if i != silenced {
                prop_assert_eq!(log.len(), req_count, "replica {} stalled", i);
            }
        }
    }

    #[test]
    fn larger_groups_agree(seed in any::<u64>(), n in prop::sample::select(vec![7u32, 10])) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = Harness::new(n, vec![]);
        for c in 0..5u64 {
            h.submit((c % n as u64) as usize, Request::new(
                RequestId::new(1, c),
                Bytes::from(format!("op{c}")),
            ));
        }
        h.run_randomized(&mut rng);
        check_agreement(&h);
        for log in &h.executed {
            prop_assert_eq!(log.len(), 5);
        }
    }
}

#[test]
fn execution_chains_match_across_replicas() {
    let mut h = Harness::new(4, vec![]);
    let mut rng = StdRng::seed_from_u64(42);
    for c in 0..70u64 {
        h.submit(
            (c % 4) as usize,
            Request::new(RequestId::new(3, c), Bytes::from(vec![c as u8])),
        );
    }
    h.run_randomized(&mut rng);
    check_agreement(&h);
    let chains: std::collections::HashSet<_> =
        h.replicas.iter().map(|r| r.execution_chain()).collect();
    assert_eq!(chains.len(), 1);
    // 70 requests crossed the checkpoint interval (64): logs must be GCed
    // and all replicas stable at 64.
    for r in &h.replicas {
        assert_eq!(r.stable_seq(), Seq(64));
    }
}
