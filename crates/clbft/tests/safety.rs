//! Property-based safety tests for CLBFT.
//!
//! The central invariant: no two correct replicas execute different requests
//! at the same sequence number, no matter how the network reorders,
//! duplicates, or delays messages, and regardless of which ≤ f replicas are
//! silenced.

use bytes::Bytes;
use proptest::prelude::*;
use pws_clbft::{Action, Config, Msg, Replica, ReplicaId, Request, RequestId, Seq};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

struct Harness {
    replicas: Vec<Replica>,
    /// Pending messages: (to, from, msg).
    pending: Vec<(usize, ReplicaId, Msg)>,
    executed: Vec<Vec<(Seq, RequestId)>>,
    silenced: Vec<usize>,
}

impl Harness {
    fn new(n: u32, silenced: Vec<usize>) -> Self {
        Harness::with_config(Config::new(n), silenced)
    }

    /// A group with batching disabled (one request per slot).
    fn new_unbatched(n: u32, silenced: Vec<usize>) -> Self {
        let mut cfg = Config::new(n);
        cfg.max_batch_size = 1;
        Harness::with_config(cfg, silenced)
    }

    fn with_config(cfg: Config, silenced: Vec<usize>) -> Self {
        let n = cfg.n;
        Harness {
            replicas: (0..n)
                .map(|i| Replica::new(ReplicaId(i), cfg.clone()))
                .collect(),
            pending: Vec::new(),
            executed: vec![Vec::new(); n as usize],
            silenced,
        }
    }

    fn apply(&mut self, at: usize, actions: Vec<Action>) {
        let me = self.replicas[at].id();
        for a in actions {
            match a {
                Action::Broadcast(m) => {
                    for i in 0..self.replicas.len() {
                        if i != at {
                            self.pending.push((i, me, m.clone()));
                        }
                    }
                }
                Action::Send(dest, m) => self.pending.push((dest.0 as usize, me, m)),
                Action::Execute { seq, batch } => {
                    for request in batch {
                        self.executed[at].push((seq, request.id));
                    }
                }
                Action::TakeCheckpoint(seq) => {
                    // Answer with a deterministic application snapshot, as
                    // the real (deterministic) harness would.
                    let actions =
                        self.replicas[at].on_snapshot(seq, Bytes::from(format!("app@{}", seq.0)));
                    self.apply(at, actions);
                }
                _ => {}
            }
        }
    }

    fn submit(&mut self, at: usize, req: Request) {
        let actions = self.replicas[at].on_request(req);
        self.apply(at, actions);
    }

    /// Delivers messages in a random order, sometimes duplicating them,
    /// until none remain (messages to silenced replicas are dropped).
    fn run_randomized(&mut self, rng: &mut StdRng) {
        let mut steps = 0usize;
        while !self.pending.is_empty() {
            steps += 1;
            assert!(steps < 2_000_000, "livelock in randomized run");
            let idx = rng.gen_range(0..self.pending.len());
            let (to, from, msg) = self.pending.swap_remove(idx);
            if self.silenced.contains(&to) {
                continue;
            }
            // 5% duplication.
            if rng.gen_bool(0.05) {
                self.pending.push((to, from, msg.clone()));
            }
            let actions = self.replicas[to].on_message(from, msg);
            self.apply(to, actions);
        }
    }
}

fn check_agreement(h: &Harness) {
    // Safety: for each sequence slot, all correct replicas that executed it
    // executed the same batch — same requests, same internal order. Slots
    // execute in increasing order at every replica (a slot may carry
    // several requests, and null gap-filler slots deliver nothing, so the
    // observed slot numbers are non-decreasing rather than gap-free).
    use std::collections::HashMap;
    let mut by_seq: HashMap<Seq, Vec<RequestId>> = HashMap::new();
    for (i, log) in h.executed.iter().enumerate() {
        if h.silenced.contains(&i) {
            continue;
        }
        let mut per_slot: Vec<(Seq, Vec<RequestId>)> = Vec::new();
        for (seq, id) in log {
            match per_slot.last_mut() {
                Some((s, ids)) if s == seq => ids.push(*id),
                _ => per_slot.push((*seq, vec![*id])),
            }
        }
        for w in per_slot.windows(2) {
            assert!(w[0].0 < w[1].0, "replica {i} executed slots out of order");
        }
        for (seq, ids) in per_slot {
            match by_seq.get(&seq) {
                Some(existing) => {
                    assert_eq!(existing, &ids, "batch divergence at {seq:?} (replica {i})")
                }
                None => {
                    by_seq.insert(seq, ids);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_schedules_preserve_safety(seed in any::<u64>(), req_count in 1usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = Harness::new(4, vec![]);
        for c in 0..req_count {
            let submit_at = rng.gen_range(0..4);
            h.submit(submit_at, Request::new(
                RequestId::new(7, c as u64),
                Bytes::from(format!("op{c}")),
            ));
            if rng.gen_bool(0.5) {
                h.run_randomized(&mut rng);
            }
        }
        h.run_randomized(&mut rng);
        check_agreement(&h);
        // Liveness in the fault-free case: everyone executed everything.
        for log in &h.executed {
            prop_assert_eq!(log.len(), req_count);
        }
    }

    #[test]
    fn random_schedules_with_f_silent_replicas(seed in any::<u64>(), req_count in 1usize..8) {
        let mut rng = StdRng::seed_from_u64(seed);
        // Silence one non-primary replica (f = 1 for n = 4).
        let silenced = 1 + rng.gen_range(0..3usize);
        let mut h = Harness::new(4, vec![silenced]);
        for c in 0..req_count {
            let mut at = rng.gen_range(0..4usize);
            if at == silenced { at = 0; }
            h.submit(at, Request::new(
                RequestId::new(9, c as u64),
                Bytes::from(format!("op{c}")),
            ));
        }
        h.run_randomized(&mut rng);
        check_agreement(&h);
        for (i, log) in h.executed.iter().enumerate() {
            if i != silenced {
                prop_assert_eq!(log.len(), req_count, "replica {} stalled", i);
            }
        }
    }

    #[test]
    fn larger_groups_agree(seed in any::<u64>(), n in prop::sample::select(vec![7u32, 10])) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = Harness::new(n, vec![]);
        for c in 0..5u64 {
            h.submit((c % n as u64) as usize, Request::new(
                RequestId::new(1, c),
                Bytes::from(format!("op{c}")),
            ));
        }
        h.run_randomized(&mut rng);
        check_agreement(&h);
        for log in &h.executed {
            prop_assert_eq!(log.len(), 5);
        }
    }
}

/// Builds a 4-replica group where the primary accumulates (pipeline depth
/// 0: nothing proposes until the batch timer fires), seals one batch of
/// `k` requests, and returns the group plus the sealed pre-prepare.
fn group_with_sealed_batch(k: u64) -> (Vec<Replica>, pws_clbft::PrePrepareMsg) {
    let mut cfg = Config::new(4);
    cfg.pipeline_depth = 0;
    let mut rs: Vec<Replica> = (0..4)
        .map(|i| Replica::new(ReplicaId(i), cfg.clone()))
        .collect();
    for c in 0..k {
        let actions = rs[0].on_request(Request::new(
            RequestId::new(7, c),
            Bytes::from(format!("op{c}")),
        ));
        assert!(
            !actions
                .iter()
                .any(|a| matches!(a, Action::Broadcast(Msg::PrePrepare(_)))),
            "pipeline depth 0 must hold proposals for the batch timer"
        );
    }
    let actions = rs[0].on_batch_timer();
    let pp = actions
        .iter()
        .find_map(|a| match a {
            Action::Broadcast(Msg::PrePrepare(pp)) => Some(pp.clone()),
            _ => None,
        })
        .expect("batch timer seals the accumulated batch");
    assert_eq!(pp.batch.len(), k as usize, "one batch carries all requests");
    (rs, pp)
}

#[test]
fn config_records_seal_their_own_slot() {
    // Accumulate plain, config, plain around a held pipeline; the batch
    // timer must seal three slots: [r0 r1], [config], [r3 r4] — the config
    // record never shares a batch in either direction.
    let mut cfg = Config::new(4);
    cfg.pipeline_depth = 0;
    let mut r0 = Replica::new(ReplicaId(0), cfg);
    for c in 0..5u64 {
        let req = if c == 2 {
            Request::config_record(RequestId::new(7, c), Bytes::from_static(b"cfg"))
        } else {
            Request::new(RequestId::new(7, c), Bytes::from(format!("op{c}")))
        };
        r0.on_request(req);
    }
    let pps: Vec<pws_clbft::PrePrepareMsg> = r0
        .on_batch_timer()
        .into_iter()
        .filter_map(|a| match a {
            Action::Broadcast(Msg::PrePrepare(pp)) => Some(pp),
            _ => None,
        })
        .collect();
    let shape: Vec<usize> = pps.iter().map(|pp| pp.batch.len()).collect();
    assert_eq!(shape, vec![2, 1, 2], "config slot stands alone");
    assert!(pps[1].batch.requests[0].config);
    assert!(pps[0].batch.requests.iter().all(|r| !r.config));
    assert!(pps[2].batch.requests.iter().all(|r| !r.config));
}

/// Runs a view change to view 1 by firing timers at replicas 1..3 and
/// letting them exchange messages (replica 0, the old primary, stays
/// silent). Returns the NewView the new primary broadcast.
fn view_change_to_v1(rs: &mut [Replica]) -> pws_clbft::NewViewMsg {
    let mut inbox: Vec<(usize, ReplicaId, Msg)> = Vec::new();
    let mut nv = None;
    for (i, r) in rs.iter_mut().enumerate().take(4).skip(1) {
        let actions = r.on_view_timer();
        let me = r.id();
        for a in actions {
            if let Action::Broadcast(m) = a {
                for to in 1..4 {
                    if to != i {
                        inbox.push((to, me, m.clone()));
                    }
                }
            }
        }
    }
    while let Some((to, from, msg)) = inbox.pop() {
        let me = rs[to].id();
        for a in rs[to].on_message(from, msg) {
            if let Action::Broadcast(m) = a {
                if let Msg::NewView(n) = &m {
                    nv = Some(n.clone());
                }
                for peer in 1..4 {
                    if peer != to {
                        inbox.push((peer, me, m.clone()));
                    }
                }
            }
        }
    }
    nv.expect("quorum of view changes installs view 1")
}

#[test]
fn mid_view_change_prepared_batch_is_reproposed_whole_in_order() {
    let (mut rs, pp) = group_with_sealed_batch(3);
    // Backups 1 and 2 accept the pre-prepare and see each other's
    // prepares, so the batch is *prepared* at both when the view changes.
    let mut prepares = Vec::new();
    for i in [1usize, 2] {
        for a in rs[i].on_message(ReplicaId(0), Msg::PrePrepare(pp.clone())) {
            if let Action::Broadcast(m @ Msg::Prepare(_)) = a {
                prepares.push((i, m));
            }
        }
    }
    for (from, m) in prepares {
        for i in [1usize, 2] {
            if i != from {
                let _ = rs[i].on_message(ReplicaId(from as u32), m.clone());
            }
        }
    }
    let nv = view_change_to_v1(&mut rs);
    // The new primary must re-propose the batch whole: same slot, same
    // digest, same requests in the same internal order.
    let reproposed = nv
        .pre_prepares
        .iter()
        .find(|p| p.seq == pp.seq)
        .expect("prepared slot re-proposed in the new view");
    assert_eq!(reproposed.digest, pp.digest, "batch digest preserved");
    assert_eq!(
        reproposed.batch, pp.batch,
        "batch re-proposed intact, in the same internal order"
    );
}

#[test]
fn mid_view_change_unprepared_batch_is_dropped_whole_then_rebatched() {
    let (mut rs, pp) = group_with_sealed_batch(3);
    // Only backup 1 ever sees the pre-prepare and no prepares reach
    // anyone: the batch is not prepared at any correct replica.
    let _ = rs[1].on_message(ReplicaId(0), Msg::PrePrepare(pp.clone()));
    let nv = view_change_to_v1(&mut rs);
    // No slot carries any *subset* of the batch: it is dropped whole.
    assert!(
        nv.pre_prepares.iter().all(|p| p
            .batch
            .requests
            .iter()
            .all(|r| { !pp.batch.requests.iter().any(|orig| orig.id == r.id) })),
        "no partial re-proposal of the dropped batch: {:?}",
        nv.pre_prepares
    );
    // The requests themselves survive: replica 1 knew them from the
    // pre-prepare, demoted them to pending on view entry, and the new
    // primary (replica 1) re-proposes them as a fresh batch.
    let known: usize = rs[1].outstanding();
    assert_eq!(known, 3, "requests still outstanding at the new primary");
    assert_eq!(rs[1].view(), pws_clbft::View(1));
    assert!(rs[1].is_primary());
    // Sealing the accumulator (pipeline depth is 0 in this group, so the
    // timer does it) re-proposes all three in one fresh batch.
    let actions = rs[1].on_batch_timer();
    let fresh = actions
        .iter()
        .find_map(|a| match a {
            Action::Broadcast(Msg::PrePrepare(p)) => Some(p.clone()),
            _ => None,
        })
        .expect("new primary re-batches the surviving requests");
    assert_eq!(fresh.batch.len(), 3);
    let mut ids: Vec<_> = fresh.batch.requests.iter().map(|r| r.id).collect();
    ids.sort();
    let mut orig: Vec<_> = pp.batch.requests.iter().map(|r| r.id).collect();
    orig.sort();
    assert_eq!(ids, orig, "same request set rides the new batch");
}

#[test]
fn execution_chains_match_across_replicas() {
    // One request per slot (batching off) so 70 requests cross the
    // 64-execution checkpoint interval.
    let mut h = Harness::new_unbatched(4, vec![]);
    let mut rng = StdRng::seed_from_u64(42);
    for c in 0..70u64 {
        h.submit(
            (c % 4) as usize,
            Request::new(RequestId::new(3, c), Bytes::from(vec![c as u8])),
        );
    }
    h.run_randomized(&mut rng);
    check_agreement(&h);
    let chains: std::collections::HashSet<_> =
        h.replicas.iter().map(|r| r.execution_chain()).collect();
    assert_eq!(chains.len(), 1);
    // 70 requests crossed the checkpoint interval (64): logs must be GCed
    // and all replicas stable at 64.
    for r in &h.replicas {
        assert_eq!(r.stable_seq(), Seq(64));
    }
}
