//! Property suite for the CLBFT wire codec: `decode(encode(m)) == m` for
//! every message variant, and malformed frames (truncated, trailing junk,
//! corrupted) are rejected or re-decoded differently — never a panic.

use bytes::Bytes;
use proptest::prelude::*;
use pws_clbft::wire::{decode_msg, encode_msg};
use pws_clbft::{
    Batch, CheckpointMsg, CommitMsg, FetchPagesMsg, FetchStateMsg, Msg, NewViewMsg, PageManifest,
    PageResponseMsg, PrePrepareMsg, PrepareMsg, PreparedClaim, ReplicaId, Request, RequestId, Seq,
    StateResponseMsg, SuffixSlot, View,
};
use pws_crypto::Digest32;
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

fn arb_digest(rng: &mut StdRng) -> Digest32 {
    let mut d = [0u8; 32];
    rng.fill_bytes(&mut d);
    Digest32(d)
}

fn arb_request(rng: &mut StdRng) -> Request {
    let len = rng.gen_range(0usize..96);
    let mut payload = vec![0u8; len];
    rng.fill_bytes(&mut payload);
    Request::new(
        RequestId::new(rng.next_u64(), rng.next_u64()),
        Bytes::from(payload),
    )
}

/// An arbitrary batch: sometimes null (gap filler), sometimes several
/// requests, exercising the count-prefixed wire form.
fn arb_batch(rng: &mut StdRng) -> Batch {
    if rng.gen_bool(0.15) {
        Batch::null()
    } else {
        let n = rng.gen_range(1usize..6);
        Batch::new((0..n).map(|_| arb_request(rng)).collect())
    }
}

fn arb_pre_prepare(rng: &mut StdRng) -> PrePrepareMsg {
    let batch = arb_batch(rng);
    PrePrepareMsg {
        view: View(rng.next_u64()),
        seq: Seq(rng.next_u64()),
        digest: batch.digest(),
        batch,
    }
}

/// An arbitrary page table over random snapshot bytes at a random page
/// size, exercising 0..N pages and a ragged tail.
fn arb_manifest(rng: &mut StdRng) -> PageManifest {
    let snap_len = rng.gen_range(0usize..128);
    let mut snapshot = vec![0u8; snap_len];
    rng.fill_bytes(&mut snapshot);
    let page_size = rng.gen_range(1u32..=64);
    PageManifest::compute(&snapshot, page_size)
}

/// An arbitrary state-transfer response: a page manifest, a sorted executed
/// set, and a (sometimes empty) committed log suffix.
fn arb_state_response(rng: &mut StdRng) -> StateResponseMsg {
    let manifest = arb_manifest(rng);
    let executed = (0..rng.gen_range(0usize..8))
        .map(|_| RequestId::new(rng.next_u64(), rng.next_u64()))
        .collect();
    let base = rng.next_u64() & 0xffff_ffff;
    let suffix = (0..rng.gen_range(0usize..4))
        .map(|i| SuffixSlot {
            seq: Seq(base + 1 + i as u64),
            batch: arb_batch(rng),
        })
        .collect();
    StateResponseMsg {
        seq: Seq(base),
        view: View(rng.next_u64()),
        exec_chain: arb_digest(rng),
        manifest,
        executed,
        suffix,
        replica: ReplicaId(rng.next_u32()),
    }
}

/// An arbitrary page-transfer response: 1..N pages of varied lengths
/// (including empty pages, which the codec must carry faithfully).
fn arb_page_response(rng: &mut StdRng) -> PageResponseMsg {
    let pages = (0..rng.gen_range(1usize..6))
        .map(|_| {
            let len = rng.gen_range(0usize..96);
            let mut page = vec![0u8; len];
            rng.fill_bytes(&mut page);
            Bytes::from(page)
        })
        .collect();
    PageResponseMsg {
        seq: Seq(rng.next_u64()),
        first: rng.next_u32(),
        pages,
        replica: ReplicaId(rng.next_u32()),
    }
}

/// Builds one message of each variant family, chosen and filled from `seed`.
fn arb_msg(seed: u64) -> Msg {
    let mut rng = StdRng::seed_from_u64(seed);
    match rng.gen_range(0u8..11) {
        0 => Msg::Forward(arb_request(&mut rng)),
        1 => Msg::PrePrepare(arb_pre_prepare(&mut rng)),
        2 => Msg::Prepare(PrepareMsg {
            view: View(rng.next_u64()),
            seq: Seq(rng.next_u64()),
            digest: arb_digest(&mut rng),
            replica: ReplicaId(rng.next_u32()),
        }),
        3 => Msg::Commit(CommitMsg {
            view: View(rng.next_u64()),
            seq: Seq(rng.next_u64()),
            digest: arb_digest(&mut rng),
            replica: ReplicaId(rng.next_u32()),
        }),
        4 => Msg::Checkpoint(CheckpointMsg {
            seq: Seq(rng.next_u64()),
            state_digest: arb_digest(&mut rng),
            replica: ReplicaId(rng.next_u32()),
        }),
        5 => {
            let prepared = (0..rng.gen_range(0usize..4))
                .map(|_| PreparedClaim {
                    view: View(rng.next_u64()),
                    seq: Seq(rng.next_u64()),
                    digest: arb_digest(&mut rng),
                    batch: arb_batch(&mut rng),
                })
                .collect();
            Msg::ViewChange(pws_clbft::ViewChangeMsg {
                new_view: View(rng.next_u64()),
                stable_seq: Seq(rng.next_u64()),
                stable_digest: arb_digest(&mut rng),
                prepared,
                replica: ReplicaId(rng.next_u32()),
            })
        }
        6 => {
            let voters = (0..rng.gen_range(0usize..7))
                .map(|_| ReplicaId(rng.next_u32()))
                .collect();
            let pre_prepares = (0..rng.gen_range(0usize..4))
                .map(|_| arb_pre_prepare(&mut rng))
                .collect();
            Msg::NewView(NewViewMsg {
                view: View(rng.next_u64()),
                voters,
                pre_prepares,
                replica: ReplicaId(rng.next_u32()),
            })
        }
        7 => Msg::FetchState(FetchStateMsg {
            have: Seq(rng.next_u64()),
            replica: ReplicaId(rng.next_u32()),
        }),
        8 => Msg::StateResponse(arb_state_response(&mut rng)),
        9 => Msg::FetchPages(FetchPagesMsg {
            seq: Seq(rng.next_u64()),
            first: rng.next_u32(),
            count: rng.gen_range(1u32..=64),
            replica: ReplicaId(rng.next_u32()),
        }),
        _ => Msg::PageResponse(arb_page_response(&mut rng)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn encode_decode_is_identity(seed in any::<u64>()) {
        let msg = arb_msg(seed);
        let encoded = encode_msg(&msg);
        let back = decode_msg(&encoded);
        prop_assert!(back.is_ok(), "decode failed for {msg:?}: {back:?}");
        prop_assert_eq!(msg, back.unwrap());
    }

    #[test]
    fn truncated_frames_are_rejected(seed in any::<u64>(), cut in 1usize..64) {
        let encoded = encode_msg(&arb_msg(seed));
        let cut = cut.min(encoded.len());
        let truncated = &encoded[..encoded.len() - cut];
        prop_assert!(
            decode_msg(truncated).is_err(),
            "a frame short {cut} bytes must not decode"
        );
    }

    #[test]
    fn trailing_bytes_are_rejected(seed in any::<u64>(), junk in 1u8..=255) {
        let mut bytes = encode_msg(&arb_msg(seed)).to_vec();
        bytes.push(junk);
        prop_assert!(
            decode_msg(&bytes).is_err(),
            "a frame with trailing bytes must not decode"
        );
    }

    #[test]
    fn corrupted_frames_never_panic_or_alias(
        seed in any::<u64>(),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let msg = arb_msg(seed);
        let mut bytes = encode_msg(&msg).to_vec();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        // Any outcome is fine except panicking or silently decoding back to
        // the original message: the flipped byte changed the frame, so an
        // Ok result must describe a different message.
        if let Ok(decoded) = decode_msg(&bytes) {
            prop_assert_ne!(
                decoded, msg,
                "byte {} flipped by {:#04x} decoded back to the original", pos, flip
            );
        }
    }

    #[test]
    fn arbitrary_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_msg(&data);
    }

    /// Every proper prefix of a state-transfer response must fail to
    /// decode: the nested counts (executed ids, suffix slots, batches)
    /// promise more content than a truncated frame carries — mirroring the
    /// batched pre-prepare every-prefix suite.
    #[test]
    fn every_state_response_prefix_is_rejected(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let full = encode_msg(&Msg::StateResponse(arb_state_response(&mut rng)));
        for cut in 0..full.len() {
            prop_assert!(
                decode_msg(&full[..cut]).is_err(),
                "prefix of len {} decoded", cut
            );
        }
    }

    /// A corrupted state-transfer frame must never decode back to the
    /// original message (and never panic).
    #[test]
    fn corrupted_state_response_never_aliases(
        seed in any::<u64>(),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let msg = Msg::StateResponse(arb_state_response(&mut rng));
        let mut bytes = encode_msg(&msg).to_vec();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        if let Ok(decoded) = decode_msg(&bytes) {
            prop_assert_ne!(decoded, msg);
        }
    }

    /// Every proper prefix of a page-transfer response must fail to decode:
    /// the per-page length prefixes promise more content than a truncated
    /// frame carries.
    #[test]
    fn every_page_response_prefix_is_rejected(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let full = encode_msg(&Msg::PageResponse(arb_page_response(&mut rng)));
        for cut in 0..full.len() {
            prop_assert!(
                decode_msg(&full[..cut]).is_err(),
                "prefix of len {} decoded", cut
            );
        }
    }

    /// A corrupted page-transfer frame must never decode back to the
    /// original message (and never panic) — a flipped page byte, length, or
    /// range field always surfaces as a difference the fetcher's Merkle
    /// verification or range checks can see.
    #[test]
    fn corrupted_page_response_never_aliases(
        seed in any::<u64>(),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let msg = Msg::PageResponse(arb_page_response(&mut rng));
        let mut bytes = encode_msg(&msg).to_vec();
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        if let Ok(decoded) = decode_msg(&bytes) {
            prop_assert_ne!(decoded, msg);
        }
    }

    /// `FetchPages` is fixed-size: round-trips exactly, and every proper
    /// prefix is rejected.
    #[test]
    fn fetch_pages_roundtrip_and_prefixes(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let msg = Msg::FetchPages(FetchPagesMsg {
            seq: Seq(rng.next_u64()),
            first: rng.next_u32(),
            count: rng.gen_range(1u32..=64),
            replica: ReplicaId(rng.next_u32()),
        });
        let full = encode_msg(&msg);
        prop_assert_eq!(decode_msg(&full).unwrap(), msg);
        for cut in 0..full.len() {
            prop_assert!(decode_msg(&full[..cut]).is_err());
        }
    }
}
