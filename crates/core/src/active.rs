//! Active services: the paper's long-running single thread of computation
//! (§4.1), hosted one-per-replica in lock-step with the simulation.

use crate::api::{FromApp, ServiceApi, ToApp, WsCmd, WsEvent};
use crate::runtime::UriMap;
use crate::wscost::WsCostModel;
use crossbeam::channel::{unbounded, Receiver, Sender};
use pws_perpetual::{AppEvent, AppOutput, Executor};
use pws_simnet::SimDuration;
use std::collections::HashMap;
use std::sync::Arc;
use std::thread::JoinHandle;

/// A deterministic, single-threaded Web Service application with a
/// long-running thread of computation.
///
/// `run` is invoked once per replica on a dedicated thread; it may block in
/// the [`crate::MessageHandler`] receive methods. It must be a
/// deterministic function of the event sequence (no wall clocks, no OS
/// randomness — use [`crate::Utils`]). Return promptly once a `receive_*`
/// call yields `None` (shutdown).
pub trait ActiveService: Send + 'static {
    /// The service body.
    fn run(self: Box<Self>, api: &mut ServiceApi);
}

impl<F> ActiveService for F
where
    F: FnOnce(&mut ServiceApi) + Send + 'static,
{
    fn run(self: Box<Self>, api: &mut ServiceApi) {
        (*self)(api)
    }
}

/// The simulation-side executor hosting an [`ActiveService`] thread.
pub struct ActiveExecutor {
    service: Option<Box<dyn ActiveService>>,
    service_name: String,
    uris: Arc<UriMap>,
    ws_cost: WsCostModel,
    to_app: Option<Sender<ToApp>>,
    from_app: Option<Receiver<FromApp>>,
    thread: Option<JoinHandle<()>>,
    /// Call id → request `wsa:MessageID`, for abort correlation.
    call_msg: HashMap<u64, String>,
    /// Events sent to the app whose matching Yield is still outstanding.
    pending_yields: usize,
    finished: bool,
}

impl std::fmt::Debug for ActiveExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveExecutor")
            .field("service", &self.service_name)
            .field("finished", &self.finished)
            .finish_non_exhaustive()
    }
}

impl ActiveExecutor {
    /// Wraps `service` for the replica of service `name`.
    pub fn new(
        service: Box<dyn ActiveService>,
        name: impl Into<String>,
        uris: Arc<UriMap>,
        ws_cost: WsCostModel,
    ) -> Self {
        ActiveExecutor {
            service: Some(service),
            service_name: name.into(),
            uris,
            ws_cost,
            to_app: None,
            from_app: None,
            thread: None,
            call_msg: HashMap::new(),
            pending_yields: 0,
            finished: false,
        }
    }

    fn send_event(&mut self, ev: WsEvent) {
        if self.finished {
            return;
        }
        if let Some(tx) = &self.to_app {
            if tx.send(ToApp::Event(ev)).is_ok() {
                self.pending_yields += 1;
            } else {
                self.finished = true;
            }
        }
    }

    /// Runs the application thread until every delivered event has been
    /// answered with a Yield (the app is blocked again).
    fn pump(&mut self, out: &mut AppOutput) {
        while self.pending_yields > 0 && !self.finished {
            let msg = match &self.from_app {
                Some(rx) => rx.recv(),
                None => return,
            };
            match msg {
                Ok(FromApp::Cmd(cmd)) => self.apply(cmd, out),
                Ok(FromApp::Yield) => self.pending_yields -= 1,
                Ok(FromApp::Finished) | Err(_) => {
                    self.finished = true;
                    self.pending_yields = 0;
                }
            }
        }
    }

    fn apply(&mut self, cmd: WsCmd, out: &mut AppOutput) {
        match cmd {
            WsCmd::Send {
                msg_id,
                to,
                bytes,
                timeout_ms,
            } => {
                out.spend(self.ws_cost.marshal_cost(bytes.len()));
                match self.uris.group(&to) {
                    Some(target) => {
                        let call =
                            out.call(target, bytes, timeout_ms.map(SimDuration::from_millis));
                        self.call_msg.insert(call.0, msg_id);
                    }
                    None => {
                        // Unknown endpoint: deterministic immediate abort.
                        self.send_event(WsEvent::Aborted { msg_id });
                    }
                }
            }
            WsCmd::Reply { handle, bytes } => {
                out.spend(self.ws_cost.marshal_cost(bytes.len()));
                out.reply(handle, bytes);
            }
            WsCmd::QueryTime => {
                out.query_time();
            }
            WsCmd::Spend(d) => out.spend(d),
        }
    }
}

impl Executor for ActiveExecutor {
    fn on_event(&mut self, ev: AppEvent, out: &mut AppOutput) {
        match ev {
            AppEvent::Init { seed } => {
                let (to_tx, to_rx) = unbounded();
                let (from_tx, from_rx) = unbounded();
                let service = self.service.take().expect("init delivered once");
                let prefix = self.service_name.clone();
                let _ = to_tx.send(ToApp::Event(WsEvent::Init { seed }));
                self.pending_yields += 1;
                self.to_app = Some(to_tx);
                self.from_app = Some(from_rx);
                self.thread = Some(std::thread::spawn(move || {
                    let mut api = ServiceApi::new(to_rx, from_tx, &prefix);
                    service.run(&mut api);
                    api.finish();
                }));
                self.pump(out);
            }
            AppEvent::Request { handle, payload } => {
                out.spend(self.ws_cost.demarshal_cost(payload.len()));
                self.send_event(WsEvent::Request {
                    handle,
                    bytes: payload,
                });
                self.pump(out);
            }
            AppEvent::Reply { call, payload } => {
                out.spend(self.ws_cost.demarshal_cost(payload.len()));
                self.call_msg.remove(&call.0);
                self.send_event(WsEvent::Reply { bytes: payload });
                self.pump(out);
            }
            AppEvent::Aborted { call } => {
                if let Some(msg_id) = self.call_msg.remove(&call.0) {
                    self.send_event(WsEvent::Aborted { msg_id });
                    self.pump(out);
                }
            }
            AppEvent::Time { millis, .. } => {
                self.send_event(WsEvent::Time { millis });
                self.pump(out);
            }
        }
    }
}

impl Drop for ActiveExecutor {
    fn drop(&mut self) {
        if let Some(tx) = self.to_app.take() {
            let _ = tx.send(ToApp::Shutdown);
        }
        // Dropping our end of from_app unblocks nothing on the app side
        // (the app blocks on to_app), so join after Shutdown is safe.
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::MessageHandler;
    use pws_perpetual::GroupId;
    use pws_soap::MessageContext;

    fn uris() -> Arc<UriMap> {
        let mut m = UriMap::default();
        m.insert("bank", GroupId(3));
        Arc::new(m)
    }

    #[test]
    fn init_spawns_and_runs_until_first_block() {
        let svc = |api: &mut ServiceApi| {
            let mut req = MessageContext::request("urn:svc:bank", "check");
            req.options_mut().set_timeout_millis(1000);
            let _ = api.send(req);
            // Block for the reply; shutdown arrives instead.
            let _ = api.receive_reply();
        };
        let mut exec = ActiveExecutor::new(Box::new(svc), "store", uris(), WsCostModel::FREE);
        let mut out = AppOutput::new(0, 0);
        exec.on_event(AppEvent::Init { seed: 5 }, &mut out);
        // The service issued one call before blocking.
        let calls: Vec<_> = out
            .cmds()
            .iter()
            .filter(|c| matches!(c, pws_perpetual::AppCmd::Call { .. }))
            .collect();
        assert_eq!(calls.len(), 1);
        if let pws_perpetual::AppCmd::Call {
            target, timeout, ..
        } = calls[0]
        {
            assert_eq!(*target, GroupId(3));
            assert_eq!(*timeout, Some(SimDuration::from_millis(1000)));
        }
        drop(exec); // clean shutdown must not hang
    }

    #[test]
    fn unknown_endpoint_aborts_immediately() {
        let svc = |api: &mut ServiceApi| {
            let req = MessageContext::request("urn:svc:nowhere", "op");
            let id = api.send(req);
            let reply = api.receive_reply_for(&id);
            // The abort surfaces as a fault before shutdown.
            if let Some(r) = reply {
                assert!(r.envelope().as_fault().is_some());
            }
        };
        let mut exec = ActiveExecutor::new(Box::new(svc), "store", uris(), WsCostModel::FREE);
        let mut out = AppOutput::new(0, 0);
        exec.on_event(AppEvent::Init { seed: 5 }, &mut out);
        assert!(
            out.cmds()
                .iter()
                .all(|c| !matches!(c, pws_perpetual::AppCmd::Call { .. })),
            "no call issued for unknown endpoint"
        );
        drop(exec);
    }

    #[test]
    fn service_that_returns_is_finished() {
        let svc = |_api: &mut ServiceApi| {
            // Immediately done.
        };
        let mut exec = ActiveExecutor::new(Box::new(svc), "x", uris(), WsCostModel::FREE);
        let mut out = AppOutput::new(0, 0);
        exec.on_event(AppEvent::Init { seed: 1 }, &mut out);
        assert!(exec.finished);
        // Later events are ignored without hanging.
        exec.on_event(
            AppEvent::Time {
                token: 0,
                millis: 1,
            },
            &mut out,
        );
        drop(exec);
    }
}
