//! The Perpetual-WS application API (paper Fig. 3) as a sans-IO,
//! poll-driven state machine.
//!
//! A [`Service`] is *polled* with agreed events and *returns* what it is
//! waiting on; it never blocks. The runtime calls
//! [`Service::on_event`] with one [`WsEvent`] at a time, the service emits
//! commands through the [`ServiceCtx`] (`send`, `reply`, `spend`,
//! `query_time`) and answers with a [`Poll`]: take anything
//! ([`Poll::Next`]), take only events matching a typed [`WaitSet`]
//! ([`Poll::Wait`]) while everything else stays queued in agreed order, or
//! stop ([`Poll::Done`]).
//!
//! Determinism is structural: the whole deployment runs on one thread, and
//! a service's execution is a pure function of the agreed event order plus
//! its own (deterministic) wait-set evolution. Nothing depends on thread
//! scheduling, because there are no threads — which is exactly the property
//! Perpetual needs from executors (§4.1), now by construction rather than
//! by a lock-step channel protocol.
//!
//! ## Multi-outcall support (§5 asynchronous invocation)
//!
//! [`ServiceCtx::send`] is non-blocking and returns a [`CallToken`]. The
//! reply — or, for timed-out and unroutable calls, a synthesized SOAP
//! fault — arrives later as [`WsEvent::Reply`] carrying that token. A
//! service may keep any number of calls in flight and use a `select`-like
//! [`WaitSet`] to resume exactly the continuations it cares about:
//!
//! ```
//! use perpetual_ws::{CallToken, Poll, Service, ServiceCtx, WaitSet, WsEvent};
//!
//! /// Fans out two backend calls per request, replies when both are back.
//! struct FanOut {
//!     inflight: Vec<CallToken>,
//! }
//!
//! impl Service for FanOut {
//!     fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
//!         if let WsEvent::Reply { token, .. } = &ev {
//!             self.inflight.retain(|t| t != token);
//!         }
//!         // ... issue calls with ctx.send(...), collect tokens ...
//!         if self.inflight.is_empty() {
//!             Poll::Next // idle: accept whatever comes
//!         } else {
//!             // select: requests may interleave, but only *our* replies wake us
//!             Poll::Wait(WaitSet::new().requests().replies(self.inflight.iter().copied()))
//!         }
//!     }
//! }
//! ```

use pws_soap::MessageContext;
use std::collections::BTreeSet;
use std::fmt;

/// Identifies one of this service's own outcalls.
///
/// Tokens are assigned densely from a deterministic per-replica counter, so
/// every replica of a group assigns identical tokens to identical calls.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallToken(pub(crate) u64);

impl CallToken {
    /// Creates a token from its raw index.
    ///
    /// Normally tokens are obtained from `ServiceCtx::send`; this
    /// constructor exists for tests and for tables keyed by token that must
    /// be built beforehand. Tokens count up from 0 per replica.
    pub const fn from_raw(raw: u64) -> Self {
        CallToken(raw)
    }

    /// The raw index of this token.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for CallToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "out#{}", self.0)
    }
}

/// Identifies one agreed-time query issued with [`ServiceCtx::query_time`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimeToken(pub(crate) u64);

impl fmt::Debug for TimeToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "time#{}", self.0)
    }
}

/// Agreed events, translated to the Web-Services level.
///
/// Events are delivered in the group-agreed total order, filtered by the
/// service's current wait set (events not admitted stay queued, in order).
#[derive(Debug)]
pub enum WsEvent {
    /// Delivered first; carries the group-agreed random seed (which also
    /// seeds [`ServiceCtx::random_u64`] before this event is delivered).
    Init {
        /// The group-agreed seed.
        seed: u64,
    },
    /// An external SOAP request to serve. Answer it — now or after any
    /// number of intervening events — with [`ServiceCtx::reply`].
    Request {
        /// The decoded request.
        request: MessageContext,
    },
    /// The outcome of one of our own calls: the reply, or a synthesized
    /// SOAP fault if the call was deterministically aborted (§5 timeout
    /// vote) or addressed to an unknown endpoint.
    Reply {
        /// The call this resolves.
        token: CallToken,
        /// The decoded reply; `reply.envelope().as_fault()` is `Some` for
        /// aborts.
        reply: MessageContext,
    },
    /// The agreed answer to a [`ServiceCtx::query_time`] query (§4.2).
    Time {
        /// The query this answers.
        token: TimeToken,
        /// Agreed milliseconds since the epoch.
        millis: u64,
    },
}

/// A typed, `select`-like set of continuations a service is waiting on.
///
/// Build one with the chainable constructors; an empty set admits nothing
/// (the service sleeps until it widens its interest — which it can only do
/// when an admitted event wakes it, so an empty set on a service with no
/// queued interest is effectively permanent).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WaitSet {
    pub(crate) requests: bool,
    pub(crate) any_reply: bool,
    pub(crate) replies: BTreeSet<CallToken>,
    pub(crate) times: bool,
}

impl WaitSet {
    /// An empty wait set.
    pub fn new() -> Self {
        WaitSet::default()
    }

    /// Also wake on the next external request.
    pub fn requests(mut self) -> Self {
        self.requests = true;
        self
    }

    /// Also wake on the reply (or abort fault) for `token`.
    pub fn reply(mut self, token: CallToken) -> Self {
        self.replies.insert(token);
        self
    }

    /// Also wake on the replies for every token in `tokens`.
    pub fn replies(mut self, tokens: impl IntoIterator<Item = CallToken>) -> Self {
        self.replies.extend(tokens);
        self
    }

    /// Also wake on *any* reply.
    pub fn any_reply(mut self) -> Self {
        self.any_reply = true;
        self
    }

    /// Also wake on agreed-time answers.
    pub fn times(mut self) -> Self {
        self.times = true;
        self
    }

    /// Whether `ev` matches this wait set. `Init` is always admitted.
    pub fn admits(&self, ev: &WsEvent) -> bool {
        match ev {
            WsEvent::Init { .. } => true,
            WsEvent::Request { .. } => self.requests,
            WsEvent::Reply { token, .. } => self.any_reply || self.replies.contains(token),
            WsEvent::Time { .. } => self.times,
        }
    }
}

/// What a service declares after handling an event: its continuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Poll {
    /// Deliver the next agreed event, whatever it is.
    Next,
    /// Deliver only events admitted by the wait set; queue the rest in
    /// agreed order until the service widens its interest.
    Wait(WaitSet),
    /// The service is finished; discard queued and future events.
    Done,
}

impl Poll {
    /// Wait for the next external request only (the passive idiom).
    pub fn request() -> Poll {
        Poll::Wait(WaitSet::new().requests())
    }

    /// Wait for the reply to one specific call only (the synchronous
    /// `send_receive` idiom: requests arriving meanwhile stay queued).
    pub fn reply(token: CallToken) -> Poll {
        Poll::Wait(WaitSet::new().reply(token))
    }

    /// Wait for any reply (the windowed-pipeline idiom).
    pub fn any_reply() -> Poll {
        Poll::Wait(WaitSet::new().any_reply())
    }

    /// Wait for an agreed-time answer only.
    pub fn time() -> Poll {
        Poll::Wait(WaitSet::new().times())
    }
}

/// A deterministic, poll-driven Web Service.
///
/// Implementations must be deterministic functions of the delivered event
/// sequence: no wall clocks, no OS randomness, no I/O — use
/// [`ServiceCtx::query_time`] and [`ServiceCtx::random_u64`] instead
/// (§4.2). The `Any` supertrait enables typed access after a run.
pub trait Service: std::any::Any {
    /// Handles one agreed event and declares the continuation.
    fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll;

    /// Captures the service's application state at a sequence boundary, for
    /// checkpointing and state transfer.
    ///
    /// The contract: `snapshot` must be a **deterministic** function of the
    /// delivered event sequence (no iteration over unordered containers,
    /// no addresses, no wall-clock), so every correct replica produces
    /// byte-identical snapshots at the same agreed boundary — the snapshot
    /// bytes feed the checkpoint digest that replicas vote on. `restore`
    /// must rebuild exactly the state `snapshot` captured; a recovered
    /// replica resumes execution from the boundary with this state.
    ///
    /// The default captures nothing, which is correct for stateless
    /// services only. A stateful service that keeps the default can still
    /// be hosted, but a recovered replica of it restarts from the initial
    /// state and will diverge — implement both methods or neither.
    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Replaces the service's state with a previously captured
    /// [`Service::snapshot`]. See there for the contract.
    fn restore(&mut self, _snapshot: &[u8]) {}
}

impl<F> Service for F
where
    F: FnMut(WsEvent, &mut ServiceCtx<'_>) -> Poll + 'static,
{
    fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
        self(ev, ctx)
    }
}

pub(crate) use crate::host::ServiceCtx;

#[cfg(test)]
mod tests {
    use super::*;

    fn req_ev() -> WsEvent {
        WsEvent::Request {
            request: MessageContext::request("urn:svc:x", "op"),
        }
    }

    #[test]
    fn wait_set_admission_rules() {
        let ws = WaitSet::new().requests();
        assert!(ws.admits(&req_ev()));
        assert!(
            ws.admits(&WsEvent::Init { seed: 1 }),
            "Init always admitted"
        );
        assert!(!ws.admits(&WsEvent::Time {
            token: TimeToken(0),
            millis: 5
        }));
        let reply = WsEvent::Reply {
            token: CallToken(3),
            reply: MessageContext::request("urn:x", "r"),
        };
        assert!(!ws.admits(&reply));
        assert!(WaitSet::new().reply(CallToken(3)).admits(&reply));
        assert!(!WaitSet::new().reply(CallToken(4)).admits(&reply));
        assert!(WaitSet::new().any_reply().admits(&reply));
        assert!(WaitSet::new().times().admits(&WsEvent::Time {
            token: TimeToken(9),
            millis: 5
        }));
        assert!(
            !WaitSet::new().admits(&req_ev()),
            "empty set admits nothing"
        );
    }

    #[test]
    fn poll_shorthands() {
        assert_eq!(Poll::request(), Poll::Wait(WaitSet::new().requests()));
        assert_eq!(
            Poll::reply(CallToken(7)),
            Poll::Wait(WaitSet::new().reply(CallToken(7)))
        );
        assert_eq!(Poll::any_reply(), Poll::Wait(WaitSet::new().any_reply()));
        assert_eq!(Poll::time(), Poll::Wait(WaitSet::new().times()));
    }

    #[test]
    fn wait_set_replies_bulk_constructor() {
        let ws = WaitSet::new().replies([CallToken(1), CallToken(2)]);
        for t in [1, 2] {
            assert!(ws.admits(&WsEvent::Reply {
                token: CallToken(t),
                reply: MessageContext::request("urn:x", "r"),
            }));
        }
        assert!(!ws.admits(&WsEvent::Reply {
            token: CallToken(3),
            reply: MessageContext::request("urn:x", "r"),
        }));
    }

    #[test]
    fn tokens_format_compactly() {
        assert_eq!(format!("{:?}", CallToken(4)), "out#4");
        assert_eq!(format!("{:?}", TimeToken(2)), "time#2");
    }
}
