//! The Perpetual-WS application API (paper Fig. 3) and the lock-step
//! channel protocol behind it.
//!
//! User code runs on a dedicated OS thread per replica and talks to the
//! simulation through a strict alternation protocol: the simulation thread
//! delivers one agreed event and waits; the application thread computes,
//! emits commands, and *yields* when it blocks in a `receive_*` call (or
//! finishes). At most one of the two threads is ever runnable, so wall-clock
//! thread scheduling cannot influence the application — execution stays a
//! deterministic function of the agreed event order, which is exactly the
//! property Perpetual needs from executors (§4.1).

use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use pws_perpetual::RequestHandle;
use pws_simnet::SimDuration;
use pws_soap::engine::Engine;
use pws_soap::{Envelope, Fault, MessageContext};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::{HashMap, VecDeque};

/// Simulation → application messages.
#[derive(Debug)]
pub(crate) enum ToApp {
    /// An agreed event.
    Event(WsEvent),
    /// The simulation is tearing down; `receive_*` calls return `None`.
    Shutdown,
}

/// Agreed events, translated to the Web-Services level.
#[derive(Debug)]
pub(crate) enum WsEvent {
    /// Delivered first; carries the group-agreed random seed.
    Init { seed: u64 },
    /// An external SOAP request.
    Request { handle: RequestHandle, bytes: Bytes },
    /// A SOAP reply to one of our requests (correlated by `wsa:RelatesTo`).
    Reply { bytes: Bytes },
    /// One of our requests was deterministically aborted.
    Aborted { msg_id: String },
    /// An agreed time value.
    Time { millis: u64 },
}

/// Application → simulation messages.
#[derive(Debug)]
pub(crate) enum FromApp {
    /// A command to perform.
    Cmd(WsCmd),
    /// The application is blocking; control returns to the simulation.
    Yield,
    /// The application's `run` returned.
    Finished,
}

/// Commands the application can issue.
#[derive(Debug)]
pub(crate) enum WsCmd {
    /// Send a request message.
    Send {
        msg_id: String,
        to: String,
        bytes: Bytes,
        timeout_ms: Option<u64>,
    },
    /// Send a reply to an external request.
    Reply { handle: RequestHandle, bytes: Bytes },
    /// Request an agreed clock value.
    QueryTime,
    /// Burn simulated CPU time.
    Spend(SimDuration),
}

/// The messaging half of the paper's Fig. 3 API.
///
/// Implemented by [`ServiceApi`]; exists as a trait so application code can
/// be written against the same surface the paper presents.
pub trait MessageHandler {
    /// Sends the message without blocking; returns its `wsa:MessageID`.
    fn send(&mut self, request: MessageContext) -> String;

    /// Returns the next reply, blocking if none are available.
    /// `None` means the service is shutting down.
    fn receive_reply(&mut self) -> Option<MessageContext>;

    /// Returns the reply to a specific request (matched on
    /// `wsa:RelatesTo`), blocking if necessary.
    fn receive_reply_for(&mut self, request_msg_id: &str) -> Option<MessageContext>;

    /// Sends the message and waits for its reply (synchronous invocation).
    fn send_receive(&mut self, request: MessageContext) -> Option<MessageContext> {
        let id = self.send(request);
        self.receive_reply_for(&id)
    }

    /// Returns the next request, blocking if none are available.
    fn receive_request(&mut self) -> Option<MessageContext>;

    /// Asynchronously sends `reply` as the response to `request`.
    fn send_reply(&mut self, reply: MessageContext, request: &MessageContext);
}

/// The deterministic utility half of the paper's Fig. 3 API (§4.2).
pub trait Utils {
    /// Group-agreed milliseconds since the epoch. Replaces
    /// `System.currentTimeMillis()`; may block while the voters agree.
    fn current_time_millis(&mut self) -> u64;

    /// Group-agreed timestamp. Same agreement as
    /// [`Utils::current_time_millis`].
    fn timestamp(&mut self) -> u64 {
        self.current_time_millis()
    }

    /// Deterministic randomness seeded by the group-agreed seed. Replaces
    /// direct `java.util.Random` construction.
    fn random_u64(&mut self) -> u64;
}

/// An entry from the service's unified event queue (§2.1.1: voters place
/// agreed events in "the local event queue" that the executor consumes).
#[derive(Debug, Clone, PartialEq)]
pub enum Incoming {
    /// An external request to serve.
    Request(MessageContext),
    /// A reply (or abort fault) for one of our own requests.
    Reply(MessageContext),
}

/// The handle through which an [`crate::ActiveService`] interacts with the
/// world. Implements [`MessageHandler`] and [`Utils`].
pub struct ServiceApi {
    rx: Receiver<ToApp>,
    tx: Sender<FromApp>,
    engine: Engine,
    /// This service's own URI, used as the default `wsa:ReplyTo` (§5.1
    /// stage 1: "the MessageHandler augments the MessageContext by setting
    /// the wsa:replyTo field").
    own_uri: String,
    /// Unified inbox in agreed delivery order.
    inbox: VecDeque<Incoming>,
    times: VecDeque<u64>,
    handles: HashMap<String, RequestHandle>,
    rng: StdRng,
    shutdown: bool,
    /// Whether we owe the simulation a Yield for the last satisfying event.
    owed: bool,
}

impl std::fmt::Debug for ServiceApi {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceApi")
            .field("inbox", &self.inbox.len())
            .finish_non_exhaustive()
    }
}

impl ServiceApi {
    /// Creates the API endpoint on the application thread. Waits for the
    /// Init event to seed the deterministic RNG.
    pub(crate) fn new(rx: Receiver<ToApp>, tx: Sender<FromApp>, id_prefix: &str) -> ServiceApi {
        let mut api = ServiceApi {
            rx,
            tx,
            engine: Engine::with_id_prefix(id_prefix),
            own_uri: format!("urn:svc:{id_prefix}"),
            inbox: VecDeque::new(),
            times: VecDeque::new(),
            handles: HashMap::new(),
            rng: StdRng::seed_from_u64(0),
            shutdown: false,
            owed: false,
        };
        // The first event is always Init.
        match api.rx.recv() {
            Ok(ToApp::Event(WsEvent::Init { seed })) => {
                api.rng = StdRng::seed_from_u64(seed);
                api.owed = true;
            }
            _ => api.shutdown = true,
        }
        api
    }

    /// Burns simulated CPU time at this replica — the deterministic
    /// replacement for "this computation takes a while".
    pub fn spend(&mut self, d: SimDuration) {
        let _ = self.tx.send(FromApp::Cmd(WsCmd::Spend(d)));
    }

    /// Pops the next entry — request or reply — from the unified event
    /// queue in agreed order, blocking if it is empty. This is the §2.1.1
    /// "local event queue" view, which orchestrating services (e.g. the
    /// TPC-W bookstore) use to interleave serving new requests with
    /// consuming replies to outstanding calls. `None` means shutdown.
    pub fn receive_any(&mut self) -> Option<Incoming> {
        loop {
            if let Some(item) = self.inbox.pop_front() {
                return Some(item);
            }
            if !self.pump_once() {
                return None;
            }
        }
    }

    /// Whether shutdown has been observed.
    pub fn is_shutdown(&self) -> bool {
        self.shutdown
    }

    pub(crate) fn finish(&mut self) {
        let _ = self.tx.send(FromApp::Finished);
        self.owed = false;
    }

    fn flush_owed(&mut self) {
        if self.owed {
            self.owed = false;
            let _ = self.tx.send(FromApp::Yield);
        }
    }

    /// Blocks for the next event; returns false on shutdown.
    fn pump_once(&mut self) -> bool {
        if self.shutdown {
            return false;
        }
        self.flush_owed();
        match self.rx.recv() {
            Ok(ToApp::Event(ev)) => {
                self.owed = true;
                self.ingest(ev);
                true
            }
            Ok(ToApp::Shutdown) | Err(_) => {
                self.shutdown = true;
                false
            }
        }
    }

    fn ingest(&mut self, ev: WsEvent) {
        match ev {
            WsEvent::Init { seed } => {
                // Re-init should not happen; reseed defensively.
                self.rng = StdRng::seed_from_u64(seed);
            }
            WsEvent::Request { handle, bytes } => {
                if let Ok(mc) = MessageContext::from_bytes(&bytes) {
                    if let Some(id) = &mc.addressing().message_id {
                        self.handles.insert(id.clone(), handle);
                    }
                    self.inbox.push_back(Incoming::Request(mc));
                } // malformed requests are dropped identically everywhere
            }
            WsEvent::Reply { bytes } => {
                if let Ok(mc) = MessageContext::from_bytes(&bytes) {
                    self.inbox.push_back(Incoming::Reply(mc));
                }
            }
            WsEvent::Aborted { msg_id } => {
                // Surface the abort as a SOAP fault correlated to the
                // request, so receive_reply(_for) observers see it.
                let fault = Fault {
                    code: "soap:Receiver".to_owned(),
                    reason: "request aborted by Perpetual-WS timeout".to_owned(),
                };
                let mut mc = MessageContext::from_envelope(Envelope::fault(&fault));
                mc.addressing_mut().relates_to = Some(msg_id);
                self.inbox.push_back(Incoming::Reply(mc));
            }
            WsEvent::Time { millis } => {
                self.times.push_back(millis);
            }
        }
    }
}

impl MessageHandler for ServiceApi {
    fn send(&mut self, mut request: MessageContext) -> String {
        if request.addressing().reply_to.is_none() {
            request.addressing_mut().reply_to = Some(self.own_uri.clone());
        }
        if self.engine.run_out_pipe(&mut request).is_err() {
            return String::new();
        }
        let msg_id = request.addressing().message_id.clone().unwrap_or_default();
        let to = request.addressing().to.clone().unwrap_or_default();
        let timeout_ms = request.options().timeout_ms;
        let bytes = match request.to_bytes() {
            Ok(b) => b,
            Err(_) => return String::new(),
        };
        let _ = self.tx.send(FromApp::Cmd(WsCmd::Send {
            msg_id: msg_id.clone(),
            to,
            bytes,
            timeout_ms,
        }));
        msg_id
    }

    fn receive_reply(&mut self) -> Option<MessageContext> {
        loop {
            if let Some(pos) = self
                .inbox
                .iter()
                .position(|i| matches!(i, Incoming::Reply(_)))
            {
                let Some(Incoming::Reply(mc)) = self.inbox.remove(pos) else {
                    unreachable!("position matched a reply");
                };
                return Some(mc);
            }
            if !self.pump_once() {
                return None;
            }
        }
    }

    fn receive_reply_for(&mut self, request_msg_id: &str) -> Option<MessageContext> {
        loop {
            if let Some(pos) = self.inbox.iter().position(|i| {
                matches!(i, Incoming::Reply(r)
                    if r.addressing().relates_to.as_deref() == Some(request_msg_id))
            }) {
                let Some(Incoming::Reply(mc)) = self.inbox.remove(pos) else {
                    unreachable!("position matched a reply");
                };
                return Some(mc);
            }
            if !self.pump_once() {
                return None;
            }
        }
    }

    fn receive_request(&mut self) -> Option<MessageContext> {
        loop {
            if let Some(pos) = self
                .inbox
                .iter()
                .position(|i| matches!(i, Incoming::Request(_)))
            {
                let Some(Incoming::Request(mc)) = self.inbox.remove(pos) else {
                    unreachable!("position matched a request");
                };
                return Some(mc);
            }
            if !self.pump_once() {
                return None;
            }
        }
    }

    fn send_reply(&mut self, mut reply: MessageContext, request: &MessageContext) {
        let Some(req_id) = request.addressing().message_id.clone() else {
            return;
        };
        let Some(handle) = self.handles.get(&req_id).copied() else {
            return;
        };
        // Fill in WS-Addressing correlation exactly as §5.1 stage (7):
        // to ← request.replyTo, relatesTo ← request.messageID.
        if reply.addressing().relates_to.is_none() {
            reply.addressing_mut().relates_to = Some(req_id.clone());
        }
        if reply.addressing().to.is_none() {
            reply.addressing_mut().to = request.addressing().reply_to.clone();
        }
        if self.engine.run_out_pipe(&mut reply).is_err() {
            return;
        }
        if let Ok(bytes) = reply.to_bytes() {
            let _ = self.tx.send(FromApp::Cmd(WsCmd::Reply { handle, bytes }));
        }
    }
}

impl Utils for ServiceApi {
    fn current_time_millis(&mut self) -> u64 {
        let _ = self.tx.send(FromApp::Cmd(WsCmd::QueryTime));
        loop {
            if let Some(ms) = self.times.pop_front() {
                return ms;
            }
            if !self.pump_once() {
                return 0;
            }
        }
    }

    fn random_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;

    fn api_pair() -> (ServiceApi, Sender<ToApp>, Receiver<FromApp>) {
        let (to_tx, to_rx) = unbounded();
        let (from_tx, from_rx) = unbounded();
        to_tx.send(ToApp::Event(WsEvent::Init { seed: 9 })).unwrap();
        let api = ServiceApi::new(to_rx, from_tx, "test");
        (api, to_tx, from_rx)
    }

    #[test]
    fn init_seeds_rng_deterministically() {
        let (mut a, _ta, _fa) = api_pair();
        let (mut b, _tb, _fb) = api_pair();
        assert_eq!(a.random_u64(), b.random_u64());
        assert_eq!(a.random_u64(), b.random_u64());
    }

    #[test]
    fn send_assigns_ids_and_emits_cmd() {
        let (mut api, _to, from) = api_pair();
        let mc = MessageContext::request("urn:svc:bank", "check");
        let id = api.send(mc);
        assert!(id.starts_with("urn:uuid:test-"));
        match from.try_recv().unwrap() {
            FromApp::Cmd(WsCmd::Send { msg_id, to, .. }) => {
                assert_eq!(msg_id, id);
                assert_eq!(to, "urn:svc:bank");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn receive_returns_queued_then_blocks_until_event() {
        let (mut api, to, from) = api_pair();
        // Feed a request event, then shutdown.
        let mut req = MessageContext::request("urn:svc:me", "op");
        req.addressing_mut().message_id = Some("m1".into());
        to.send(ToApp::Event(WsEvent::Request {
            handle: RequestHandle {
                caller: pws_perpetual::GroupId(9),
                req_no: 0,
            },
            bytes: req.to_bytes().unwrap(),
        }))
        .unwrap();
        to.send(ToApp::Shutdown).unwrap();
        let got = api.receive_request().unwrap();
        assert_eq!(got.addressing().message_id.as_deref(), Some("m1"));
        assert!(api.receive_request().is_none(), "shutdown → None");
        // The app yielded exactly once: for Init (owed) before blocking.
        let yields: usize = from
            .try_iter()
            .filter(|m| matches!(m, FromApp::Yield))
            .count();
        assert_eq!(yields, 2, "one for Init, one for the request event");
    }

    #[test]
    fn aborts_surface_as_faults() {
        let (mut api, to, _from) = api_pair();
        to.send(ToApp::Event(WsEvent::Aborted {
            msg_id: "m7".into(),
        }))
        .unwrap();
        to.send(ToApp::Shutdown).unwrap();
        let reply = api.receive_reply_for("m7").unwrap();
        let fault = reply.envelope().as_fault().expect("fault body");
        assert!(fault.reason.contains("aborted"));
    }

    #[test]
    fn time_values_pop_in_order() {
        let (mut api, to, _from) = api_pair();
        to.send(ToApp::Event(WsEvent::Time { millis: 100 }))
            .unwrap();
        to.send(ToApp::Event(WsEvent::Time { millis: 200 }))
            .unwrap();
        assert_eq!(api.current_time_millis(), 100);
        assert_eq!(api.current_time_millis(), 200);
    }

    #[test]
    fn reply_for_skips_unrelated() {
        let (mut api, to, _from) = api_pair();
        let mk = |relates: &str| {
            let mut mc = MessageContext::request("urn:x", "opResponse");
            mc.addressing_mut().relates_to = Some(relates.into());
            WsEvent::Reply {
                bytes: mc.to_bytes().unwrap(),
            }
        };
        to.send(ToApp::Event(mk("a"))).unwrap();
        to.send(ToApp::Event(mk("b"))).unwrap();
        let b = api.receive_reply_for("b").unwrap();
        assert_eq!(b.addressing().relates_to.as_deref(), Some("b"));
        let a = api.receive_reply().unwrap();
        assert_eq!(a.addressing().relates_to.as_deref(), Some("a"));
    }

    #[test]
    fn send_reply_correlates_and_needs_known_handle() {
        let (mut api, to, from) = api_pair();
        let mut req = MessageContext::request("urn:svc:me", "op");
        req.addressing_mut().message_id = Some("req-1".into());
        req.addressing_mut().reply_to = Some("urn:svc:caller".into());
        to.send(ToApp::Event(WsEvent::Request {
            handle: RequestHandle {
                caller: pws_perpetual::GroupId(2),
                req_no: 5,
            },
            bytes: req.to_bytes().unwrap(),
        }))
        .unwrap();
        let got = api.receive_request().unwrap();
        let reply = got.reply_with("", pws_soap::XmlNode::new("ok"));
        api.send_reply(reply, &got);
        let cmds: Vec<FromApp> = from.try_iter().collect();
        let sent = cmds.iter().any(|c| {
            matches!(c, FromApp::Cmd(WsCmd::Reply { handle, bytes })
                if handle.req_no == 5 && !bytes.is_empty())
        });
        assert!(sent, "reply command emitted: {cmds:?}");
        // Replying to an unknown request is a no-op.
        let stranger = MessageContext::request("urn:x", "op");
        api.send_reply(MessageContext::request("urn:y", "r"), &stranger);
    }
}
