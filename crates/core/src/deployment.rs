//! `replicas.xml` deployment descriptors (paper §5.2).
//!
//! Perpetual-WS has no dynamic discovery (Fig. 2), so endpoint references
//! are resolved through a static mapping shipped alongside the service:
//!
//! ```xml
//! <replicas>
//!   <service name="pge" uri="urn:svc:pge">
//!     <replica host="10.0.0.1" port="8080"/>
//!     <replica host="10.0.0.2" port="8080"/>
//!     <replica host="10.0.0.3" port="8080"/>
//!     <replica host="10.0.0.4" port="8080"/>
//!   </service>
//! </replicas>
//! ```

use pws_soap::xml::XmlNode;
use std::fmt;

/// One service's replica endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceEntry {
    /// Service name.
    pub name: String,
    /// Endpoint URI callers use (defaults to `urn:svc:<name>`).
    pub uri: String,
    /// Replica endpoints in index order.
    pub endpoints: Vec<(String, u16)>,
}

impl ServiceEntry {
    /// Number of replicas.
    pub fn n(&self) -> u32 {
        self.endpoints.len() as u32
    }

    /// Tolerated faults: `f = (n-1)/3`.
    pub fn f(&self) -> u32 {
        (self.n().saturating_sub(1)) / 3
    }
}

/// A parsed `replicas.xml`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ReplicasConfig {
    /// All declared services.
    pub services: Vec<ServiceEntry>,
}

impl ReplicasConfig {
    /// Finds a service by name.
    pub fn service(&self, name: &str) -> Option<&ServiceEntry> {
        self.services.iter().find(|s| s.name == name)
    }

    /// Serializes back to `replicas.xml` form.
    pub fn to_xml(&self) -> String {
        let mut root = XmlNode::new("replicas");
        for s in &self.services {
            let mut node = XmlNode::new("service")
                .attr("name", s.name.clone())
                .attr("uri", s.uri.clone());
            for (host, port) in &s.endpoints {
                node = node.child(
                    XmlNode::new("replica")
                        .attr("host", host.clone())
                        .attr("port", port.to_string()),
                );
            }
            root = root.child(node);
        }
        root.to_document()
    }
}

/// Error from parsing a deployment descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeploymentError {
    what: String,
}

impl DeploymentError {
    fn new(what: impl Into<String>) -> Self {
        DeploymentError { what: what.into() }
    }
}

impl fmt::Display for DeploymentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid replicas.xml: {}", self.what)
    }
}

impl std::error::Error for DeploymentError {}

/// Parses a `replicas.xml` document.
///
/// # Errors
///
/// Returns [`DeploymentError`] on malformed XML, missing attributes,
/// duplicate services, or group sizes that are not `3f + 1`.
pub fn parse_replicas_xml(xml: &str) -> Result<ReplicasConfig, DeploymentError> {
    let root = XmlNode::parse(xml).map_err(|e| DeploymentError::new(format!("xml: {e}")))?;
    if root.name != "replicas" {
        return Err(DeploymentError::new("root element must be <replicas>"));
    }
    let mut services = Vec::new();
    for svc in root.find_all("service") {
        let name = svc
            .attribute("name")
            .ok_or_else(|| DeploymentError::new("service missing name"))?
            .to_owned();
        if services.iter().any(|s: &ServiceEntry| s.name == name) {
            return Err(DeploymentError::new(format!("duplicate service '{name}'")));
        }
        let uri = svc
            .attribute("uri")
            .map(str::to_owned)
            .unwrap_or_else(|| format!("urn:svc:{name}"));
        let mut endpoints = Vec::new();
        for rep in svc.find_all("replica") {
            let host = rep
                .attribute("host")
                .ok_or_else(|| DeploymentError::new("replica missing host"))?
                .to_owned();
            let port: u16 = rep
                .attribute("port")
                .unwrap_or("8080")
                .parse()
                .map_err(|_| DeploymentError::new("bad port"))?;
            endpoints.push((host, port));
        }
        let n = endpoints.len() as u32;
        if n == 0 || !(n - 1).is_multiple_of(3) {
            return Err(DeploymentError::new(format!(
                "service '{name}' has {n} replicas; must be 3f+1"
            )));
        }
        services.push(ServiceEntry {
            name,
            uri,
            endpoints,
        });
    }
    Ok(ReplicasConfig { services })
}

/// A sample descriptor matching the paper's TPC-W deployment (Fig. 5).
pub fn sample_replicas_xml() -> String {
    let mk = |name: &str, n: u32| ServiceEntry {
        name: name.to_owned(),
        uri: format!("urn:svc:{name}"),
        endpoints: (0..n).map(|i| (format!("10.0.{name}.{i}"), 8080)).collect(),
    };
    ReplicasConfig {
        services: vec![mk("bookstore", 1), mk("pge", 4), mk("bank", 4)],
    }
    .to_xml()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_roundtrips() {
        let xml = sample_replicas_xml();
        let cfg = parse_replicas_xml(&xml).unwrap();
        assert_eq!(cfg.services.len(), 3);
        let pge = cfg.service("pge").unwrap();
        assert_eq!(pge.n(), 4);
        assert_eq!(pge.f(), 1);
        assert_eq!(pge.uri, "urn:svc:pge");
        let again = parse_replicas_xml(&cfg.to_xml()).unwrap();
        assert_eq!(cfg, again);
    }

    #[test]
    fn rejects_bad_sizes_and_duplicates() {
        let bad_size = r#"<replicas><service name="x" uri="u">
            <replica host="a"/><replica host="b"/></service></replicas>"#;
        assert!(parse_replicas_xml(bad_size).is_err());

        let dup = r#"<replicas>
            <service name="x"><replica host="a"/></service>
            <service name="x"><replica host="b"/></service>
        </replicas>"#;
        let err = parse_replicas_xml(dup).unwrap_err();
        assert!(err.to_string().contains("duplicate"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse_replicas_xml("<wrong/>").is_err());
        assert!(parse_replicas_xml("not xml").is_err());
        assert!(parse_replicas_xml(
            r#"<replicas><service><replica host="a"/></service></replicas>"#
        )
        .is_err());
        assert!(parse_replicas_xml(
            r#"<replicas><service name="x"><replica host="a" port="notnum"/></service></replicas>"#
        )
        .is_err());
    }

    #[test]
    fn default_uri_and_port() {
        let cfg = parse_replicas_xml(
            r#"<replicas><service name="svc"><replica host="h"/></service></replicas>"#,
        )
        .unwrap();
        let s = cfg.service("svc").unwrap();
        assert_eq!(s.uri, "urn:svc:svc");
        assert_eq!(s.endpoints[0], ("h".to_owned(), 8080));
    }
}
