//! The paper's Fig. 2: unique properties of Perpetual-WS compared with
//! Thema, BFT-WS, and SWS (§3). The benchmark target `table2_features`
//! prints this matrix; the unit tests below pin the Perpetual-WS column to
//! what this crate actually implements.

/// The four approaches compared in §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Approach {
    /// This system.
    PerpetualWs,
    /// Merideth et al., SRDS '05.
    Thema,
    /// Zhao, MWSW '07.
    BftWs,
    /// Li et al., IPDPS '05 ("Survivable Web Services").
    Sws,
}

impl Approach {
    /// All approaches, in the paper's column order.
    pub const ALL: [Approach; 4] = [
        Approach::PerpetualWs,
        Approach::Thema,
        Approach::BftWs,
        Approach::Sws,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            Approach::PerpetualWs => "Perpetual-WS",
            Approach::Thema => "Thema",
            Approach::BftWs => "BFT-WS",
            Approach::Sws => "SWS",
        }
    }
}

/// One row of the Fig. 2 matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FeatureRow {
    /// Property name as in Fig. 2.
    pub property: &'static str,
    /// Support per approach, in [`Approach::ALL`] order.
    pub support: [bool; 4],
}

impl FeatureRow {
    /// Whether `a` supports this property.
    pub fn supports(&self, a: Approach) -> bool {
        let idx = Approach::ALL.iter().position(|x| *x == a).expect("known");
        self.support[idx]
    }
}

/// The Fig. 2 matrix, rows in paper order; columns `[Perpetual-WS, Thema,
/// BFT-WS, SWS]`.
pub fn feature_matrix() -> Vec<FeatureRow> {
    vec![
        FeatureRow {
            property: "Replicated-WS interoperability",
            support: [true, false, false, true],
        },
        FeatureRow {
            property: "Fault isolation",
            support: [true, false, false, false],
        },
        FeatureRow {
            property: "Long-running active threads",
            support: [true, false, false, false],
        },
        FeatureRow {
            property: "Asynchronous communication",
            support: [true, false, false, false],
        },
        FeatureRow {
            property: "Access to host-specific information",
            support: [true, false, false, false],
        },
        FeatureRow {
            property: "Low cryptographic overhead",
            support: [true, true, false, false],
        },
        FeatureRow {
            property: "Transport independence",
            support: [true, false, true, false],
        },
        FeatureRow {
            property: "Support for unmodified passive WS",
            support: [true, true, true, true],
        },
        FeatureRow {
            property: "Dynamic WS discovery",
            support: [false, false, false, true],
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each claimed Perpetual-WS capability is backed by a concrete
    /// artifact in this repository; this test is the index.
    #[test]
    fn perpetual_ws_column_is_implemented() {
        let m = feature_matrix();
        let sup = |p: &str| {
            m.iter()
                .find(|r| r.property == p)
                .expect("row exists")
                .supports(Approach::PerpetualWs)
        };
        // Replicated↔replicated interaction: pws-perpetual
        // tests/interaction.rs::replicated_caller_to_replicated_target.
        assert!(sup("Replicated-WS interoperability"));
        // Fault isolation: ...::compromised_target_group_triggers_deterministic_abort.
        assert!(sup("Fault isolation"));
        // Long-running computations: crate::Service state machines with
        // multi-event continuations (crate::Poll wait sets).
        assert!(sup("Long-running active threads"));
        // Async: crate::ServiceCtx::send returns a CallToken; replies
        // resume continuations out of order via crate::WaitSet.
        assert!(sup("Asynchronous communication"));
        // Host-specific info: crate::ServiceCtx::query_time (time votes)
        // + crate::ServiceCtx::random_u64 (seeded random).
        assert!(sup("Access to host-specific information"));
        // MACs not signatures: pws-crypto (HMAC authenticators).
        assert!(sup("Low cryptographic overhead"));
        // Transport independence: pws-simnet NetConfig is pluggable per link.
        assert!(sup("Transport independence"));
        // Passive services run unmodified: crate::PassiveService.
        assert!(sup("Support for unmodified passive WS"));
        // Honest about the gap the paper also has:
        assert!(!sup("Dynamic WS discovery"));
    }

    #[test]
    fn matrix_matches_paper_shape() {
        let m = feature_matrix();
        assert_eq!(m.len(), 9);
        // Thema & BFT-WS do not interoperate between replicated services.
        let interop = &m[0];
        assert!(!interop.supports(Approach::Thema));
        assert!(!interop.supports(Approach::BftWs));
        assert!(interop.supports(Approach::Sws));
        // SWS uses signatures; Thema uses MACs (§3 crypto overhead).
        let crypto = m
            .iter()
            .find(|r| r.property.contains("cryptographic"))
            .unwrap();
        assert!(crypto.supports(Approach::Thema));
        assert!(!crypto.supports(Approach::Sws));
        // Everyone supports unmodified passive services.
        let passive = m.iter().find(|r| r.property.contains("passive")).unwrap();
        assert!(Approach::ALL.iter().all(|a| passive.supports(*a)));
    }

    #[test]
    fn approach_names() {
        assert_eq!(Approach::PerpetualWs.name(), "Perpetual-WS");
        assert_eq!(Approach::ALL.len(), 4);
    }
}
