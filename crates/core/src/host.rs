//! Hosting: bridges a poll-driven [`Service`] onto the Perpetual executor
//! interface, entirely on the simulation thread.
//!
//! One [`ServiceExecutor`] per replica translates agreed
//! [`pws_perpetual::AppEvent`]s into [`WsEvent`]s, delivers them to the
//! service filtered through its declared [`Poll`] continuation (events the
//! service is not waiting on stay queued, in agreed order), and turns
//! [`ServiceCtx`] commands back into [`pws_perpetual::AppOutput`] commands.
//! There is no per-replica OS thread, no channel handshake, and no
//! join/shutdown choreography: a replica host is a plain struct, so
//! creating and tearing one down costs nanoseconds instead of a thread
//! spawn + join.

use crate::api::{CallToken, Poll, Service, TimeToken, WsEvent};
use crate::runtime::UriMap;
use crate::wscost::WsCostModel;
use pws_perpetual::{AppEvent, AppOutput, Executor, RequestHandle};
use pws_simnet::{AuditEvent, ProtoFamily, SimDuration};
use pws_soap::engine::Engine;
use pws_soap::{Envelope, Fault, MessageContext};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Synthetic `wsa:MessageID` prefix for inbound requests that arrive
/// without one. Derived from the agreed [`RequestHandle`], so every replica
/// assigns the identical id and the request stays repliable; [`ServiceCtx::reply`]
/// keeps synthetic ids off the wire (no `RelatesTo` is fabricated from
/// them, matching the old executor's behavior for id-less requests).
const ANON_MSG_ID_PREFIX: &str = "urn:pws:anon:";

/// Persistent per-replica state shared with the service through
/// [`ServiceCtx`].
struct HostState {
    engine: Engine,
    /// This service's own URI, used as the default `wsa:ReplyTo` (§5.1
    /// stage 1: "the MessageHandler augments the MessageContext by setting
    /// the wsa:replyTo field").
    own_uri: String,
    uris: Arc<UriMap>,
    ws_cost: WsCostModel,
    /// Deterministic randomness seeded by the group-agreed seed. Snapshots
    /// carry the raw generator state (`StdRng::state_bytes`), so a restored
    /// replica continues the agreed random stream in O(1) — never by
    /// replaying the draw history, which is unbounded over a service's
    /// lifetime.
    rng: StdRng,
    /// Incoming request `wsa:MessageID` → reply handle.
    handles: HashMap<String, RequestHandle>,
    /// Outcall token assignment (deterministic dense counter).
    next_token: u64,
    /// Perpetual call id → token, for reply/abort correlation.
    calls: HashMap<u64, CallToken>,
    /// Token → request `wsa:MessageID`, for abort fault correlation.
    token_msg: HashMap<CallToken, String>,
    /// Sends that failed locally (unroutable endpoint, cross-shard key,
    /// marshal error), with the fault reason: surfaced as deterministic
    /// abort faults after the current event.
    failed_sends: Vec<(CallToken, String)>,
}

/// The handle through which a [`Service`] acts on the world during one
/// [`Service::on_event`] delivery.
///
/// All commands are non-blocking; answers come back as later [`WsEvent`]s.
pub struct ServiceCtx<'a> {
    st: &'a mut HostState,
    out: &'a mut AppOutput,
}

impl std::fmt::Debug for ServiceCtx<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceCtx").finish_non_exhaustive()
    }
}

impl ServiceCtx<'_> {
    /// Sends a request message without blocking; returns the token that
    /// will identify its [`WsEvent::Reply`]. Sets `wsa:ReplyTo` to this
    /// service's own URI if unset. Sharded targets are routed by the
    /// request key (see [`crate::router`]). A request that cannot be
    /// routed or marshalled — including a **cross-shard** key set, which
    /// sharding rejects by design — resolves deterministically to an
    /// abort fault delivered after the current event (every replica does
    /// the same).
    pub fn send(&mut self, request: MessageContext) -> CallToken {
        self.send_impl(request, false)
    }

    /// [`ServiceCtx::send`], but the marshalled payload is wrapped with the
    /// Perpetual **config** marker ([`pws_perpetual::CONFIG_PREFIX`]): the
    /// target voter group gives the request a CLBFT agreement slot of its
    /// own (never batched), the slot is replayable through
    /// `config_records_above_stable`, and the receiving host strips the
    /// marker before the service sees the request. The transport for
    /// transaction and resharding records (see [`crate::txn`]).
    pub fn send_config(&mut self, request: MessageContext) -> CallToken {
        self.send_impl(request, true)
    }

    fn send_impl(&mut self, mut request: MessageContext, config: bool) -> CallToken {
        let token = CallToken(self.st.next_token);
        self.st.next_token += 1;
        if request.addressing().reply_to.is_none() {
            request.addressing_mut().reply_to = Some(self.st.own_uri.clone());
        }
        // The routing key is part of the message body; resolve ownership
        // before the out-pipe mutates addressing.
        let routed = {
            let to = request.addressing().to.clone().unwrap_or_default();
            self.st
                .uris
                .route(&to, crate::router::routing_key(&request))
                .map(|(_, gid)| (gid, self.st.uris.shard_count(&to).is_some()))
        };
        if self.st.engine.run_out_pipe(&mut request).is_err() {
            self.st
                .failed_sends
                .push((token, "request could not be marshalled".to_owned()));
            return token;
        }
        let msg_id = request.addressing().message_id.clone().unwrap_or_default();
        let timeout_ms = request.options().timeout_ms;
        let Ok(bytes) = request.to_bytes() else {
            self.st.token_msg.insert(token, msg_id);
            self.st
                .failed_sends
                .push((token, "request could not be marshalled".to_owned()));
            return token;
        };
        let bytes = if config {
            pws_perpetual::config_payload(&bytes)
        } else {
            bytes
        };
        match routed {
            Ok((target, sharded)) => {
                if sharded {
                    self.out.incr_metric("clbft.shard.routed");
                    self.out.incr_metric(format!("clbft.shard.route.{target}"));
                }
                self.out.spend(self.st.ws_cost.marshal_cost(bytes.len()));
                let call = self
                    .out
                    .call(target, bytes, timeout_ms.map(SimDuration::from_millis));
                self.st.calls.insert(call.0, token);
                self.st.token_msg.insert(token, msg_id);
            }
            Err(e) => {
                if matches!(e, crate::router::RouteError::CrossShard { .. }) {
                    self.out.incr_metric("clbft.shard.cross_rejected");
                }
                self.st.token_msg.insert(token, msg_id);
                self.st.failed_sends.push((token, e.to_string()));
            }
        }
        token
    }

    /// Sends `reply` as the response to `request` (a previously delivered
    /// [`WsEvent::Request`]). Fills in WS-Addressing correlation exactly as
    /// §5.1 stage (7): `to ← request.replyTo`, `relatesTo ←
    /// request.messageID`. Each request can be answered at most once.
    pub fn reply(&mut self, mut reply: MessageContext, request: &MessageContext) {
        let Some(req_id) = request.addressing().message_id.clone() else {
            return;
        };
        let Some(handle) = self.st.handles.get(&req_id).copied() else {
            return;
        };
        if reply.addressing().relates_to.is_none() {
            reply.addressing_mut().relates_to = Some(req_id.clone());
        }
        // Synthetic ids (requests that arrived without wsa:MessageID) stay
        // off the wire, however they got into RelatesTo.
        if reply
            .addressing()
            .relates_to
            .as_deref()
            .is_some_and(|r| r.starts_with(ANON_MSG_ID_PREFIX))
        {
            reply.addressing_mut().relates_to = None;
        }
        if reply.addressing().to.is_none() {
            reply.addressing_mut().to = request.addressing().reply_to.clone();
        }
        if self.st.engine.run_out_pipe(&mut reply).is_err() {
            return;
        }
        let Ok(bytes) = reply.to_bytes() else { return };
        self.st.handles.remove(&req_id);
        self.out.spend(self.st.ws_cost.marshal_cost(bytes.len()));
        self.out.reply(handle, bytes);
    }

    /// Asks the voter group to agree on the current time; the answer
    /// arrives as [`WsEvent::Time`] with the returned token. Replaces
    /// `System.currentTimeMillis()` (§4.2).
    pub fn query_time(&mut self) -> TimeToken {
        TimeToken(self.out.query_time())
    }

    /// Burns simulated CPU time at this replica — the deterministic
    /// replacement for "this computation takes a while".
    pub fn spend(&mut self, d: SimDuration) {
        self.out.spend(d);
    }

    /// Deterministic randomness seeded by the group-agreed seed. Replaces
    /// direct `java.util.Random` construction (§4.2).
    pub fn random_u64(&mut self) -> u64 {
        self.st.rng.next_u64()
    }

    /// This service's own URI (`urn:svc:<name>`).
    pub fn own_uri(&self) -> &str {
        &self.st.own_uri
    }

    /// Increments a deployment metric counter. Deterministic infrastructure
    /// telemetry (the transaction and resharding layers count protocol
    /// outcomes through this); services should not treat metrics as state.
    pub fn incr_metric(&mut self, name: impl Into<String>) {
        self.out.incr_metric(name);
    }

    /// Records a protocol-plane span phase (transaction / reshard spans).
    /// The hosting replica stamps it with sim-time and its group id; a
    /// no-op downstream when tracing is off. Purely observational.
    pub fn obs_proto(&mut self, family: ProtoFamily, id: u64, phase: usize, count: u64) {
        self.out.proto(family, id, phase, count);
    }

    /// Feeds one observation to the online protocol auditor (a no-op
    /// downstream when auditing is off). Purely observational.
    pub fn obs_audit(&mut self, ev: AuditEvent) {
        self.out.audit(ev);
    }

    /// Records a time-series gauge sample (e.g. the transaction lock-table
    /// size). A no-op downstream when tracing is off.
    pub fn gauge(&mut self, name: impl Into<String>, value: f64) {
        self.out.gauge(name, value);
    }
}

/// The simulation-side executor hosting one replica of a poll-driven
/// [`Service`].
pub struct ServiceExecutor {
    service: Box<dyn Service>,
    service_name: String,
    state: HostState,
    /// Events not yet admitted by the service's wait set, in agreed order.
    queue: VecDeque<WsEvent>,
    /// The service's current continuation.
    wait: Poll,
}

impl std::fmt::Debug for ServiceExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceExecutor")
            .field("service", &self.service_name)
            .field("queued", &self.queue.len())
            .field("wait", &self.wait)
            .finish_non_exhaustive()
    }
}

impl ServiceExecutor {
    /// Wraps `service` for one replica of the service named `name`.
    pub fn new(
        service: Box<dyn Service>,
        name: impl Into<String>,
        uris: Arc<UriMap>,
        ws_cost: WsCostModel,
    ) -> Self {
        let name = name.into();
        ServiceExecutor {
            service,
            state: HostState {
                engine: Engine::with_id_prefix(&name),
                own_uri: format!("urn:svc:{name}"),
                uris,
                ws_cost,
                rng: StdRng::seed_from_u64(0),
                handles: HashMap::new(),
                next_token: 0,
                calls: HashMap::new(),
                token_msg: HashMap::new(),
                failed_sends: Vec::new(),
            },
            service_name: name,
            queue: VecDeque::new(),
            wait: Poll::Next,
        }
    }

    /// Whether the service declared [`Poll::Done`].
    pub fn is_done(&self) -> bool {
        self.wait == Poll::Done
    }

    /// Typed access to the hosted service (for harvesting results after a
    /// run).
    pub fn service_mut<T: Service>(&mut self) -> Option<&mut T> {
        let any: &mut dyn std::any::Any = self.service.as_mut();
        any.downcast_mut::<T>()
    }

    /// A synthesized abort fault for `token`, correlated to the original
    /// request if its `wsa:MessageID` is known.
    fn abort_fault_with(&mut self, token: CallToken, reason: &str) -> WsEvent {
        let fault = Fault {
            code: "soap:Receiver".to_owned(),
            reason: reason.to_owned(),
        };
        let mut mc = MessageContext::from_envelope(Envelope::fault(&fault));
        mc.addressing_mut().relates_to = self.state.token_msg.remove(&token);
        WsEvent::Reply { token, reply: mc }
    }

    /// Delivers queued events admitted by the current wait set, in agreed
    /// order, until the service blocks (no admitted event) or finishes.
    fn drain(&mut self, out: &mut AppOutput) {
        loop {
            let pos = match &self.wait {
                Poll::Done => {
                    self.queue.clear();
                    return;
                }
                Poll::Next => {
                    if self.queue.is_empty() {
                        return;
                    }
                    0
                }
                Poll::Wait(ws) => match self.queue.iter().position(|e| ws.admits(e)) {
                    Some(p) => p,
                    None => return,
                },
            };
            let ev = self.queue.remove(pos).expect("position within queue");
            let mut ctx = ServiceCtx {
                st: &mut self.state,
                out,
            };
            let poll = self.service.on_event(ev, &mut ctx);
            // Locally-failed sends surface as deterministic abort faults,
            // queued after the event that issued them, carrying the typed
            // routing error (unknown endpoint, cross-shard key) as the
            // fault reason.
            let failed: Vec<(CallToken, String)> = std::mem::take(&mut self.state.failed_sends);
            for (token, reason) in failed {
                let ev = self.abort_fault_with(token, &reason);
                self.queue.push_back(ev);
            }
            self.wait = poll;
        }
    }
}

// ------------------------------------------------------------ checkpointing

use crate::api::WaitSet;
use pws_perpetual::snapshot::{counted, Decoder, Encoder, WireError};

const EV_INIT: u8 = 1;
const EV_REQUEST: u8 = 2;
const EV_REPLY: u8 = 3;
const EV_TIME: u8 = 4;

const POLL_NEXT: u8 = 0;
const POLL_WAIT: u8 = 1;
const POLL_DONE: u8 = 2;

/// Cap on any one collection in a host snapshot (mirrors the wire codec's
/// allocation caps).
const MAX_HOST_ITEMS: usize = 1 << 20;

fn put_str(e: &mut Encoder, s: &str) {
    e.put_bytes(s.as_bytes());
}

fn get_str(d: &mut Decoder<'_>) -> Result<String, WireError> {
    let b = d.bytes()?;
    String::from_utf8(b.to_vec()).map_err(|_| host_snap_err())
}

fn put_mc(e: &mut Encoder, mc: &MessageContext) {
    let bytes = mc
        .to_bytes()
        .expect("queued agreed message must re-marshal");
    e.put_bytes(&bytes);
}

fn get_mc(d: &mut Decoder<'_>) -> Result<MessageContext, WireError> {
    let bytes = d.bytes()?;
    MessageContext::from_bytes(&bytes).map_err(|_| host_snap_err())
}

fn put_event(e: &mut Encoder, ev: &WsEvent) {
    match ev {
        WsEvent::Init { seed } => {
            e.put_u8(EV_INIT);
            e.put_u64(*seed);
        }
        WsEvent::Request { request } => {
            e.put_u8(EV_REQUEST);
            put_mc(e, request);
        }
        WsEvent::Reply { token, reply } => {
            e.put_u8(EV_REPLY);
            e.put_u64(token.0);
            put_mc(e, reply);
        }
        WsEvent::Time { token, millis } => {
            e.put_u8(EV_TIME);
            e.put_u64(token.0);
            e.put_u64(*millis);
        }
    }
}

fn get_event(d: &mut Decoder<'_>) -> Result<WsEvent, WireError> {
    Ok(match d.u8()? {
        EV_INIT => WsEvent::Init { seed: d.u64()? },
        EV_REQUEST => WsEvent::Request {
            request: get_mc(d)?,
        },
        EV_REPLY => WsEvent::Reply {
            token: CallToken(d.u64()?),
            reply: get_mc(d)?,
        },
        EV_TIME => WsEvent::Time {
            token: TimeToken(d.u64()?),
            millis: d.u64()?,
        },
        _ => return Err(host_snap_err()),
    })
}

fn put_poll(e: &mut Encoder, poll: &Poll) {
    match poll {
        Poll::Next => e.put_u8(POLL_NEXT),
        Poll::Done => e.put_u8(POLL_DONE),
        Poll::Wait(ws) => {
            e.put_u8(POLL_WAIT);
            e.put_u8(u8::from(ws.requests));
            e.put_u8(u8::from(ws.any_reply));
            e.put_u8(u8::from(ws.times));
            e.put_u32(ws.replies.len() as u32);
            for t in &ws.replies {
                e.put_u64(t.0);
            }
        }
    }
}

fn get_poll(d: &mut Decoder<'_>) -> Result<Poll, WireError> {
    Ok(match d.u8()? {
        POLL_NEXT => Poll::Next,
        POLL_DONE => Poll::Done,
        POLL_WAIT => {
            let mut ws = WaitSet::new();
            ws.requests = d.u8()? != 0;
            ws.any_reply = d.u8()? != 0;
            ws.times = d.u8()? != 0;
            for t in counted(d, MAX_HOST_ITEMS, host_snap_err, |d| d.u64())? {
                ws.replies.insert(CallToken(t));
            }
            Poll::Wait(ws)
        }
        _ => return Err(host_snap_err()),
    })
}

fn host_snap_err() -> WireError {
    WireError::malformed("malformed host snapshot")
}

impl ServiceExecutor {
    /// Serializes the whole host: the service's own snapshot plus every
    /// piece of deterministic host state a recovered replica needs to
    /// resume mid-conversation — the reply-handle table, outcall token
    /// maps, the queued (not yet admitted) events in agreed order, the
    /// declared wait set, the raw RNG state (restored in O(1), never by
    /// replaying the draw history), and the engine's message-id counter.
    /// All maps are emitted in sorted key order so correct replicas
    /// produce byte-identical snapshots at the same boundary.
    fn encode_host(&self) -> Vec<u8> {
        let st = &self.state;
        let mut e = Encoder::new();
        // Version 2: the RNG is stored as raw state bytes (v1 stored a
        // seed + draw count to replay).
        e.put_u8(2);
        e.put_bytes(&self.service.snapshot());
        e.put_u64(st.next_token);
        e.put_bytes(&st.rng.state_bytes());
        e.put_u64(st.engine.id_counter());
        let mut handles: Vec<(&String, &RequestHandle)> = st.handles.iter().collect();
        handles.sort_by_key(|(id, _)| id.as_str());
        e.put_u32(handles.len() as u32);
        for (id, h) in handles {
            put_str(&mut e, id);
            e.put_u32(h.caller.0);
            e.put_u64(h.req_no);
        }
        let mut calls: Vec<(u64, u64)> = st.calls.iter().map(|(c, t)| (*c, t.0)).collect();
        calls.sort_unstable();
        e.put_u32(calls.len() as u32);
        for (c, t) in calls {
            e.put_u64(c);
            e.put_u64(t);
        }
        let mut token_msg: Vec<(u64, &String)> =
            st.token_msg.iter().map(|(t, m)| (t.0, m)).collect();
        token_msg.sort_by_key(|(t, _)| *t);
        e.put_u32(token_msg.len() as u32);
        for (t, m) in token_msg {
            e.put_u64(t);
            put_str(&mut e, m);
        }
        put_poll(&mut e, &self.wait);
        e.put_u32(self.queue.len() as u32);
        for ev in &self.queue {
            put_event(&mut e, ev);
        }
        e.finish().to_vec()
    }

    fn decode_host(&mut self, snapshot: &[u8]) -> Result<(), WireError> {
        let mut d = Decoder::new(snapshot);
        if d.u8()? != 2 {
            return Err(host_snap_err());
        }
        let service_snap = d.bytes()?;
        let next_token = d.u64()?;
        let rng_state = d.bytes()?;
        if rng_state.len() != 32 {
            return Err(host_snap_err());
        }
        let id_counter = d.u64()?;
        let handles: HashMap<String, RequestHandle> =
            counted(&mut d, MAX_HOST_ITEMS, host_snap_err, |d| {
                let id = get_str(d)?;
                let caller = pws_perpetual::GroupId(d.u32()?);
                let req_no = d.u64()?;
                Ok((id, RequestHandle { caller, req_no }))
            })?
            .into_iter()
            .collect();
        let calls: HashMap<u64, CallToken> = counted(&mut d, MAX_HOST_ITEMS, host_snap_err, |d| {
            Ok((d.u64()?, CallToken(d.u64()?)))
        })?
        .into_iter()
        .collect();
        let token_msg: HashMap<CallToken, String> =
            counted(&mut d, MAX_HOST_ITEMS, host_snap_err, |d| {
                let t = CallToken(d.u64()?);
                Ok((t, get_str(d)?))
            })?
            .into_iter()
            .collect();
        let wait = get_poll(&mut d)?;
        let queue: VecDeque<WsEvent> =
            counted(&mut d, MAX_HOST_ITEMS, host_snap_err, get_event)?.into();
        d.finish()?;

        // Everything parsed; commit.
        self.service.restore(&service_snap);
        let st = &mut self.state;
        st.next_token = next_token;
        // Restore the generator from its raw state: the agreed random
        // stream continues exactly where the checkpointed replica left it,
        // in O(1) regardless of how many values were ever drawn.
        let mut seed = [0u8; 32];
        seed.copy_from_slice(&rng_state);
        st.rng = StdRng::from_seed(seed);
        st.engine.set_id_counter(id_counter);
        st.handles = handles;
        st.calls = calls;
        st.token_msg = token_msg;
        st.failed_sends.clear();
        self.wait = wait;
        self.queue = queue;
        Ok(())
    }
}

impl Executor for ServiceExecutor {
    fn snapshot(&self) -> Vec<u8> {
        self.encode_host()
    }

    fn restore(&mut self, snapshot: &[u8]) {
        if let Err(e) = self.decode_host(snapshot) {
            // The snapshot digest was vouched for by f+1 replicas before
            // installation, so this is a local serialization bug; failing
            // loudly beats silent divergence.
            panic!("verified host snapshot failed to decode: {e}");
        }
    }

    fn on_event(&mut self, ev: AppEvent, out: &mut AppOutput) {
        // A finished service ignores events outright: no demarshal cost,
        // no bookkeeping growth.
        if self.wait == Poll::Done {
            return;
        }
        match ev {
            AppEvent::Init { seed } => {
                self.state.rng = StdRng::seed_from_u64(seed);
                self.queue.push_back(WsEvent::Init { seed });
            }
            AppEvent::Request { handle, payload } => {
                out.spend(self.state.ws_cost.demarshal_cost(payload.len()));
                // Config-flagged requests (transaction/resharding records)
                // carry the Perpetual config marker; the envelope inside is
                // ordinary SOAP.
                let soap = pws_perpetual::strip_config_payload(&payload).unwrap_or(&payload);
                if let Ok(mut request) = MessageContext::from_bytes(soap) {
                    let id = match &request.addressing().message_id {
                        Some(id) => id.clone(),
                        None => {
                            let id = format!(
                                "{ANON_MSG_ID_PREFIX}{}:{}",
                                handle.caller.0, handle.req_no
                            );
                            request.addressing_mut().message_id = Some(id.clone());
                            id
                        }
                    };
                    self.state.handles.insert(id, handle);
                    self.queue.push_back(WsEvent::Request { request });
                } // malformed requests are dropped identically everywhere
            }
            AppEvent::Reply { call, payload } => {
                out.spend(self.state.ws_cost.demarshal_cost(payload.len()));
                let Some(token) = self.state.calls.remove(&call.0) else {
                    return;
                };
                self.state.token_msg.remove(&token);
                if let Ok(reply) = MessageContext::from_bytes(&payload) {
                    self.queue.push_back(WsEvent::Reply { token, reply });
                }
            }
            AppEvent::Aborted { call } => {
                let Some(token) = self.state.calls.remove(&call.0) else {
                    return;
                };
                let ev = self.abort_fault_with(token, "request aborted by Perpetual-WS timeout");
                self.queue.push_back(ev);
            }
            AppEvent::Time { token, millis } => {
                self.queue.push_back(WsEvent::Time {
                    token: TimeToken(token),
                    millis,
                });
            }
        }
        self.drain(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pws_perpetual::GroupId;
    use pws_soap::XmlNode;

    fn uris() -> Arc<UriMap> {
        let mut m = UriMap::default();
        m.insert("bank", GroupId(3));
        Arc::new(m)
    }

    fn request_bytes(id: &str, op: &str, text: &str) -> bytes::Bytes {
        let mut mc = MessageContext::request("urn:svc:store", op);
        mc.addressing_mut().message_id = Some(id.into());
        mc.addressing_mut().reply_to = Some("urn:svc:caller".into());
        mc.body_mut().name = op.into();
        mc.body_mut().text = text.into();
        mc.to_bytes().unwrap()
    }

    /// Records every delivered event kind; issues one call on Init.
    struct Recorder {
        events: Vec<String>,
        poll: Poll,
    }
    impl Service for Recorder {
        fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
            match ev {
                WsEvent::Init { .. } => {
                    let mut req = MessageContext::request("urn:svc:bank", "check");
                    req.options_mut().set_timeout_millis(1000);
                    let t = ctx.send(req);
                    self.events.push(format!("init->{t:?}"));
                }
                WsEvent::Request { request } => {
                    self.events.push(format!("req:{}", request.body().name));
                    let reply = request.reply_with("", XmlNode::new("ok"));
                    ctx.reply(reply, &request);
                }
                WsEvent::Reply { token, reply } => {
                    let kind = if reply.envelope().as_fault().is_some() {
                        "fault"
                    } else {
                        "ok"
                    };
                    self.events.push(format!("reply:{token:?}:{kind}"));
                }
                WsEvent::Time { millis, .. } => self.events.push(format!("time:{millis}")),
            }
            self.poll.clone()
        }
    }

    #[test]
    fn init_issues_call_with_timeout() {
        let svc = Recorder {
            events: Vec::new(),
            poll: Poll::Next,
        };
        let mut exec = ServiceExecutor::new(Box::new(svc), "store", uris(), WsCostModel::FREE);
        let mut out = AppOutput::new(0, 0);
        exec.on_event(AppEvent::Init { seed: 5 }, &mut out);
        let calls: Vec<_> = out
            .cmds()
            .iter()
            .filter(|c| matches!(c, pws_perpetual::AppCmd::Call { .. }))
            .collect();
        assert_eq!(calls.len(), 1);
        if let pws_perpetual::AppCmd::Call {
            target, timeout, ..
        } = calls[0]
        {
            assert_eq!(*target, GroupId(3));
            assert_eq!(*timeout, Some(SimDuration::from_millis(1000)));
        }
        let r = exec.service_mut::<Recorder>().unwrap();
        assert_eq!(r.events, vec!["init->out#0"]);
    }

    #[test]
    fn unknown_endpoint_aborts_as_fault_reply() {
        let svc = |ev: WsEvent, ctx: &mut ServiceCtx<'_>| match ev {
            WsEvent::Init { .. } => {
                let t = ctx.send(MessageContext::request("urn:svc:nowhere", "op"));
                Poll::reply(t)
            }
            WsEvent::Reply { reply, .. } => {
                assert!(reply.envelope().as_fault().is_some(), "abort is a fault");
                Poll::Done
            }
            _ => Poll::Next,
        };
        let mut exec = ServiceExecutor::new(Box::new(svc), "store", uris(), WsCostModel::FREE);
        let mut out = AppOutput::new(0, 0);
        exec.on_event(AppEvent::Init { seed: 5 }, &mut out);
        assert!(
            out.cmds()
                .iter()
                .all(|c| !matches!(c, pws_perpetual::AppCmd::Call { .. })),
            "no call issued for unknown endpoint"
        );
        assert!(exec.is_done(), "the abort fault resumed the continuation");
    }

    #[test]
    fn wait_set_holds_back_unadmitted_events() {
        // The service waits only on its outcall's reply; a request arriving
        // first stays queued and is delivered after interest widens.
        let svc = Recorder {
            events: Vec::new(),
            poll: Poll::Next,
        };
        let mut exec = ServiceExecutor::new(Box::new(svc), "store", uris(), WsCostModel::FREE);
        let mut out = AppOutput::new(0, 0);
        exec.on_event(AppEvent::Init { seed: 5 }, &mut out);
        // Narrow the wait to the outcall's reply only.
        exec.service_mut::<Recorder>().unwrap().poll = Poll::reply(CallToken(0));
        exec.wait = Poll::Wait(crate::api::WaitSet::new().reply(CallToken(0)));
        let h = RequestHandle {
            caller: GroupId(9),
            req_no: 1,
        };
        exec.on_event(
            AppEvent::Request {
                handle: h,
                payload: request_bytes("m1", "op", "x"),
            },
            &mut out,
        );
        assert_eq!(
            exec.service_mut::<Recorder>().unwrap().events.len(),
            1,
            "request held back while waiting on the reply"
        );
        // Once the reply arrives the service widens to Next, so the queued
        // request is delivered in the same drain — reply first (agreed
        // order among admitted events), then the request.
        exec.service_mut::<Recorder>().unwrap().poll = Poll::Next;
        let reply_payload = {
            let mut mc = MessageContext::request("urn:svc:store", "checkResponse");
            mc.addressing_mut().relates_to = Some("whatever".into());
            mc.to_bytes().unwrap()
        };
        exec.on_event(
            AppEvent::Reply {
                call: pws_perpetual::CallId(0),
                payload: reply_payload,
            },
            &mut out,
        );
        let r = exec.service_mut::<Recorder>().unwrap();
        assert_eq!(r.events, vec!["init->out#0", "reply:out#0:ok", "req:op"]);
    }

    #[test]
    fn done_discards_queued_and_future_events() {
        let svc = |ev: WsEvent, _ctx: &mut ServiceCtx<'_>| match ev {
            WsEvent::Init { .. } => Poll::Done,
            _ => panic!("no event may reach a Done service"),
        };
        let mut exec = ServiceExecutor::new(Box::new(svc), "x", uris(), WsCostModel::FREE);
        let mut out = AppOutput::new(0, 0);
        exec.on_event(AppEvent::Init { seed: 1 }, &mut out);
        assert!(exec.is_done());
        exec.on_event(
            AppEvent::Time {
                token: 0,
                millis: 1,
            },
            &mut out,
        );
        exec.on_event(
            AppEvent::Request {
                handle: RequestHandle {
                    caller: GroupId(2),
                    req_no: 0,
                },
                payload: request_bytes("m1", "op", ""),
            },
            &mut out,
        );
        assert!(exec.is_done());
    }

    #[test]
    fn reply_consumes_the_request_handle() {
        let svc = Recorder {
            events: Vec::new(),
            poll: Poll::Next,
        };
        let mut exec = ServiceExecutor::new(Box::new(svc), "store", uris(), WsCostModel::FREE);
        let mut out = AppOutput::new(0, 0);
        exec.on_event(AppEvent::Init { seed: 1 }, &mut out);
        exec.on_event(
            AppEvent::Request {
                handle: RequestHandle {
                    caller: GroupId(2),
                    req_no: 5,
                },
                payload: request_bytes("req-1", "op", ""),
            },
            &mut out,
        );
        let replies = out
            .cmds()
            .iter()
            .filter(|c| matches!(c, pws_perpetual::AppCmd::Reply { to, .. } if to.req_no == 5))
            .count();
        assert_eq!(replies, 1);
        assert!(exec.state.handles.is_empty(), "handle consumed on reply");
    }

    #[test]
    fn request_without_message_id_is_still_repliable() {
        let svc = Recorder {
            events: Vec::new(),
            poll: Poll::Next,
        };
        let mut exec = ServiceExecutor::new(Box::new(svc), "store", uris(), WsCostModel::FREE);
        let mut out = AppOutput::new(0, 0);
        exec.on_event(AppEvent::Init { seed: 1 }, &mut out);
        let mut mc = MessageContext::request("urn:svc:store", "op");
        mc.addressing_mut().reply_to = Some("urn:svc:caller".into());
        assert!(mc.addressing().message_id.is_none());
        exec.on_event(
            AppEvent::Request {
                handle: RequestHandle {
                    caller: GroupId(4),
                    req_no: 9,
                },
                payload: mc.to_bytes().unwrap(),
            },
            &mut out,
        );
        let reply = out
            .cmds()
            .iter()
            .find_map(|c| match c {
                pws_perpetual::AppCmd::Reply { to, payload } if to.req_no == 9 => {
                    Some(MessageContext::from_bytes(payload).unwrap())
                }
                _ => None,
            })
            .expect("id-less request still answered via its handle");
        // The synthetic id stays off the wire: no fabricated RelatesTo.
        assert_eq!(reply.addressing().relates_to, None);
    }

    #[test]
    fn done_service_pays_nothing_for_later_events() {
        let svc = |ev: WsEvent, _ctx: &mut ServiceCtx<'_>| match ev {
            WsEvent::Init { .. } => Poll::Done,
            _ => unreachable!(),
        };
        let mut exec = ServiceExecutor::new(
            Box::new(svc),
            "x",
            uris(),
            WsCostModel::DEFAULT, // nonzero demarshal cost
        );
        let mut out = AppOutput::new(0, 0);
        exec.on_event(AppEvent::Init { seed: 1 }, &mut out);
        assert!(exec.is_done());
        exec.on_event(
            AppEvent::Request {
                handle: RequestHandle {
                    caller: GroupId(2),
                    req_no: 0,
                },
                payload: request_bytes("m1", "op", ""),
            },
            &mut out,
        );
        assert!(
            out.cmds()
                .iter()
                .all(|c| !matches!(c, pws_perpetual::AppCmd::Spend(_))),
            "no demarshal spend after Done: {:?}",
            out.cmds()
        );
        assert!(exec.state.handles.is_empty(), "no bookkeeping growth");
    }

    #[test]
    fn agreed_time_round_trips_with_token() {
        let svc = |ev: WsEvent, ctx: &mut ServiceCtx<'_>| match ev {
            WsEvent::Init { .. } => {
                let t = ctx.query_time();
                assert_eq!(t, TimeToken(0));
                Poll::time()
            }
            WsEvent::Time { token, millis } => {
                assert_eq!(token, TimeToken(0));
                assert_eq!(millis, 777);
                Poll::Done
            }
            _ => panic!("unexpected event"),
        };
        let mut exec = ServiceExecutor::new(Box::new(svc), "x", uris(), WsCostModel::FREE);
        let mut out = AppOutput::new(0, 0);
        exec.on_event(AppEvent::Init { seed: 1 }, &mut out);
        assert!(out
            .cmds()
            .iter()
            .any(|c| matches!(c, pws_perpetual::AppCmd::QueryTime { token: 0 })));
        exec.on_event(
            AppEvent::Time {
                token: 0,
                millis: 777,
            },
            &mut out,
        );
        assert!(exec.is_done());
    }

    /// A stateful service with a real snapshot/restore implementation.
    struct CountingService {
        count: u64,
    }
    impl Service for CountingService {
        fn snapshot(&self) -> Vec<u8> {
            self.count.to_be_bytes().to_vec()
        }
        fn restore(&mut self, snapshot: &[u8]) {
            let mut b = [0u8; 8];
            b.copy_from_slice(snapshot);
            self.count = u64::from_be_bytes(b);
        }
        fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
            if let WsEvent::Request { request } = ev {
                self.count += 1 + ctx.random_u64() % 2;
                let reply = request.reply_with(
                    "",
                    pws_soap::XmlNode::new("n").with_text(self.count.to_string()),
                );
                ctx.reply(reply, &request);
            }
            Poll::request()
        }
    }

    #[test]
    fn host_snapshot_restores_into_an_identical_replica() {
        let mk = || {
            ServiceExecutor::new(
                Box::new(CountingService { count: 0 }),
                "ctr",
                uris(),
                WsCostModel::FREE,
            )
        };
        let mut original = mk();
        let mut out = AppOutput::new(0, 0);
        original.on_event(AppEvent::Init { seed: 11 }, &mut out);
        for i in 0..3 {
            original.on_event(
                AppEvent::Request {
                    handle: RequestHandle {
                        caller: GroupId(9),
                        req_no: i,
                    },
                    payload: request_bytes(&format!("m{i}"), "op", "x"),
                },
                &mut out,
            );
        }
        let snap = original.snapshot();

        // A blank replica restores and must be byte-identical state-wise...
        let mut recovered = mk();
        recovered.restore(&snap);
        assert_eq!(recovered.snapshot(), snap, "restore is a fixed point");
        assert_eq!(
            recovered.service_mut::<CountingService>().unwrap().count,
            original.service_mut::<CountingService>().unwrap().count
        );

        // ...and behave identically from here on (same RNG position, same
        // reply payloads, same assigned ids).
        let next = |exec: &mut ServiceExecutor| {
            let mut out = AppOutput::new(10, 10);
            exec.on_event(
                AppEvent::Request {
                    handle: RequestHandle {
                        caller: GroupId(9),
                        req_no: 99,
                    },
                    payload: request_bytes("m99", "op", "x"),
                },
                &mut out,
            );
            format!("{:?}", out.cmds())
        };
        assert_eq!(next(&mut original), next(&mut recovered));
    }

    #[test]
    fn rng_restore_continues_the_stream_after_many_draws() {
        // The snapshot carries the raw RNG state, not a draw count to
        // replay: restoring after a long drawing history must be exact
        // (and O(1), not O(draws)).
        let mk = || {
            ServiceExecutor::new(
                Box::new(CountingService { count: 0 }),
                "ctr",
                uris(),
                WsCostModel::FREE,
            )
        };
        let mut original = mk();
        let mut out = AppOutput::new(0, 0);
        original.on_event(AppEvent::Init { seed: 7 }, &mut out);
        for _ in 0..50_000 {
            original.state.rng.next_u64();
        }
        let snap = original.snapshot();
        let mut recovered = mk();
        recovered.restore(&snap);
        for _ in 0..16 {
            assert_eq!(
                original.state.rng.next_u64(),
                recovered.state.rng.next_u64(),
                "restored stream diverged"
            );
        }
    }

    #[test]
    fn host_snapshot_preserves_queued_events_and_wait_state() {
        // A service waiting on a reply with a request held back in the
        // queue: the queue and wait set must survive the round-trip.
        let svc = Recorder {
            events: Vec::new(),
            poll: Poll::Next,
        };
        let mut exec = ServiceExecutor::new(Box::new(svc), "store", uris(), WsCostModel::FREE);
        let mut out = AppOutput::new(0, 0);
        exec.on_event(AppEvent::Init { seed: 5 }, &mut out);
        exec.service_mut::<Recorder>().unwrap().poll = Poll::reply(CallToken(0));
        exec.wait = Poll::Wait(crate::api::WaitSet::new().reply(CallToken(0)));
        exec.on_event(
            AppEvent::Request {
                handle: RequestHandle {
                    caller: GroupId(9),
                    req_no: 1,
                },
                payload: request_bytes("m1", "op", "x"),
            },
            &mut out,
        );
        assert_eq!(exec.queue.len(), 1, "request held back");
        let snap = exec.snapshot();

        let mut recovered = ServiceExecutor::new(
            Box::new(Recorder {
                events: Vec::new(),
                poll: Poll::Next,
            }),
            "store",
            uris(),
            WsCostModel::FREE,
        );
        recovered.restore(&snap);
        assert_eq!(recovered.queue.len(), 1, "queued event survived");
        assert_eq!(recovered.wait, Poll::reply(CallToken(0)), "wait survived");
        assert_eq!(recovered.snapshot(), snap);
    }

    #[test]
    fn rng_is_seeded_from_init_identically() {
        let mk = || {
            let svc = |_ev: WsEvent, _ctx: &mut ServiceCtx<'_>| Poll::Next;
            ServiceExecutor::new(Box::new(svc), "x", uris(), WsCostModel::FREE)
        };
        let mut a = mk();
        let mut b = mk();
        let mut out = AppOutput::new(0, 0);
        a.on_event(AppEvent::Init { seed: 9 }, &mut out);
        b.on_event(AppEvent::Init { seed: 9 }, &mut out);
        assert_eq!(a.state.rng.next_u64(), b.state.rng.next_u64());
        assert_eq!(a.state.rng.next_u64(), b.state.rng.next_u64());
    }
}
