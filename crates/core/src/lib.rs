//! # Perpetual-WS
//!
//! Byzantine fault-tolerant middleware for n-Tier and Service Oriented
//! Architecture Web Services — a Rust reproduction of Pallemulle & Goldman,
//! *"Byzantine Fault-Tolerant Web Services for n-Tier and Service Oriented
//! Architectures"* (WUCSE-2007-53 / ICDCS 2008).
//!
//! Perpetual-WS lets replicated Web Services call other replicated Web
//! Services while guaranteeing the safety and liveness of every correct
//! service, even when peers are compromised. It layers a SOAP /
//! WS-Addressing engine ([`pws_soap`]) over the Perpetual replica-group
//! protocol ([`pws_perpetual`]), which in turn runs Castro–Liskov BFT
//! ([`pws_clbft`]) inside each voter group.
//!
//! ## The programming model (paper §4)
//!
//! Applications are **deterministic, single-threaded** services written
//! against the [`MessageHandler`]-style API of the paper's Fig. 3:
//!
//! * [`ActiveService`] — a long-running thread of computation that may
//!   `send`, `receive_request`, `receive_reply`, `send_receive`, and
//!   `send_reply` in any order, with blocking semantics, plus deterministic
//!   [`ServiceApi::current_time_millis`], [`ServiceApi::timestamp`] and
//!   [`ServiceApi::random_u64`] utilities. This is what lets orchestration
//!   (SOA/BPEL-style) run *inside* a replicated service.
//! * [`PassiveService`] — the classic request→reply function, the model to
//!   which Thema/BFT-WS/SWS are limited; existing services of this shape
//!   run unmodified.
//!
//! ## Quickstart
//!
//! ```
//! use perpetual_ws::{SystemBuilder, PassiveService, PassiveUtils};
//! use pws_soap::MessageContext;
//! use pws_simnet::SimTime;
//!
//! struct Counter(u64);
//! impl PassiveService for Counter {
//!     fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
//!         self.0 += 1;
//!         let mut body = pws_soap::XmlNode::new("incrementResult");
//!         body.text = (self.0 - 1).to_string(); // return the old value
//!         req.reply_with("", body)
//!     }
//! }
//!
//! let mut b = SystemBuilder::new(42);
//! b.passive_service("counter", 4, |_| Box::new(Counter(0)));
//! b.scripted_client("rbe", "counter", 3); // fire 3 increments
//! let mut sys = b.build();
//! sys.run_until(SimTime::from_secs(10));
//! let replies = sys.client_replies("rbe");
//! assert_eq!(replies.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod api;
pub mod deployment;
pub mod features;
pub mod passive;
pub mod runtime;
pub mod wscost;

pub use active::{ActiveExecutor, ActiveService};
pub use api::{Incoming, MessageHandler, ServiceApi, Utils};
pub use deployment::{parse_replicas_xml, DeploymentError, ReplicasConfig, ServiceEntry};
pub use features::{feature_matrix, Approach, FeatureRow};
pub use passive::{PassiveService, PassiveUtils};
pub use pws_perpetual::{CostModel, FaultMode, GroupId};
pub use runtime::{ScriptedClient, System, SystemBuilder};
pub use wscost::WsCostModel;
