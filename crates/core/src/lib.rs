//! # Perpetual-WS
//!
//! Byzantine fault-tolerant middleware for n-Tier and Service Oriented
//! Architecture Web Services — a Rust reproduction of Pallemulle & Goldman,
//! *"Byzantine Fault-Tolerant Web Services for n-Tier and Service Oriented
//! Architectures"* (WUCSE-2007-53 / ICDCS 2008).
//!
//! Perpetual-WS lets replicated Web Services call other replicated Web
//! Services while guaranteeing the safety and liveness of every correct
//! service, even when peers are compromised. It layers a SOAP /
//! WS-Addressing engine ([`pws_soap`]) over the Perpetual replica-group
//! protocol ([`pws_perpetual`]), which in turn runs Castro–Liskov BFT
//! (`pws-clbft`) inside each voter group.
//!
//! ## The programming model (paper §4, poll-driven)
//!
//! Applications are **deterministic, sans-IO state machines** written
//! against the [`Service`] trait — the paper's Fig. 3 API recast so the
//! runtime *polls* the service with agreed [`WsEvent`]s and the service
//! *returns* what it waits on:
//!
//! * [`Service::on_event`] receives one agreed event, issues commands
//!   through the [`ServiceCtx`] ([`ServiceCtx::send`],
//!   [`ServiceCtx::reply`], [`ServiceCtx::spend`],
//!   [`ServiceCtx::query_time`], [`ServiceCtx::random_u64`]) and answers
//!   with a [`Poll`] continuation: [`Poll::Next`] for anything,
//!   [`Poll::Wait`] with a `select`-like [`WaitSet`] (reply-for-token,
//!   next-request, agreed-time), or [`Poll::Done`].
//! * [`ServiceCtx::send`] returns a [`CallToken`]; any number of calls may
//!   be in flight, which makes the paper's §5 asynchronous invocation (and
//!   SOA/BPEL-style orchestration *inside* a replicated service) first
//!   class.
//! * [`PassiveService`] — the classic request→reply function, the model to
//!   which Thema/BFT-WS/SWS are limited; existing services of this shape
//!   run unmodified as the trivial one-shot case ([`PassiveHost`]).
//!
//! The whole deployment — every replica of every group — runs on the
//! simulation thread. Determinism does not depend on a thread-alternation
//! protocol; it is structural.
//!
//! ### Migrating from the thread API
//!
//! Earlier revisions ran each replica's service on a dedicated OS thread
//! with blocking `receive_request()` / `receive_reply_for()` calls. The
//! mapping to the poll model is mechanical:
//!
//! | thread API (old) | poll API (new) |
//! |---|---|
//! | `fn run(self, api)` loop | [`Service::on_event`] per event |
//! | `api.receive_request()` | return [`Poll::request`], handle [`WsEvent::Request`] |
//! | `api.receive_reply_for(id)` | return [`Poll::reply`]`(token)`, handle [`WsEvent::Reply`] |
//! | `api.send_receive(req)` | [`ServiceCtx::send`] + [`Poll::reply`] (requests queue meanwhile) |
//! | `api.receive_any()` | return [`Poll::Next`] |
//! | `api.current_time_millis()` | [`ServiceCtx::query_time`] + [`Poll::time`], handle [`WsEvent::Time`] |
//! | `api.send_reply(rep, &req)` | [`ServiceCtx::reply`] |
//! | returning from `run` | return [`Poll::Done`] |
//!
//! Blocked-state bookkeeping that used to live on the thread's stack
//! becomes explicit service state — and in exchange a deployment of G
//! groups × (3f+1) replicas costs zero threads instead of G·(3f+1).
//!
//! ## Quickstart
//!
//! ```
//! use perpetual_ws::{SystemBuilder, PassiveService, PassiveUtils};
//! use pws_soap::MessageContext;
//! use pws_simnet::SimTime;
//!
//! struct Counter(u64);
//! impl PassiveService for Counter {
//!     fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
//!         self.0 += 1;
//!         let mut body = pws_soap::XmlNode::new("incrementResult");
//!         body.text = (self.0 - 1).to_string(); // return the old value
//!         req.reply_with("", body)
//!     }
//! }
//!
//! let mut b = SystemBuilder::new(42);
//! b.passive_service("counter", 4, |_| Box::new(Counter(0)));
//! b.scripted_client("rbe", "counter", 3); // fire 3 increments
//! let mut sys = b.build();
//! sys.run_until(SimTime::from_secs(10));
//! let replies = sys.client_replies("rbe");
//! assert_eq!(replies.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod api;
pub mod deployment;
pub mod features;
pub mod host;
pub mod passive;
pub mod router;
pub mod runtime;
pub mod txn;
pub mod wscost;

pub use api::{CallToken, Poll, Service, TimeToken, WaitSet, WsEvent};
pub use deployment::{parse_replicas_xml, DeploymentError, ReplicasConfig, ServiceEntry};
pub use features::{feature_matrix, Approach, FeatureRow};
pub use host::{ServiceCtx, ServiceExecutor};
pub use passive::{PassiveHost, PassiveService, PassiveUtils};
pub use pws_perpetual::{CostModel, FaultMode, GroupId};
pub use pws_simnet::{
    AuditEvent, AuditMode, FlightKind, Phase, ProtoFamily, ProtoKey, TraceLevel, Violation,
    AUDIT_VIOLATIONS_KEY,
};
pub use router::{routing_key, RendezvousRouter, RouteError, Router, RouterEpoch};
pub use runtime::{ScriptedClient, System, SystemBuilder, UriMap};
pub use txn::{TxnService, TxnShim, TXN_ABORTED_FAULT, WRONG_SHARD_FAULT};
pub use wscost::WsCostModel;
