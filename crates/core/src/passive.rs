//! Passive services: the request→reply model of Thema/BFT-WS/SWS.
//!
//! "Thema, BFT-WS, SWS, and Perpetual-WS can all replicate existing passive
//! deterministic Web Services ... without modification to the application
//! code" (§3). Under the poll-driven runtime a passive service is just the
//! trivial one-shot case of the [`Service`] trait: the [`PassiveHost`]
//! adapter waits on requests only, calls [`PassiveService::handle`] once
//! per request, replies, and waits again.

use crate::api::{Poll, Service, WsEvent};
use crate::host::ServiceCtx;
use pws_simnet::SimDuration;
use pws_soap::MessageContext;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Deterministic utilities available to a passive service while it handles
/// one request.
///
/// Passive services cannot wait, so the voted `currentTimeMillis` of the
/// active model is unavailable; deterministic randomness and simulated
/// computation are.
#[derive(Debug)]
pub struct PassiveUtils {
    rng: StdRng,
    spend: SimDuration,
}

impl PassiveUtils {
    /// Deterministic randomness from the group-agreed seed.
    pub fn random_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Burns simulated CPU time while handling this request (drives the
    /// Fig. 8 experiment's processing-time knob).
    pub fn spend(&mut self, d: SimDuration) {
        self.spend += d;
    }
}

/// A deterministic request→reply Web Service.
pub trait PassiveService: 'static {
    /// Handles one request, returning the reply.
    fn handle(&mut self, request: MessageContext, utils: &mut PassiveUtils) -> MessageContext;

    /// Captures the service's state at a sequence boundary (checkpointing
    /// and state transfer). Same contract as [`crate::Service::snapshot`]:
    /// deterministic bytes, and the default (empty) is only correct for
    /// stateless services.
    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores a previously captured [`PassiveService::snapshot`].
    fn restore(&mut self, _snapshot: &[u8]) {}
}

impl<F> PassiveService for F
where
    F: FnMut(MessageContext, &mut PassiveUtils) -> MessageContext + 'static,
{
    fn handle(&mut self, request: MessageContext, utils: &mut PassiveUtils) -> MessageContext {
        self(request, utils)
    }
}

/// Adapter hosting a [`PassiveService`] as a poll-driven [`Service`].
pub struct PassiveHost {
    service: Box<dyn PassiveService>,
}

impl std::fmt::Debug for PassiveHost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassiveHost").finish_non_exhaustive()
    }
}

impl PassiveHost {
    /// Wraps `service`.
    pub fn new(service: Box<dyn PassiveService>) -> Self {
        PassiveHost { service }
    }
}

impl Service for PassiveHost {
    fn snapshot(&self) -> Vec<u8> {
        self.service.snapshot()
    }

    fn restore(&mut self, snapshot: &[u8]) {
        self.service.restore(snapshot);
    }

    fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
        if let WsEvent::Request { request } = ev {
            // A fresh per-request RNG derived from the agreed stream keeps
            // randomness deterministic and identical across replicas.
            let mut utils = PassiveUtils {
                rng: StdRng::seed_from_u64(ctx.random_u64()),
                spend: SimDuration::ZERO,
            };
            let reply = self.service.handle(request.clone(), &mut utils);
            ctx.spend(utils.spend);
            ctx.reply(reply, &request);
        }
        Poll::request()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::ServiceExecutor;
    use crate::runtime::UriMap;
    use crate::wscost::WsCostModel;
    use bytes::Bytes;
    use pws_perpetual::{AppEvent, AppOutput, Executor, GroupId, RequestHandle};
    use pws_soap::XmlNode;
    use std::sync::Arc;

    fn host(service: impl PassiveService) -> ServiceExecutor {
        ServiceExecutor::new(
            Box::new(PassiveHost::new(Box::new(service))),
            "counter",
            Arc::new(UriMap::default()),
            WsCostModel::FREE,
        )
    }

    fn request_event(id: &str, text: &str) -> AppEvent {
        let mut mc = MessageContext::request("urn:svc:counter", "increment");
        mc.addressing_mut().message_id = Some(id.into());
        mc.addressing_mut().reply_to = Some("urn:svc:client".into());
        mc.body_mut().text = text.into();
        AppEvent::Request {
            handle: RequestHandle {
                caller: GroupId(1),
                req_no: 0,
            },
            payload: mc.to_bytes().unwrap(),
        }
    }

    #[test]
    fn passive_service_replies_with_correlation() {
        let svc = |req: MessageContext, _u: &mut PassiveUtils| {
            req.reply_with("", XmlNode::new("result").with_text("done"))
        };
        let mut exec = host(svc);
        let mut out = AppOutput::new(0, 0);
        exec.on_event(AppEvent::Init { seed: 1 }, &mut out);
        exec.on_event(request_event("m9", "x"), &mut out);
        let replies: Vec<_> = out
            .cmds()
            .iter()
            .filter_map(|c| match c {
                pws_perpetual::AppCmd::Reply { payload, .. } => Some(payload.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(replies.len(), 1);
        let mc = MessageContext::from_bytes(&replies[0]).unwrap();
        assert_eq!(mc.addressing().relates_to.as_deref(), Some("m9"));
        assert_eq!(mc.addressing().to.as_deref(), Some("urn:svc:client"));
        assert_eq!(mc.body().text, "done");
    }

    #[test]
    fn utils_spend_accumulates_into_output() {
        let svc = |req: MessageContext, u: &mut PassiveUtils| {
            u.spend(SimDuration::from_millis(6));
            req.reply_with("", XmlNode::new("r"))
        };
        let mut exec = host(svc);
        let mut out = AppOutput::new(0, 0);
        exec.on_event(AppEvent::Init { seed: 1 }, &mut out);
        exec.on_event(request_event("m1", ""), &mut out);
        let spent: Vec<_> = out
            .cmds()
            .iter()
            .filter(|c| matches!(c, pws_perpetual::AppCmd::Spend(d) if *d == SimDuration::from_millis(6)))
            .collect();
        assert_eq!(spent.len(), 1);
    }

    #[test]
    fn per_request_rng_is_deterministic_across_replicas() {
        let mk = || {
            host(|req: MessageContext, u: &mut PassiveUtils| {
                req.reply_with("", XmlNode::new("r").with_text(u.random_u64().to_string()))
            })
        };
        let run = |mut exec: ServiceExecutor| {
            let mut out = AppOutput::new(0, 0);
            exec.on_event(AppEvent::Init { seed: 77 }, &mut out);
            exec.on_event(request_event("m1", ""), &mut out);
            exec.on_event(request_event("m2", ""), &mut out);
            out.cmds()
                .iter()
                .filter_map(|c| match c {
                    pws_perpetual::AppCmd::Reply { payload, .. } => Some(
                        MessageContext::from_bytes(payload)
                            .unwrap()
                            .body()
                            .text
                            .clone(),
                    ),
                    _ => None,
                })
                .collect::<Vec<_>>()
        };
        let a = run(mk());
        let b = run(mk());
        assert_eq!(a, b);
        assert_ne!(a[0], a[1], "distinct randomness per request");
    }

    #[test]
    fn malformed_requests_are_dropped() {
        let svc =
            |req: MessageContext, _u: &mut PassiveUtils| req.reply_with("", XmlNode::new("r"));
        let mut exec = host(svc);
        let mut out = AppOutput::new(0, 0);
        exec.on_event(AppEvent::Init { seed: 1 }, &mut out);
        exec.on_event(
            AppEvent::Request {
                handle: RequestHandle {
                    caller: GroupId(1),
                    req_no: 0,
                },
                payload: Bytes::from_static(b"\xff\xff"),
            },
            &mut out,
        );
        assert!(out
            .cmds()
            .iter()
            .all(|c| !matches!(c, pws_perpetual::AppCmd::Reply { .. })));
    }
}
