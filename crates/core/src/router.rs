//! Sharded service groups: deterministic key→shard routing.
//!
//! One CLBFT voter group orders one log, so a single replicated service
//! tops out at one group's agreement rate. Sharding splits a *logical*
//! service across `S` independently-agreeing voter groups and routes each
//! request to the shard that owns its key, multiplying every per-group
//! subsystem (batching, checkpointing, recovery) by `S`.
//!
//! The [`Router`] decides ownership. It must be:
//!
//! * **deterministic and seed-independent** — every client, every calling
//!   replica, and every shard replica derives the same owner for a key
//!   from the key alone, with no shared state and no RNG;
//! * **stable under growth** — going from `S` to `S + 1` shards moves only
//!   the keys the new shard wins (≈ `1/(S+1)` of them), never reshuffling
//!   keys between existing shards;
//! * **balanced** — keys spread across shards within a documented bound
//!   (see [`RendezvousRouter`]).
//!
//! The default [`RendezvousRouter`] implements highest-random-weight
//! (rendezvous) hashing: each shard's claim on a key is a hash of
//! `(key, shard)` and the highest claim wins, which gives all three
//! properties by construction.
//!
//! The **routing key** of a request is its SOAP body text (the entity id
//! idiom used throughout this workspace: the TPC-W session, the bench
//! sequence number). A request may name several entity keys joined with
//! `|`; if they all map to one shard it routes there. Keys spanning shards
//! are rejected with the typed [`RouteError::CrossShard`] for plain
//! sharded services, or routed to the first key's owner — the
//! **coordinator** of a two-phase commit — for transactional ones (see
//! [`crate::txn`]). [`RouterEpoch`] versions the active shard count so
//! live resharding can grow a deployment without rebuilding it.

use pws_soap::MessageContext;
use std::fmt;

/// Deterministic key→shard assignment over `shards` shards (`0..shards`).
///
/// Implementations must be pure functions of `(key, shards)`: no seeds, no
/// interior mutability, identical answers at every node of a deployment.
/// (`Send + Sync` so the deployment-wide `UriMap` holding the router stays
/// shareable.)
pub trait Router: Send + Sync {
    /// The shard (in `0..shards`) that owns `key`.
    ///
    /// Must return the same value for the same `(key, shards)` forever;
    /// callers (clients, calling replicas, and the shards themselves when
    /// they audit ownership) all rely on agreeing without coordination.
    fn shard(&self, key: &str, shards: u32) -> u32;
}

use pws_simnet::splitmix64 as mix64;

/// FNV-1a over the key bytes: a seedless, allocation-free string hash; the
/// shared SplitMix64 finalizer ([`pws_simnet::splitmix64`]) supplies the
/// avalanche FNV lacks and decorrelates the shard index from the key hash,
/// so rendezvous claims behave like independent uniform draws.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in bytes {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Highest-random-weight (rendezvous) hashing over the shard indices.
///
/// Every shard computes a claim `mix(hash(key) ^ mix(shard))` and the
/// highest claim owns the key (ties break toward the lower index, though a
/// tie needs a 64-bit hash collision). Growing the shard count from `S` to
/// `S + 1` can only move keys whose new highest claim *is* shard `S` —
/// about `1/(S + 1)` of the key space — which is the minimal possible
/// movement; keys never migrate between pre-existing shards.
///
/// **Balance bound** (asserted by the router property tests): over any
/// corpus of at least 1 000 distinct keys, every shard receives between
/// 0.5× and 2× the fair share `keys/shards` for shard counts up to 16.
/// The expected deviation is `O(sqrt(keys/shards))`, so real corpora sit
/// far inside the bound.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RendezvousRouter;

impl RendezvousRouter {
    /// The canonical router instance.
    pub const fn new() -> Self {
        RendezvousRouter
    }
}

impl Router for RendezvousRouter {
    fn shard(&self, key: &str, shards: u32) -> u32 {
        if shards <= 1 {
            return 0;
        }
        let kh = fnv1a(key.as_bytes());
        let mut best = (0u32, mix64(kh ^ mix64(0)));
        for s in 1..shards {
            let claim = mix64(kh ^ mix64(s as u64));
            if claim > best.1 {
                best = (s, claim);
            }
        }
        best.0
    }
}

/// Extracts a request's routing key: the SOAP body text, the workspace's
/// entity-id idiom. An empty body routes on the empty key — still
/// deterministic, every such request landing on one shard.
pub fn routing_key(request: &MessageContext) -> &str {
    request.body().text.as_str()
}

/// Splits a routing key into the entity keys it names (`|`-separated).
/// Single-key requests — the overwhelmingly common case — yield themselves.
pub fn split_keys(key: &str) -> impl Iterator<Item = &str> {
    key.split('|')
}

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

/// An epoch-versioned view over a [`Router`]: the pure key→shard function
/// paired with the deployment's current **active shard count**, which live
/// resharding advances at the flip point.
///
/// The epoch is advisory routing for *clients and callers*: shards
/// themselves never read it for agreed-execution decisions (they track the
/// shard count through ordered reshard records — see [`crate::txn`]), so a
/// replica replaying its log after recovery re-derives identical routing
/// no matter when the atomic advanced. Epochs only grow; routing within
/// one epoch is a pure function of the key (property-tested in
/// `router_prop.rs`), and advancing from `S` to `S + 1` re-routes exactly
/// the keys whose rendezvous winner is the new shard.
#[derive(Clone, Debug)]
pub struct RouterEpoch {
    router: Arc<dyn Router>,
    active: Arc<AtomicU32>,
}

impl RouterEpoch {
    /// Wraps `router` with an initial active shard count.
    pub fn new(router: Arc<dyn Router>, active_shards: u32) -> Self {
        RouterEpoch {
            router,
            active: Arc::new(AtomicU32::new(active_shards.max(1))),
        }
    }

    /// The underlying pure router.
    pub fn router(&self) -> Arc<dyn Router> {
        Arc::clone(&self.router)
    }

    /// The current active shard count (the epoch).
    pub fn epoch(&self) -> u32 {
        self.active.load(Ordering::SeqCst)
    }

    /// Advances the epoch to `new_count`. Epochs only grow; a stale (lower)
    /// value is ignored so racing flips cannot regress routing.
    pub fn advance(&self, new_count: u32) {
        self.active.fetch_max(new_count, Ordering::SeqCst);
    }

    /// Routes `key` at the current epoch.
    pub fn shard(&self, key: &str) -> u32 {
        self.router.shard(key, self.epoch())
    }
}

impl std::fmt::Debug for dyn Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Router")
    }
}

/// Why a request could not be routed to a shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// The URI names no registered service (sharded or not).
    UnknownService {
        /// The unresolvable URI.
        uri: String,
    },
    /// The request names entity keys owned by different shards. Perpetual
    /// sharding supports single-shard operations only (cross-shard
    /// transactions would need a coordination layer on top); callers see
    /// this as a deterministic abort fault.
    CrossShard {
        /// The target service URI.
        uri: String,
        /// The distinct owning shards the request's keys map to.
        shards: Vec<u32>,
    },
}

impl fmt::Display for RouteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouteError::UnknownService { uri } => write!(f, "unknown service '{uri}'"),
            RouteError::CrossShard { uri, shards } => write!(
                f,
                "cross-shard request to '{uri}' (keys span shards {shards:?}); \
                 single-shard operations only"
            ),
        }
    }
}

impl std::error::Error for RouteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_is_trivial() {
        let r = RendezvousRouter::new();
        for key in ["", "a", "42", "customer-9"] {
            assert_eq!(r.shard(key, 1), 0);
            assert_eq!(r.shard(key, 0), 0, "degenerate count clamps to 0");
        }
    }

    #[test]
    fn assignment_is_deterministic_and_instance_independent() {
        let a = RendezvousRouter::new();
        let b = RendezvousRouter;
        for i in 0..500u32 {
            let key = format!("key-{i}");
            let s = a.shard(&key, 4);
            assert!(s < 4);
            assert_eq!(s, b.shard(&key, 4), "instances must agree");
            assert_eq!(s, a.shard(&key, 4), "repeat calls must agree");
        }
    }

    #[test]
    fn growth_moves_only_keys_claimed_by_the_new_shard() {
        let r = RendezvousRouter::new();
        for grown in 2..=8u32 {
            let old = grown - 1;
            let mut moved = 0u32;
            for i in 0..2_000u32 {
                let key = format!("entity:{i}");
                let before = r.shard(&key, old);
                let after = r.shard(&key, grown);
                if after != before {
                    assert_eq!(
                        after,
                        grown - 1,
                        "a moved key may only move to the new shard"
                    );
                    moved += 1;
                }
            }
            // Expect ~2000/grown moves; allow a generous band.
            let expect = 2_000 / grown;
            assert!(
                moved > expect / 3 && moved < expect * 3,
                "{old}->{grown}: moved {moved}, expected ~{expect}"
            );
        }
    }

    #[test]
    fn balance_within_documented_bound() {
        let r = RendezvousRouter::new();
        for shards in [2u32, 4, 8, 16] {
            let keys = 4_000u32;
            let mut counts = vec![0u32; shards as usize];
            for i in 0..keys {
                counts[r.shard(&format!("k{i}"), shards) as usize] += 1;
            }
            let fair = keys / shards;
            for (s, c) in counts.iter().enumerate() {
                assert!(
                    *c * 2 >= fair && *c <= fair * 2,
                    "shard {s}/{shards}: {c} keys vs fair {fair}"
                );
            }
        }
    }

    #[test]
    fn routing_key_is_the_body_text() {
        let mut mc = MessageContext::request("urn:svc:x", "op");
        mc.body_mut().text = "customer-7".into();
        assert_eq!(routing_key(&mc), "customer-7");
        assert_eq!(split_keys("a|b|a").collect::<Vec<_>>(), vec!["a", "b", "a"]);
        assert_eq!(split_keys("solo").collect::<Vec<_>>(), vec!["solo"]);
    }

    #[test]
    fn router_epoch_only_grows_and_routes_at_current_count() {
        let e = RouterEpoch::new(Arc::new(RendezvousRouter::new()), 2);
        assert_eq!(e.epoch(), 2);
        for i in 0..64 {
            let key = format!("k{i}");
            assert_eq!(e.shard(&key), e.router().shard(&key, 2));
        }
        e.advance(3);
        assert_eq!(e.epoch(), 3);
        e.advance(2); // stale flips are ignored
        assert_eq!(e.epoch(), 3);
        for i in 0..64 {
            let key = format!("k{i}");
            assert_eq!(e.shard(&key), e.router().shard(&key, 3));
        }
        let degenerate = RouterEpoch::new(Arc::new(RendezvousRouter::new()), 0);
        assert_eq!(degenerate.epoch(), 1, "zero clamps to one shard");
    }

    #[test]
    fn route_errors_display() {
        let e = RouteError::UnknownService {
            uri: "urn:svc:ghost".into(),
        };
        assert!(e.to_string().contains("unknown service"));
        let e = RouteError::CrossShard {
            uri: "urn:svc:acc".into(),
            shards: vec![0, 2],
        };
        assert!(e.to_string().contains("cross-shard"));
        assert!(e.to_string().contains("[0, 2]"));
    }
}
