//! Deployment runtime: assemble services, clients, and the simulated
//! network into a runnable [`System`].

use crate::api::Service;
use crate::host::ServiceExecutor;
use crate::passive::{PassiveHost, PassiveService};
use crate::router::{routing_key, split_keys, RendezvousRouter, RouteError, Router, RouterEpoch};
use crate::txn::{
    decode_entries, from_hex, to_hex, ReshardExport, ReshardImport, TxnService, TxnShim,
    OP_RESHARD_EXPORT, OP_RESHARD_IMPORT, WRONG_SHARD_FAULT,
};
use crate::wscost::WsCostModel;
use bytes::Bytes;
use pws_perpetual::{
    ClientCore, ClientEvent, CostModel, Executor, FaultMode, GroupId, PerpetualReplica,
    ReplicaConfig, Topology,
};
use pws_simnet::{
    escape_json, fmt_f64, AuditMode, Auditor, Context, LinkConfig, NetConfig, Node, NodeId,
    ProtoFamily, ProtoKey, RunOutcome, SimDuration, SimTime, Simulation, TraceLevel,
};
use pws_soap::engine::Engine;
use pws_soap::MessageContext;
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

/// The hidden client that drives live reshard migrations.
const RESHARD_CONTROLLER: &str = "reshard-controller";

/// One logical sharded service: its provisioned shard groups in shard
/// order (active shards first, then dormant spares), the epoch-versioned
/// router assigning keys to the *active* prefix, and whether cross-shard
/// keys coordinate a transaction instead of being rejected.
#[derive(Clone)]
struct ShardedEntry {
    shards: Vec<GroupId>,
    epoch: RouterEpoch,
    txn: bool,
}

/// Maps service URIs (`urn:svc:<name>`) to replica groups — directly for
/// ordinary services, through a deterministic key [`Router`] for sharded
/// ones (see [`crate::router`]).
#[derive(Default, Clone)]
pub struct UriMap {
    by_uri: HashMap<String, GroupId>,
    sharded: HashMap<String, ShardedEntry>,
}

impl std::fmt::Debug for UriMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UriMap")
            .field("services", &self.by_uri.len())
            .field("sharded", &self.sharded.len())
            .finish()
    }
}

impl UriMap {
    /// Registers service `name` as `urn:svc:<name>`.
    pub fn insert(&mut self, name: &str, group: GroupId) {
        self.by_uri.insert(format!("urn:svc:{name}"), group);
    }

    /// Registers logical service `name` as sharded across `shards` (in
    /// shard order), routed by `router`. Each shard is also registered
    /// directly under its shard-qualified name (`name#<k>`), so a caller
    /// that has already pinned a shard can address it like any service.
    pub fn insert_sharded(&mut self, name: &str, shards: Vec<GroupId>, router: Arc<dyn Router>) {
        let epoch = RouterEpoch::new(router, shards.len() as u32);
        self.insert_sharded_elastic(name, shards, epoch, false);
    }

    /// [`UriMap::insert_sharded`] with an explicit [`RouterEpoch`] (whose
    /// active count may be *smaller* than `shards.len()` — the suffix are
    /// dormant spares awaiting live resharding) and a transaction flag:
    /// when `txn` is set, cross-shard keys route to the first key's owner
    /// (the 2PC coordinator) instead of raising
    /// [`RouteError::CrossShard`].
    pub fn insert_sharded_elastic(
        &mut self,
        name: &str,
        shards: Vec<GroupId>,
        epoch: RouterEpoch,
        txn: bool,
    ) {
        for (k, gid) in shards.iter().enumerate() {
            self.insert(&format!("{name}#{k}"), *gid);
        }
        self.sharded.insert(
            format!("urn:svc:{name}"),
            ShardedEntry { shards, epoch, txn },
        );
    }

    /// Resolves a URI to its group. Returns `None` for unknown URIs *and*
    /// for sharded logical URIs, which need a key — use [`UriMap::route`].
    pub fn group(&self, uri: &str) -> Option<GroupId> {
        self.by_uri.get(uri).copied()
    }

    /// Number of *provisioned* shards behind a sharded logical URI —
    /// dormant spares included (`None` if `uri` is not sharded). See
    /// [`UriMap::active_shards`] for the routable count.
    pub fn shard_count(&self, uri: &str) -> Option<u32> {
        self.sharded.get(uri).map(|e| e.shards.len() as u32)
    }

    /// Number of *active* (routable) shards behind a sharded logical URI
    /// at the current epoch.
    pub fn active_shards(&self, uri: &str) -> Option<u32> {
        self.sharded
            .get(uri)
            .map(|e| e.epoch.epoch().min(e.shards.len() as u32))
    }

    /// The epoch handle of a sharded logical URI (shared with every clone
    /// of this map), for observing or advancing the active shard count.
    pub fn epoch_handle(&self, uri: &str) -> Option<RouterEpoch> {
        self.sharded.get(uri).map(|e| e.epoch.clone())
    }

    /// The shard groups behind a sharded logical URI, in shard order.
    pub fn shard_groups(&self, uri: &str) -> Option<&[GroupId]> {
        self.sharded.get(uri).map(|e| e.shards.as_slice())
    }

    /// Routes a request key to its owning group: directly for ordinary
    /// services, through the service's [`Router`] for sharded ones.
    /// Returns `(shard index, group)`; the index is 0 for unsharded
    /// services.
    ///
    /// # Errors
    ///
    /// [`RouteError::UnknownService`] if `uri` resolves to nothing, and
    /// [`RouteError::CrossShard`] if the key names entities owned by
    /// different shards of a non-transactional service. Transactional
    /// sharded services route cross-shard keys to the **first** key's
    /// owner, which coordinates a two-phase commit (see [`crate::txn`]).
    pub fn route(&self, uri: &str, key: &str) -> Result<(u32, GroupId), RouteError> {
        if let Some(gid) = self.by_uri.get(uri) {
            return Ok((0, *gid));
        }
        let Some(entry) = self.sharded.get(uri) else {
            return Err(RouteError::UnknownService {
                uri: uri.to_owned(),
            });
        };
        let shards = entry.epoch.epoch().min(entry.shards.len() as u32);
        let router = entry.epoch.router();
        let mut owner: Option<u32> = None;
        let mut spread: Vec<u32> = Vec::new();
        for k in split_keys(key) {
            let s = router.shard(k, shards);
            if owner.is_none_or(|o| o == s) {
                owner = Some(s);
            } else if !spread.contains(&s) {
                spread.push(s);
            }
        }
        if let Some(extra) = owner.filter(|_| !spread.is_empty()) {
            if entry.txn {
                // Coordinator = the first key's owner (`extra` holds the
                // first owner seen; keys after it never overwrite it).
                return Ok((extra, entry.shards[extra as usize]));
            }
            spread.insert(0, extra);
            spread.sort_unstable();
            return Err(RouteError::CrossShard {
                uri: uri.to_owned(),
                shards: spread,
            });
        }
        let s = owner.unwrap_or(0);
        Ok((s, entry.shards[s as usize]))
    }
}

/// The canonical URI of a service.
pub fn service_uri(name: &str) -> String {
    format!("urn:svc:{name}")
}

/// The default network for Perpetual-WS deployments: the paper's Gigabit
/// LAN (78 µs ping RTT) *plus* the per-hop latency of the 2007-era
/// SOAP-over-SSL stack (JSSE record processing, servlet dispatch, kernel
/// crossings) that a raw ping does not see. This latency is pipelined away
/// by asynchronous messaging, which is what gives Fig. 9 its headroom.
pub fn default_ws_net() -> NetConfig {
    NetConfig::new(LinkConfig {
        base: SimDuration::from_micros(250),
        per_byte_us: 0.008,
        jitter: SimDuration::from_micros(25),
        drop_probability: 0.0,
    })
}

enum Factory {
    Service(Box<dyn FnMut(u32) -> Box<dyn Service>>),
    Passive(Box<dyn FnMut(u32) -> Box<dyn PassiveService>>),
    /// Sharded factories receive `(shard, replica)`.
    ShardedService(Box<dyn FnMut(u32, u32) -> Box<dyn Service>>),
    ShardedPassive(Box<dyn FnMut(u32, u32) -> Box<dyn PassiveService>>),
    /// Transactional sharded services are wrapped in a [`TxnShim`].
    Txn(Box<dyn FnMut(u32, u32) -> Box<dyn TxnService>>),
}

struct ServiceSpec {
    name: String,
    n: u32,
    /// Active shard count at build time; 1 for ordinary services.
    shards: u32,
    /// Dormant spare shards provisioned for live resharding
    /// ([`SystemBuilder::add_shard`]); transactional services only.
    spares: u32,
    /// The key router for sharded services (`None` for ordinary ones).
    router: Option<Arc<dyn Router>>,
    factory: Factory,
    /// Faults keyed by `(shard, replica)`; shard 0 for ordinary services.
    faults: HashMap<(u32, u32), FaultMode>,
}

struct ClientSpec {
    name: String,
    kind: ClientKind,
}

enum ClientKind {
    Scripted {
        target: String,
        total: u64,
        window: u64,
        op: String,
        payload: String,
        timeout: Option<SimDuration>,
    },
    /// Custom unreplicated endpoint (e.g. a TPC-W remote browser emulator):
    /// built from the wired-up `ClientCore` and the URI map.
    Custom(Box<dyn FnOnce(ClientCore, Arc<UriMap>) -> Box<dyn Node>>),
}

/// Builds a Perpetual-WS deployment.
///
/// See the [crate docs](crate) for a complete example.
pub struct SystemBuilder {
    seed: u64,
    cost: CostModel,
    ws_cost: WsCostModel,
    net: Option<NetConfig>,
    view_timeout: SimDuration,
    retry_interval: SimDuration,
    max_batch_size: usize,
    batch_delay: SimDuration,
    checkpoint_interval: u64,
    watermark_window: u64,
    page_size: u32,
    recovery_window: Option<SimDuration>,
    reply_retention: Option<usize>,
    speculative: bool,
    read_only_quorum: Option<usize>,
    trace: TraceLevel,
    flight_capacity: Option<usize>,
    audit: Option<AuditMode>,
    services: Vec<ServiceSpec>,
    clients: Vec<ClientSpec>,
}

/// Resolves the `PWS_AUDIT` / `PWS_AUDIT_SMOKE` environment opt-in used
/// when [`SystemBuilder::audit`] was not called: `1`/`record`/`on` audit
/// and keep running, `strict`/`panic` fail the run at the first violation
/// (`PWS_AUDIT_SMOKE=1` is the CI alias for strict).
fn audit_mode_from_env() -> Option<AuditMode> {
    if let Ok(v) = std::env::var("PWS_AUDIT") {
        return match v.to_ascii_lowercase().as_str() {
            "1" | "record" | "on" => Some(AuditMode::Record),
            "strict" | "panic" => Some(AuditMode::Strict),
            _ => None,
        };
    }
    std::env::var("PWS_AUDIT_SMOKE")
        .is_ok_and(|v| v == "1")
        .then_some(AuditMode::Strict)
}

impl std::fmt::Debug for SystemBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemBuilder")
            .field("seed", &self.seed)
            .field("services", &self.services.len())
            .field("clients", &self.clients.len())
            .finish_non_exhaustive()
    }
}

impl SystemBuilder {
    /// A builder with the default (paper-calibrated) cost models and LAN.
    pub fn new(seed: u64) -> Self {
        SystemBuilder {
            seed,
            cost: CostModel::DEFAULT,
            ws_cost: WsCostModel::DEFAULT,
            net: None,
            view_timeout: SimDuration::from_millis(400),
            retry_interval: SimDuration::from_millis(700),
            max_batch_size: 16,
            batch_delay: SimDuration::from_millis(1),
            checkpoint_interval: 64,
            watermark_window: 256,
            page_size: pws_perpetual::DEFAULT_PAGE_SIZE,
            recovery_window: None,
            reply_retention: None,
            speculative: false,
            read_only_quorum: None,
            trace: TraceLevel::Off,
            flight_capacity: None,
            audit: None,
            services: Vec::new(),
            clients: Vec::new(),
        }
    }

    /// Sets the observability trace level for the deployment.
    ///
    /// At [`TraceLevel::Phases`] every client-visible request gets a
    /// lifecycle span (queued → … → replied) with per-phase latency
    /// histograms; [`TraceLevel::Full`] additionally keeps every
    /// per-sighting event for chrome://tracing export
    /// ([`System::export_trace_json`]). Tracing is a pure side channel:
    /// enabling it at any level leaves the simulation's event schedule —
    /// and therefore its trace digest — byte-identical.
    pub fn tracing(&mut self, level: TraceLevel) -> &mut Self {
        self.trace = level;
        self
    }

    /// Enables the online protocol invariant auditor for the deployment.
    ///
    /// The auditor consumes replica-emitted protocol observations at
    /// runtime and cross-checks the safety invariants the paper's protocol
    /// promises (exactly-once delivery, no commit without a prepare
    /// certificate, no slot divergence across views, checkpoint stability
    /// quorums, 2PC decision agreement — see `pws_obs::Auditor`).
    /// Violations bump `obs.audit.violations`, capture a flight-recorder
    /// dump, and — in [`AuditMode::Strict`] — panic the run so test suites
    /// fail loudly. Like tracing, auditing is a pure side channel: the
    /// simulation's event schedule and trace digest stay byte-identical.
    ///
    /// When this is not called, the `PWS_AUDIT` environment variable
    /// (`1`/`record`/`on` → record, `strict`/`panic` → strict) or the CI
    /// alias `PWS_AUDIT_SMOKE=1` (strict) enables it instead.
    pub fn audit(&mut self, mode: AuditMode) -> &mut Self {
        self.audit = Some(mode);
        self
    }

    /// Overrides the per-node flight-recorder ring capacity (default
    /// [`pws_simnet::FlightRing`]'s 256). The flight recorder is always
    /// on regardless of the trace level — its events are rare protocol
    /// milestones and the ring bounded.
    pub fn flight_capacity(&mut self, cap: usize) -> &mut Self {
        self.flight_capacity = Some(cap.max(1));
        self
    }

    /// Overrides the crypto/transport cost model.
    pub fn cost(&mut self, cost: CostModel) -> &mut Self {
        self.cost = cost;
        self
    }

    /// Overrides the XML marshal cost model.
    pub fn ws_cost(&mut self, ws_cost: WsCostModel) -> &mut Self {
        self.ws_cost = ws_cost;
        self
    }

    /// Overrides the network configuration.
    pub fn net(&mut self, net: NetConfig) -> &mut Self {
        self.net = Some(net);
        self
    }

    /// Overrides the CLBFT view-change timeout.
    pub fn view_timeout(&mut self, d: SimDuration) -> &mut Self {
        self.view_timeout = d;
        self
    }

    /// Overrides the CLBFT request-batching cap for every replica group:
    /// the most requests a voter primary seals into one agreement slot.
    /// `1` disables batching (one request per slot, the pre-batching
    /// behaviour).
    pub fn max_batch_size(&mut self, n: usize) -> &mut Self {
        self.max_batch_size = n.max(1);
        self
    }

    /// Overrides the CLBFT batch-delay bound: how long a queued request may
    /// wait for its batch to seal when the agreement pipeline is full.
    pub fn batch_delay(&mut self, d: SimDuration) -> &mut Self {
        self.batch_delay = d;
        self
    }

    /// Overrides the checkpoint interval for every replica group: a voter
    /// snapshots its application state and broadcasts a checkpoint
    /// certificate vote every `k` executions. Smaller intervals bound the
    /// state a recovering replica must re-fetch; larger ones amortize
    /// snapshot cost.
    pub fn checkpoint_interval(&mut self, k: u64) -> &mut Self {
        self.checkpoint_interval = k.max(1);
        self
    }

    /// Overrides the CLBFT log window (high watermark = stable checkpoint
    /// + window) for every replica group.
    pub fn watermark_window(&mut self, w: u64) -> &mut Self {
        self.watermark_window = w.max(1);
        self
    }

    /// Overrides the snapshot page size (bytes) for every replica group's
    /// Merkle-partitioned checkpoints: checkpoint digests cover a page-tree
    /// root at this granularity, boundaries re-hash only dirty pages, and
    /// state transfer ships only pages whose digests differ. Smaller pages
    /// tighten the transfer delta but grow the per-boundary manifest.
    pub fn page_size(&mut self, bytes: u32) -> &mut Self {
        self.page_size = bytes.max(1);
        self
    }

    /// Overrides how many produced replies (and reply routes) every
    /// replica retains per calling group for retransmits. Smaller values
    /// shrink checkpoint snapshots; a caller whose retry cadence is slower
    /// than the group completing this many newer requests risks wedging a
    /// stuck call (see the contract on the default in `pws-perpetual`).
    pub fn reply_retention(&mut self, n: usize) -> &mut Self {
        self.reply_retention = Some(n.max(1));
        self
    }

    /// Enables speculative execution for every replicated service: voters
    /// execute a batch when it pre-prepares instead of when it commits,
    /// rolling the application back from a snapshot if a view change
    /// discards the slot. Commit then finalizes the already-computed
    /// result without re-executing.
    pub fn speculative(&mut self, on: bool) -> &mut Self {
        self.speculative = on;
        self
    }

    /// Overrides the read-only fast-path reply quorum for every caller
    /// (replicated drivers and singleton clients alike). The default is
    /// `2f_t + 1` matching replies from the target group, capped at `n_t`;
    /// lowering it below that trades Byzantine safety for latency and is
    /// only meant for experiments.
    pub fn read_only_quorum(&mut self, q: usize) -> &mut Self {
        self.read_only_quorum = Some(q.max(1));
        self
    }

    /// Enables proactive recovery (paper §7 future work) for every
    /// replicated service: each window, exactly one replica per group
    /// (round-robin by index) tears its state down — voter log, driver
    /// bookkeeping, session keys — and rejoins through checkpoint state
    /// transfer. This time-bounds the `≤ f faulty replicas` assumption: a
    /// silently compromised replica is flushed within `n` windows.
    /// Singleton (`n = 1`) services are skipped — with no peers to fetch
    /// state from, a wipe would be an irrecoverable crash.
    pub fn proactive_recovery(&mut self, window: SimDuration) -> &mut Self {
        self.recovery_window = Some(window);
        self
    }

    /// Adds a replicated poll-driven service with `n` replicas. The factory
    /// is invoked once per replica (replica index passed in) and must
    /// produce deterministic, identical services.
    pub fn service<F>(&mut self, name: &str, n: u32, mut factory: F) -> &mut Self
    where
        F: FnMut(u32) -> Box<dyn Service> + 'static,
    {
        self.services.push(ServiceSpec {
            name: name.to_owned(),
            n,
            shards: 1,
            spares: 0,
            router: None,
            factory: Factory::Service(Box::new(move |i| factory(i))),
            faults: HashMap::new(),
        });
        self
    }

    /// Adds a replicated passive (request→reply) service with `n` replicas.
    pub fn passive_service<F>(&mut self, name: &str, n: u32, mut factory: F) -> &mut Self
    where
        F: FnMut(u32) -> Box<dyn PassiveService> + 'static,
    {
        self.services.push(ServiceSpec {
            name: name.to_owned(),
            n,
            shards: 1,
            spares: 0,
            router: None,
            factory: Factory::Passive(Box::new(move |i| factory(i))),
            faults: HashMap::new(),
        });
        self
    }

    /// Adds one *logical* service partitioned across `shards` independent
    /// voter groups of `n` replicas each, routed by the default
    /// [`RendezvousRouter`] on the request key. Every per-group subsystem
    /// — batching, pipelining, checkpointing, state transfer, proactive
    /// recovery — runs per shard, so agreement throughput scales out with
    /// the shard count instead of asymptoting at one group's rate.
    ///
    /// The factory is invoked once per replica with `(shard, replica)`
    /// and must produce deterministic services that are identical within
    /// a shard. Shard `k` is addressable directly as `name#k`
    /// (`urn:svc:name#k`); the logical URI `urn:svc:name` routes by key.
    /// Requests whose keys span shards are rejected with the typed
    /// [`RouteError::CrossShard`] (clients) or a deterministic abort
    /// fault (service outcalls) — single-shard operations only.
    pub fn sharded<F>(&mut self, name: &str, shards: u32, n: u32, factory: F) -> &mut Self
    where
        F: FnMut(u32, u32) -> Box<dyn Service> + 'static,
    {
        self.sharded_with_router(name, shards, n, Arc::new(RendezvousRouter::new()), factory)
    }

    /// [`SystemBuilder::sharded`] with an explicit key [`Router`].
    pub fn sharded_with_router<F>(
        &mut self,
        name: &str,
        shards: u32,
        n: u32,
        router: Arc<dyn Router>,
        mut factory: F,
    ) -> &mut Self
    where
        F: FnMut(u32, u32) -> Box<dyn Service> + 'static,
    {
        assert!(shards >= 1, "a sharded service needs at least one shard");
        self.services.push(ServiceSpec {
            name: name.to_owned(),
            n,
            shards,
            spares: 0,
            router: Some(router),
            factory: Factory::ShardedService(Box::new(move |s, i| factory(s, i))),
            faults: HashMap::new(),
        });
        self
    }

    /// Sharded variant of [`SystemBuilder::passive_service`]: one logical
    /// passive service across `shards` voter groups of `n` replicas,
    /// routed by the default [`RendezvousRouter`].
    pub fn sharded_passive<F>(
        &mut self,
        name: &str,
        shards: u32,
        n: u32,
        mut factory: F,
    ) -> &mut Self
    where
        F: FnMut(u32, u32) -> Box<dyn PassiveService> + 'static,
    {
        assert!(shards >= 1, "a sharded service needs at least one shard");
        self.services.push(ServiceSpec {
            name: name.to_owned(),
            n,
            shards,
            spares: 0,
            router: Some(Arc::new(RendezvousRouter::new())),
            factory: Factory::ShardedPassive(Box::new(move |s, i| factory(s, i))),
            faults: HashMap::new(),
        });
        self
    }

    /// Adds a *transactional* sharded service: one logical [`TxnService`]
    /// across `shards` voter groups of `n` replicas, routed by the default
    /// [`RendezvousRouter`]. Each replica's service is wrapped in a
    /// [`TxnShim`], so requests whose keys span shards become two-phase
    /// commits coordinated by the first key's owner instead of
    /// [`RouteError::CrossShard`] rejections, and the deployment supports
    /// live resharding (see [`SystemBuilder::add_shard`]).
    pub fn sharded_txn<F>(&mut self, name: &str, shards: u32, n: u32, mut factory: F) -> &mut Self
    where
        F: FnMut(u32, u32) -> Box<dyn TxnService> + 'static,
    {
        assert!(shards >= 1, "a sharded service needs at least one shard");
        self.services.push(ServiceSpec {
            name: name.to_owned(),
            n,
            shards,
            spares: 0,
            router: Some(Arc::new(RendezvousRouter::new())),
            factory: Factory::Txn(Box::new(move |s, i| factory(s, i))),
            faults: HashMap::new(),
        });
        self
    }

    /// Declares capacity for one *online* shard addition to transactional
    /// sharded service `name`: a fresh voter group is provisioned dormant
    /// (it holds all client traffic behind a gate) and stood up at runtime
    /// by [`System::add_shard`], which flips the routing epoch and migrates
    /// exactly the keys rendezvous routing reassigns. May be called
    /// repeatedly to provision several spares.
    ///
    /// # Panics
    ///
    /// Panics if `name` has not been added with
    /// [`SystemBuilder::sharded_txn`] — only transactional services carry
    /// the fence/import machinery resharding needs.
    pub fn add_shard(&mut self, name: &str) -> &mut Self {
        let spec = self
            .services
            .iter_mut()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("unknown service '{name}'"));
        assert!(
            matches!(spec.factory, Factory::Txn(_)),
            "live resharding requires a transactional sharded service \
             (SystemBuilder::sharded_txn); '{name}' is not one"
        );
        spec.spares += 1;
        self
    }

    /// Injects a fault into replica `idx` of service `name`. For sharded
    /// services address one shard as `name#<shard>`.
    ///
    /// # Panics
    ///
    /// Panics if the service has not been added yet, or if a shard suffix
    /// is malformed or out of range — a mistyped shard must fail loudly at
    /// build time, not leave the fault silently uninjected.
    pub fn fault(&mut self, name: &str, idx: u32, fault: FaultMode) -> &mut Self {
        let (base, shard) = match name.rsplit_once('#') {
            Some((base, s)) if self.services.iter().any(|sp| sp.name == base) => {
                let shard = s
                    .parse::<u32>()
                    .unwrap_or_else(|_| panic!("bad shard suffix in '{name}'"));
                (base, shard)
            }
            _ => (name, 0),
        };
        let spec = self
            .services
            .iter_mut()
            .find(|s| s.name == base)
            .unwrap_or_else(|| panic!("unknown service '{name}'"));
        assert!(
            shard < spec.shards,
            "service '{base}' has {} shard(s); '{name}' is out of range",
            spec.shards
        );
        spec.faults.insert((shard, idx), fault);
        self
    }

    /// Adds an unreplicated scripted client that fires `total` requests at
    /// service `target`, all at once (open window).
    pub fn scripted_client(&mut self, name: &str, target: &str, total: u64) -> &mut Self {
        self.scripted_client_windowed(name, target, total, total)
    }

    /// Adds a scripted client that keeps at most `window` requests
    /// outstanding until `total` complete — `window = 1` is the paper's
    /// synchronous client; larger windows are the parallel asynchronous
    /// clients of Fig. 9.
    pub fn scripted_client_windowed(
        &mut self,
        name: &str,
        target: &str,
        total: u64,
        window: u64,
    ) -> &mut Self {
        self.clients.push(ClientSpec {
            name: name.to_owned(),
            kind: ClientKind::Scripted {
                target: target.to_owned(),
                total,
                window: window.max(1),
                op: "increment".to_owned(),
                payload: String::new(),
                timeout: None,
            },
        });
        self
    }

    /// Sets a client-side give-up timeout on the most recently added
    /// scripted client.
    pub fn client_timeout(&mut self, d: SimDuration) -> &mut Self {
        if let Some(ClientSpec {
            kind: ClientKind::Scripted { timeout, .. },
            ..
        }) = self.clients.last_mut()
        {
            *timeout = Some(d);
        }
        self
    }

    /// Adds a custom unreplicated client node (e.g. a TPC-W browser
    /// emulator). The factory receives the client's wired-up [`ClientCore`]
    /// and the deployment's URI map.
    pub fn custom_client<F>(&mut self, name: &str, factory: F) -> &mut Self
    where
        F: FnOnce(ClientCore, Arc<UriMap>) -> Box<dyn Node> + 'static,
    {
        self.clients.push(ClientSpec {
            name: name.to_owned(),
            kind: ClientKind::Custom(Box::new(factory)),
        });
        self
    }

    /// Constructs the deployment.
    ///
    /// # Panics
    ///
    /// Panics if a client's target service does not exist or a group size is
    /// not `3f + 1`.
    pub fn build(self) -> System {
        let mut sim = match self.net {
            Some(net) => Simulation::with_net(self.seed, net),
            None => Simulation::with_net(self.seed, default_ws_net()),
        };
        sim.set_trace_level(self.trace);
        if let Some(cap) = self.flight_capacity {
            sim.obs_mut().set_flight_capacity(cap);
        }
        let audit = self.audit.or_else(audit_mode_from_env);
        sim.set_auditor(audit);
        let mut topo = Topology::new();
        let mut uris = UriMap::default();
        let mut groups_by_name = HashMap::new();
        let mut next_node = 0u32;
        let mut next_group = 0u32;

        for spec in &self.services {
            // A sharded service occupies `shards + spares` consecutive
            // groups (active shards first, then dormant spares), each
            // registered under its `name#k` alias; an unsharded one is the
            // single-group degenerate case of the same loop.
            let provisioned = spec.shards + spec.spares;
            let mut shard_groups = Vec::with_capacity(provisioned as usize);
            for k in 0..provisioned {
                let gid = GroupId(next_group);
                next_group += 1;
                let nodes: Vec<NodeId> = (next_node..next_node + spec.n)
                    .map(NodeId::from_raw)
                    .collect();
                next_node += spec.n;
                topo.register(gid, nodes);
                if let Some(aud) = sim.auditor_mut() {
                    // The checkpoint-stability invariant needs the group's
                    // fault bound f (stability requires f+1 matching votes).
                    aud.register_group(gid.0, u64::from((spec.n - 1) / 3));
                }
                if spec.router.is_some() {
                    groups_by_name.insert(format!("{}#{k}", spec.name), gid);
                } else {
                    uris.insert(&spec.name, gid);
                    groups_by_name.insert(spec.name.clone(), gid);
                }
                shard_groups.push(gid);
            }
            if let Some(router) = &spec.router {
                let epoch = RouterEpoch::new(router.clone(), spec.shards);
                let txn = matches!(spec.factory, Factory::Txn(_));
                uris.insert_sharded_elastic(&spec.name, shard_groups, epoch, txn);
            }
        }
        for client in &self.clients {
            let gid = GroupId(next_group);
            next_group += 1;
            topo.register(gid, vec![NodeId::from_raw(next_node)]);
            next_node += 1;
            groups_by_name.insert(client.name.clone(), gid);
        }
        // Transactional deployments get a hidden reshard-controller client
        // (registered last so every other node keeps its id) that drives
        // export → import migrations when `System::add_shard` fires.
        let controller_gid = if self
            .services
            .iter()
            .any(|s| matches!(s.factory, Factory::Txn(_)))
        {
            let gid = GroupId(next_group);
            next_group += 1;
            topo.register(gid, vec![NodeId::from_raw(next_node)]);
            next_node += 1;
            groups_by_name.insert(RESHARD_CONTROLLER.to_owned(), gid);
            Some(gid)
        } else {
            None
        };
        let _ = (next_node, next_group);

        let topo = Arc::new(topo);
        let uris = Arc::new(uris);

        let mut client_nodes = HashMap::new();
        for mut spec in self.services {
            for shard in 0..spec.shards + spec.spares {
                let (hosted_name, gid) = if spec.router.is_some() {
                    let alias = format!("{}#{shard}", spec.name);
                    let gid = groups_by_name[&alias];
                    (alias, gid)
                } else {
                    (spec.name.clone(), groups_by_name[&spec.name])
                };
                for idx in 0..spec.n {
                    let mut cfg = ReplicaConfig::new(gid, idx, topo.clone(), self.seed);
                    cfg.cost = self.cost;
                    cfg.view_timeout = self.view_timeout;
                    cfg.retry_interval = self.retry_interval;
                    cfg.max_batch_size = self.max_batch_size;
                    cfg.batch_delay = self.batch_delay;
                    cfg.checkpoint_interval = self.checkpoint_interval;
                    cfg.watermark_window = self.watermark_window;
                    cfg.page_size = self.page_size;
                    cfg.recovery_interval = self.recovery_window;
                    if let Some(r) = self.reply_retention {
                        cfg.reply_retention = r;
                    }
                    cfg.speculative = self.speculative;
                    cfg.read_only_quorum = self.read_only_quorum;
                    cfg.obs_phases = self.trace.spans_enabled();
                    cfg.audit = audit.is_some();
                    cfg.fault = spec.faults.get(&(shard, idx)).copied().unwrap_or_default();
                    let service: Box<dyn Service> = match &mut spec.factory {
                        Factory::Service(f) => f(idx),
                        Factory::Passive(f) => Box::new(PassiveHost::new(f(idx))),
                        Factory::ShardedService(f) => f(shard, idx),
                        Factory::ShardedPassive(f) => Box::new(PassiveHost::new(f(shard, idx))),
                        Factory::Txn(f) => Box::new(TxnShim::new(
                            f(shard, idx),
                            spec.name.as_str(),
                            shard,
                            spec.router.clone().expect("txn services are sharded"),
                            spec.shards,
                            shard >= spec.shards,
                        )),
                    };
                    let executor: Box<dyn Executor> = Box::new(ServiceExecutor::new(
                        service,
                        &hosted_name,
                        uris.clone(),
                        self.ws_cost,
                    ));
                    let node = sim.add_node(Box::new(PerpetualReplica::new(cfg, executor)));
                    debug_assert_eq!(node, topo.node(gid, idx));
                }
            }
        }
        for spec in self.clients {
            let gid = groups_by_name[&spec.name];
            let mut core = ClientCore::new(gid, topo.clone(), self.seed, self.cost);
            core.set_read_only_quorum(self.read_only_quorum);
            let node_box: Box<dyn Node> = match spec.kind {
                ClientKind::Scripted {
                    target,
                    total,
                    window,
                    op,
                    payload,
                    timeout,
                } => {
                    let target_uri = service_uri(&target);
                    // Service targets route through the URI map (sharded
                    // ones per request key); anything else — e.g. another
                    // client's degenerate group — stays pinned.
                    let fixed = if uris.group(&target_uri).is_some()
                        || uris.shard_count(&target_uri).is_some()
                    {
                        None
                    } else {
                        Some(
                            *groups_by_name
                                .get(&target)
                                .unwrap_or_else(|| panic!("client target '{target}' unknown")),
                        )
                    };
                    Box::new(ScriptedClient {
                        core,
                        uris: uris.clone(),
                        fixed,
                        shard_metric_keys: HashMap::new(),
                        target_uri,
                        engine: Engine::with_id_prefix(spec.name.clone()),
                        ws_cost: self.ws_cost,
                        total,
                        window,
                        op,
                        payload,
                        timeout,
                        sent: 0,
                        send_times: HashMap::new(),
                        in_flight: HashMap::new(),
                        replies: Vec::new(),
                        latencies: Vec::new(),
                        first_send: None,
                        last_complete: None,
                        retry_timer: None,
                    })
                }
                ClientKind::Custom(factory) => factory(core, uris.clone()),
            };
            let node = sim.add_node(node_box);
            client_nodes.insert(spec.name.clone(), node);
            debug_assert_eq!(node, topo.node(gid, 0));
        }
        let controller = controller_gid.map(|gid| {
            let mut core = ClientCore::new(gid, topo.clone(), self.seed, self.cost);
            core.set_read_only_quorum(self.read_only_quorum);
            let node = sim.add_node(Box::new(ReshardController {
                core,
                uris: uris.clone(),
                engine: Engine::with_id_prefix(RESHARD_CONTROLLER.to_owned()),
                ws_cost: self.ws_cost,
                jobs: BTreeMap::new(),
                calls: BTreeMap::new(),
                retry_timer: None,
            }));
            debug_assert_eq!(node, topo.node(gid, 0));
            node
        });

        System {
            sim,
            groups_by_name,
            client_nodes,
            uris,
            controller,
        }
    }
}

/// A built deployment ready to run.
pub struct System {
    sim: Simulation,
    groups_by_name: HashMap<String, GroupId>,
    client_nodes: HashMap<String, NodeId>,
    uris: Arc<UriMap>,
    /// The hidden reshard-controller node (transactional deployments only).
    controller: Option<NodeId>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("groups", &self.groups_by_name.len())
            .field("now", &self.sim.now())
            .finish_non_exhaustive()
    }
}

impl System {
    /// Runs until quiescence or `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.sim.run_until(deadline)
    }

    /// Runs for an additional span of virtual time.
    pub fn run_for(&mut self, d: SimDuration) -> RunOutcome {
        self.sim.run_for(d)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The group id of a service or client.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown.
    pub fn group(&self, name: &str) -> GroupId {
        self.groups_by_name[name]
    }

    /// Direct access to the simulation (metrics, network faults, tracing).
    pub fn sim_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }

    /// The deployment's URI map (routing assertions, epoch observation).
    pub fn uris(&self) -> &Arc<UriMap> {
        &self.uris
    }

    /// Stands up the next provisioned spare shard of transactional service
    /// `name` **online**: flips the routing epoch (clients immediately route
    /// at the grown count; moved keys hit the new shard's admission gate or
    /// the old shards' fences and are redirected, never lost), then drives
    /// the migration — every source shard orders a `reshardExport` config
    /// record that fences and extracts exactly the keys rendezvous routing
    /// reassigns, and the new shard orders one `reshardImport` per source,
    /// opening its gate when all have arrived
    /// (`clbft.reshard.completed` increments). Returns the new active shard
    /// count. Run the system afterwards to let the migration complete.
    ///
    /// # Panics
    ///
    /// Panics if `name` is not transactional or no spare shard remains
    /// (see [`SystemBuilder::add_shard`]).
    pub fn add_shard(&mut self, name: &str) -> u32 {
        let uri = service_uri(name);
        let provisioned = self
            .uris
            .shard_count(&uri)
            .unwrap_or_else(|| panic!("unknown sharded service '{name}'"));
        let epoch = self.uris.epoch_handle(&uri).expect("sharded entry");
        let old = epoch.epoch().min(provisioned);
        assert!(
            old < provisioned,
            "no spare shard left for '{name}': provision more with \
             SystemBuilder::add_shard before build"
        );
        let new = old + 1;
        epoch.advance(new);
        self.sim.metrics_mut().incr("clbft.reshard.epoch_flips");
        // Open the reshard protocol span at its `flipped` phase (the new
        // shard's group owns the span; later phases — fenced/exported from
        // the sources, imported on the new shard — land on the same key).
        if self.sim.trace_level().spans_enabled() {
            if let Some(groups) = self.uris.shard_groups(&uri) {
                let key = ProtoKey {
                    group: groups[(new - 1) as usize].0,
                    family: ProtoFamily::Reshard,
                    id: u64::from(new),
                };
                let at_us = self.sim.now().as_micros();
                let deltas = self.sim.obs_mut().proto(key, 0, at_us, u64::from(old));
                if let Some((mk, ms)) = deltas.metric {
                    self.sim.metrics_mut().record_hist(mk, ms);
                }
            }
        }
        let controller = self
            .controller
            .expect("transactional deployments have a reshard controller");
        // The controller is a simnet node; hand it the job as an injected
        // message (the sender id is outside the deployment and unused).
        let cmd = Bytes::from(format!("reshard|{name}|{old}|{new}"));
        self.sim.inject(NodeId::from_raw(u32::MAX), controller, cmd);
        new
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &pws_simnet::metrics::Metrics {
        self.sim.metrics()
    }

    /// Renders every node's flight-recorder ring as a readable timeline
    /// (view changes, checkpoint boundaries, state-transfer verdicts,
    /// rejections). Always available — the flight recorder runs regardless
    /// of the trace level.
    pub fn dump_flight_recorder(&self) -> String {
        self.sim.obs().dump_all_flight()
    }

    /// Exports the recorded request-lifecycle spans as
    /// chrome://tracing-compatible JSON (load it at `chrome://tracing` or
    /// <https://ui.perfetto.dev>). Meaningful content requires
    /// [`SystemBuilder::tracing`] at [`TraceLevel::Phases`] or above.
    pub fn export_trace_json(&self) -> String {
        self.sim.obs().export_trace_json()
    }

    /// Exports a metrics snapshot — every counter, every histogram's
    /// summary statistics (count/mean/p50/p95/p99/max), and the span
    /// open/close totals — as a JSON document.
    pub fn export_obs_json(&self) -> String {
        let m = self.sim.metrics();
        let obs = self.sim.obs();
        let mut out = String::from("{\n\"counters\": {");
        let mut first = true;
        for (name, v) in m.counters() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n  \"{}\": {v}", escape_json(name)));
        }
        out.push_str("\n},\n\"histograms\": {");
        let mut first = true;
        for (name, h) in m.histograms() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n  \"{}\": {{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \
                 \"p99\": {}, \"min\": {}, \"max\": {}}}",
                escape_json(name),
                h.count(),
                fmt_f64(h.mean()),
                fmt_f64(h.p50()),
                fmt_f64(h.p95()),
                fmt_f64(h.p99()),
                fmt_f64(h.min()),
                fmt_f64(h.max()),
            ));
        }
        out.push_str(&format!(
            "\n}},\n\"spansOpened\": {},\n\"spansClosed\": {}\n}}\n",
            obs.spans_opened(),
            obs.spans_closed()
        ));
        out
    }

    /// Exports every time-series gauge ring — the deterministic
    /// `(t_us, value)` samples recorded via `Context::gauge` (queue depth,
    /// in-flight slots, batch occupancy, lock-table size under the `ts.*`
    /// convention) — as a JSON document: per gauge, summary statistics over
    /// the retained window plus the raw samples. Gauges record only when
    /// tracing is enabled ([`SystemBuilder::tracing`]), so this is `{}`
    /// on untraced runs.
    pub fn export_timeseries_json(&self) -> String {
        let m = self.sim.metrics();
        let mut out = String::from("{");
        let mut first = true;
        for (name, ring) in m.gauges() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n\"{}\": {{", escape_json(name)));
            if let Some(s) = ring.summary() {
                out.push_str(&format!(
                    "\"count\": {}, \"recorded\": {}, \"mean\": {}, \"p50\": {}, \
                     \"p95\": {}, \"min\": {}, \"max\": {}, ",
                    s.count,
                    ring.total_recorded(),
                    fmt_f64(s.mean),
                    fmt_f64(s.p50),
                    fmt_f64(s.p95),
                    fmt_f64(s.min),
                    fmt_f64(s.max),
                ));
            }
            out.push_str("\"samples\": [");
            for (i, (t_us, v)) in ring.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("[{t_us},{}]", fmt_f64(v)));
            }
            out.push_str("]}");
        }
        out.push_str("\n}\n");
        out
    }

    /// The online protocol auditor's structured report (`None` when
    /// auditing is off — see [`SystemBuilder::audit`]). An empty audit
    /// reads "audit clean".
    pub fn audit_report(&self) -> Option<String> {
        self.sim.auditor().map(Auditor::report)
    }

    /// Total protocol-invariant violations the auditor recorded (0 when
    /// auditing is off).
    pub fn audit_violations(&self) -> u64 {
        self.sim.auditor().map_or(0, Auditor::violation_count)
    }

    /// Writes the chrome-trace and metrics-snapshot exports to
    /// `target/figures/TRACE_<name>.json` and
    /// `target/figures/OBS_<name>.json` (plus the gauge time series to
    /// `TS_<name>.json` when any gauge recorded), returning the trace and
    /// snapshot paths.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors from creating the directory or writing
    /// the files.
    pub fn write_obs_artifacts(
        &self,
        name: &str,
    ) -> std::io::Result<(std::path::PathBuf, std::path::PathBuf)> {
        let dir = std::path::Path::new("target/figures");
        std::fs::create_dir_all(dir)?;
        let trace = dir.join(format!("TRACE_{name}.json"));
        std::fs::write(&trace, self.export_trace_json())?;
        let snap = dir.join(format!("OBS_{name}.json"));
        std::fs::write(&snap, self.export_obs_json())?;
        if self.sim.metrics().gauges().next().is_some() {
            let ts = dir.join(format!("TS_{name}.json"));
            std::fs::write(ts, self.export_timeseries_json())?;
        }
        Ok((trace, snap))
    }

    /// Replies recorded by a scripted client.
    ///
    /// # Panics
    ///
    /// Panics if the client name is unknown.
    pub fn client_replies(&mut self, name: &str) -> Vec<MessageContext> {
        let node = self.client_nodes[name];
        self.sim
            .node_mut::<ScriptedClient>(node)
            .expect("scripted client")
            .replies
            .clone()
    }

    /// Per-request completion latencies recorded by a scripted client.
    pub fn client_latencies(&mut self, name: &str) -> Vec<SimDuration> {
        let node = self.client_nodes[name];
        self.sim
            .node_mut::<ScriptedClient>(node)
            .expect("scripted client")
            .latencies
            .clone()
    }

    /// Client throughput: completed requests / (last completion − first
    /// send), in requests per second. `None` until two data points exist.
    pub fn client_throughput(&mut self, name: &str) -> Option<f64> {
        let node = self.client_nodes[name];
        let c = self
            .sim
            .node_mut::<ScriptedClient>(node)
            .expect("scripted client");
        let (first, last) = (c.first_send?, c.last_complete?);
        let span = (last - first).as_secs_f64();
        if span <= 0.0 {
            return None;
        }
        Some(c.replies.len() as f64 / span)
    }

    /// The span of a scripted client's run: `(first send, last
    /// completion)`. `None` until both ends exist. Aggregating spans
    /// across clients gives deployment-wide throughput for sharded
    /// sweeps.
    ///
    /// # Panics
    ///
    /// Panics if the client name is unknown.
    pub fn client_span(&mut self, name: &str) -> Option<(SimTime, SimTime)> {
        let node = self.client_nodes[name];
        let c = self
            .sim
            .node_mut::<ScriptedClient>(node)
            .expect("scripted client");
        Some((c.first_send?, c.last_complete?))
    }

    /// The simnet node hosting a client (for typed access to custom client
    /// nodes).
    ///
    /// # Panics
    ///
    /// Panics if the client name is unknown.
    pub fn client_node(&self, name: &str) -> NodeId {
        self.client_nodes[name]
    }

    /// Typed access to a service replica's hosted state (for assertions).
    pub fn replica_mut(&mut self, name: &str, idx: u32) -> Option<&mut PerpetualReplica> {
        let gid = self.groups_by_name.get(name)?;
        // Topology assigned node ids densely in registration order; look the
        // node up through the replica itself.
        let node = self.replica_node(*gid, idx)?;
        self.sim.node_mut::<PerpetualReplica>(node)
    }

    fn replica_node(&mut self, gid: GroupId, idx: u32) -> Option<NodeId> {
        // Node ids are assigned densely: scan is fine at deployment sizes.
        for raw in 0..self.sim.node_count() as u32 {
            let node = NodeId::from_raw(raw);
            if let Some(r) = self.sim.node_mut::<PerpetualReplica>(node) {
                if r.group() == gid && r.index() == idx {
                    return Some(node);
                }
            }
        }
        None
    }
}

/// One in-flight reshard migration the controller is driving.
#[derive(Debug)]
struct ReshardJob {
    old: u32,
    new: u32,
    imports_acked: u32,
}

/// One outstanding export/import record call, kept so a faulted call can be
/// re-sent verbatim.
struct PendingRecord {
    name: String,
    shard: u32,
    is_import: bool,
    target: GroupId,
    payload: Bytes,
}

/// The hidden client node that executes live reshard migrations: for each
/// `reshard|<name>|<old>|<new>` command (injected by [`System::add_shard`])
/// it sends an ordered `reshardExport` to every source shard, forwards each
/// export's extracted entries to the new shard as an ordered
/// `reshardImport`, and counts the migration complete
/// (`clbft.reshard.completed`) when every import is acknowledged. All state
/// is in sorted maps so same-seed runs trace identically.
struct ReshardController {
    core: ClientCore,
    uris: Arc<UriMap>,
    engine: Engine,
    ws_cost: WsCostModel,
    jobs: BTreeMap<String, ReshardJob>,
    calls: BTreeMap<u64, PendingRecord>,
    retry_timer: Option<pws_simnet::TimerId>,
}

impl std::fmt::Debug for ReshardController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReshardController")
            .field("jobs", &self.jobs)
            .field("outstanding", &self.calls.len())
            .finish_non_exhaustive()
    }
}

impl ReshardController {
    fn send_record(
        &mut self,
        ctx: &mut Context<'_>,
        name: &str,
        shard: u32,
        op: &str,
        record: &[u8],
        is_import: bool,
    ) {
        let uri = format!("urn:svc:{name}#{shard}");
        let Some(target) = self.uris.group(&uri) else {
            return;
        };
        let mut mc = MessageContext::request(&uri, op);
        mc.body_mut().name = op.to_owned();
        mc.body_mut().text = to_hex(record);
        mc.addressing_mut().reply_to = Some("urn:reshard".to_owned());
        if self.engine.run_out_pipe(&mut mc).is_err() {
            return;
        }
        let Ok(bytes) = mc.to_bytes() else { return };
        ctx.spend(self.ws_cost.marshal_cost(bytes.len()));
        let call = self.core.call_config(ctx, target, bytes.clone());
        self.calls.insert(
            call.0,
            PendingRecord {
                name: name.to_owned(),
                shard,
                is_import,
                target,
                payload: bytes,
            },
        );
        if self.retry_timer.is_none() {
            self.retry_timer = Some(ctx.set_timer(RETRY_SWEEP));
        }
    }

    fn start(&mut self, name: &str, old: u32, new: u32, ctx: &mut Context<'_>) {
        if self.jobs.contains_key(name) || new != old + 1 {
            return; // one grow-by-one job per service at a time
        }
        let rec = ReshardExport { new_count: new }.encode();
        for s in 0..old {
            self.send_record(ctx, name, s, OP_RESHARD_EXPORT, &rec, false);
        }
        self.jobs.insert(
            name.to_owned(),
            ReshardJob {
                old,
                new,
                imports_acked: 0,
            },
        );
    }

    fn on_reply(&mut self, raw: u64, payload: &[u8], ctx: &mut Context<'_>) {
        let Some(p) = self.calls.remove(&raw) else {
            return;
        };
        let Ok(mc) = MessageContext::from_bytes(payload) else {
            return;
        };
        if mc.envelope().as_fault().is_some() {
            // A shard that answered with a fault (e.g. mid-view-change
            // abort) has not ordered the record; re-send a fresh call so
            // the migration cannot stall.
            ctx.metrics().incr("clbft.reshard.record_retries");
            let call = self.core.call_config(ctx, p.target, p.payload.clone());
            self.calls.insert(call.0, p);
            return;
        }
        let Some(job) = self.jobs.get_mut(&p.name) else {
            return;
        };
        if p.is_import {
            job.imports_acked += 1;
            if job.imports_acked >= job.old {
                ctx.metrics().incr("clbft.reshard.completed");
                self.jobs.remove(&p.name);
            }
            return;
        }
        // An export reply carries the extracted entries (hex); forward them
        // to the new shard as this source's import.
        let entries = from_hex(&mc.body().text)
            .and_then(|b| decode_entries(&b).ok())
            .unwrap_or_default();
        let (old, new) = (job.old, job.new);
        let rec = ReshardImport {
            from_shard: p.shard,
            old_count: old,
            new_count: new,
            sources: old,
            entries,
        }
        .encode();
        let name = p.name.clone();
        self.send_record(ctx, &name, new - 1, OP_RESHARD_IMPORT, &rec, true);
    }
}

impl Node for ReshardController {
    fn on_message(&mut self, _from: NodeId, msg: Bytes, ctx: &mut Context<'_>) {
        if let Ok(text) = std::str::from_utf8(&msg) {
            if let Some(rest) = text.strip_prefix("reshard|") {
                let mut it = rest.split('|');
                if let (Some(name), Some(old), Some(new)) = (it.next(), it.next(), it.next()) {
                    if let (Ok(old), Ok(new)) = (old.parse::<u32>(), new.parse::<u32>()) {
                        let name = name.to_owned();
                        self.start(&name, old, new, ctx);
                    }
                }
                return;
            }
        }
        if let Some(ClientEvent::Reply { call, payload }) = self.core.on_message(&msg, ctx) {
            ctx.spend(self.ws_cost.demarshal_cost(payload.len()));
            self.on_reply(call.0, &payload, ctx);
        }
    }

    fn on_timer(&mut self, timer: pws_simnet::TimerId, ctx: &mut Context<'_>) {
        if Some(timer) != self.retry_timer {
            return;
        }
        // Retry sweep: rotate responders on every outstanding record call.
        let outstanding: Vec<u64> = self.calls.keys().copied().collect();
        for raw in outstanding {
            self.core.retry(ctx, pws_perpetual::CallId(raw));
        }
        self.retry_timer = if self.calls.is_empty() {
            None
        } else {
            Some(ctx.set_timer(RETRY_SWEEP))
        };
    }
}

/// A simnet node that drives a replicated service with a fixed script of
/// requests, keeping a bounded window outstanding. The workhorse behind the
/// micro-benchmarks (Figs. 7–9).
pub struct ScriptedClient {
    core: ClientCore,
    uris: Arc<UriMap>,
    /// `Some` when the target is not a routed service (e.g. another
    /// client's group); `None` routes per request through the URI map.
    fixed: Option<GroupId>,
    /// Cached per-shard metric names (`clbft.shard.route.<g>`), so the
    /// hot path formats each key once.
    shard_metric_keys: HashMap<GroupId, String>,
    target_uri: String,
    engine: Engine,
    ws_cost: WsCostModel,
    total: u64,
    window: u64,
    op: String,
    payload: String,
    timeout: Option<SimDuration>,
    sent: u64,
    send_times: HashMap<u64, SimTime>,
    /// Outstanding calls' routing keys and how many `pws:WrongShard`
    /// redirects each has already followed (bounded at one).
    in_flight: HashMap<u64, (String, u8)>,
    /// Replies received, in completion order.
    pub replies: Vec<MessageContext>,
    /// Completion latencies, in completion order.
    pub latencies: Vec<SimDuration>,
    first_send: Option<SimTime>,
    last_complete: Option<SimTime>,
    retry_timer: Option<pws_simnet::TimerId>,
}

/// How often a scripted client re-transmits stale outstanding calls.
const RETRY_SWEEP: SimDuration = SimDuration::from_millis(900);

impl std::fmt::Debug for ScriptedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptedClient")
            .field("sent", &self.sent)
            .field("completed", &self.replies.len())
            .finish_non_exhaustive()
    }
}

impl ScriptedClient {
    fn fire(&mut self, ctx: &mut Context<'_>) {
        // An unroutable request (cross-shard key, unknown service) burns
        // its slot as a recorded error and the loop moves to the next one
        // — a client whose whole script is unroutable finishes with zero
        // replies and a telling `client.route_errors` count, instead of
        // wedging its window forever.
        while self.sent < self.total {
            let seq = self.sent;
            self.sent += 1;
            let mut mc = MessageContext::request(&self.target_uri, &self.op);
            mc.body_mut().name = self.op.clone();
            mc.body_mut().text = if self.payload.is_empty() {
                seq.to_string()
            } else {
                self.payload.clone()
            };
            mc.addressing_mut().reply_to = Some("urn:client".to_owned());
            let target = match self.fixed {
                Some(gid) => gid,
                None => match self.uris.route(&self.target_uri, routing_key(&mc)) {
                    Ok((_, gid)) => {
                        if self.uris.shard_count(&self.target_uri).is_some() {
                            ctx.metrics().incr("clbft.shard.routed");
                            let key = self
                                .shard_metric_keys
                                .entry(gid)
                                .or_insert_with(|| format!("clbft.shard.route.{gid}"));
                            ctx.metrics().incr(key);
                        }
                        gid
                    }
                    Err(e) => {
                        if matches!(e, RouteError::CrossShard { .. }) {
                            ctx.metrics().incr("clbft.shard.cross_rejected");
                        }
                        ctx.metrics().incr("client.route_errors");
                        continue;
                    }
                },
            };
            if self.engine.run_out_pipe(&mut mc).is_err() {
                continue;
            }
            let key = mc.body().text.clone();
            let Ok(bytes) = mc.to_bytes() else { continue };
            ctx.spend(self.ws_cost.marshal_cost(bytes.len()));
            let call = self.core.call(ctx, target, bytes);
            self.in_flight.insert(call.0, (key, 0));
            self.after_fire(call, ctx);
            return;
        }
    }

    fn after_fire(&mut self, call: pws_perpetual::CallId, ctx: &mut Context<'_>) {
        self.send_times.insert(call.0, ctx.now());
        if self.first_send.is_none() {
            self.first_send = Some(ctx.now());
        }
        if let Some(t) = self.timeout {
            ctx.set_timer(t);
        }
    }

    /// Follows a `pws:WrongShard` redirect: re-routes the same routing key
    /// at the *current* epoch and re-issues the call, carrying the original
    /// send time over so the recorded latency spans both legs. Returns
    /// `false` when the retry cannot be routed (the fault then surfaces as
    /// an ordinary reply).
    fn refire(&mut self, old_call: u64, key: String, ctx: &mut Context<'_>) -> bool {
        let mut mc = MessageContext::request(&self.target_uri, &self.op);
        mc.body_mut().name = self.op.clone();
        mc.body_mut().text = key.clone();
        mc.addressing_mut().reply_to = Some("urn:client".to_owned());
        let Ok((_, target)) = self.uris.route(&self.target_uri, routing_key(&mc)) else {
            return false;
        };
        if self.engine.run_out_pipe(&mut mc).is_err() {
            return false;
        }
        let Ok(bytes) = mc.to_bytes() else {
            return false;
        };
        ctx.spend(self.ws_cost.marshal_cost(bytes.len()));
        ctx.metrics().incr("client.route_retries");
        let call = self.core.call(ctx, target, bytes);
        let sent_at = self
            .send_times
            .remove(&old_call)
            .unwrap_or_else(|| ctx.now());
        self.send_times.insert(call.0, sent_at);
        self.in_flight.insert(call.0, (key, 1));
        true
    }
}

impl Node for ScriptedClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for _ in 0..self.window.min(self.total) {
            self.fire(ctx);
        }
        // Periodic retry sweep (responder rotation for faulty responders).
        self.retry_timer = Some(ctx.set_timer(RETRY_SWEEP));
    }

    fn on_message(&mut self, _from: NodeId, msg: Bytes, ctx: &mut Context<'_>) {
        if let Some(ClientEvent::Reply { call, payload }) = self.core.on_message(&msg, ctx) {
            ctx.spend(self.ws_cost.demarshal_cost(payload.len()));
            if let Ok(mc) = MessageContext::from_bytes(&payload) {
                let tracked = self.in_flight.remove(&call.0);
                let wrong_shard = mc
                    .envelope()
                    .as_fault()
                    .is_some_and(|f| f.code == WRONG_SHARD_FAULT);
                if wrong_shard {
                    // Typed retry guidance from an epoch flip: re-route at
                    // the current epoch, once per request.
                    if let Some((key, 0)) = tracked {
                        if self.refire(call.0, key, ctx) {
                            return;
                        }
                    }
                }
                if let Some(sent_at) = self.send_times.remove(&call.0) {
                    let lat = ctx.now() - sent_at;
                    ctx.metrics()
                        .record_hist("client.latency_ms", lat.as_secs_f64() * 1e3);
                    self.latencies.push(lat);
                }
                self.replies.push(mc);
                self.last_complete = Some(ctx.now());
                ctx.metrics().incr("client.web_interactions");
                self.fire(ctx);
            }
        }
    }

    fn on_timer(&mut self, timer: pws_simnet::TimerId, ctx: &mut Context<'_>) {
        if Some(timer) == self.retry_timer {
            // Retry sweep: retransmit every call outstanding longer than a
            // sweep interval (responder rotation masks a faulty responder).
            let now = ctx.now();
            let stale: Vec<u64> = self
                .send_times
                .iter()
                .filter(|(_, t)| now - **t >= RETRY_SWEEP)
                .map(|(c, _)| *c)
                .collect();
            for call in stale {
                self.core.retry(ctx, pws_perpetual::CallId(call));
            }
            self.retry_timer = if self.send_times.is_empty() && self.sent >= self.total {
                None
            } else {
                Some(ctx.set_timer(RETRY_SWEEP))
            };
            return;
        }
        // A give-up timer fired; abandon the oldest outstanding call if it
        // has really been outstanding for the timeout, so closed-loop
        // clients cannot wedge on a compromised target.
        let Some(timeout) = self.timeout else { return };
        if let Some((&call, &sent_at)) = self.send_times.iter().min_by_key(|(_, t)| **t) {
            if ctx.now() - sent_at >= timeout {
                self.send_times.remove(&call);
                self.in_flight.remove(&call);
                self.core.abandon(pws_perpetual::CallId(call));
                ctx.metrics().incr("client.abandoned");
                self.fire(ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uri_map_resolves() {
        let mut m = UriMap::default();
        m.insert("pge", GroupId(4));
        assert_eq!(m.group("urn:svc:pge"), Some(GroupId(4)));
        assert_eq!(m.group("urn:svc:bank"), None);
        assert_eq!(service_uri("pge"), "urn:svc:pge");
    }

    #[test]
    #[should_panic(expected = "unknown service")]
    fn fault_on_unknown_service_panics() {
        let mut b = SystemBuilder::new(1);
        b.fault("ghost", 0, FaultMode::Silent);
    }
}
