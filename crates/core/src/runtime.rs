//! Deployment runtime: assemble services, clients, and the simulated
//! network into a runnable [`System`].

use crate::api::Service;
use crate::host::ServiceExecutor;
use crate::passive::{PassiveHost, PassiveService};
use crate::router::{routing_key, split_keys, RendezvousRouter, RouteError, Router};
use crate::wscost::WsCostModel;
use bytes::Bytes;
use pws_perpetual::{
    ClientCore, ClientEvent, CostModel, Executor, FaultMode, GroupId, PerpetualReplica,
    ReplicaConfig, Topology,
};
use pws_simnet::{
    Context, LinkConfig, NetConfig, Node, NodeId, RunOutcome, SimDuration, SimTime, Simulation,
};
use pws_soap::engine::Engine;
use pws_soap::MessageContext;
use std::collections::HashMap;
use std::sync::Arc;

/// One logical sharded service: its shard groups in shard order plus the
/// router that assigns keys to them.
#[derive(Clone)]
struct ShardedEntry {
    shards: Vec<GroupId>,
    router: Arc<dyn Router>,
}

/// Maps service URIs (`urn:svc:<name>`) to replica groups — directly for
/// ordinary services, through a deterministic key [`Router`] for sharded
/// ones (see [`crate::router`]).
#[derive(Default, Clone)]
pub struct UriMap {
    by_uri: HashMap<String, GroupId>,
    sharded: HashMap<String, ShardedEntry>,
}

impl std::fmt::Debug for UriMap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("UriMap")
            .field("services", &self.by_uri.len())
            .field("sharded", &self.sharded.len())
            .finish()
    }
}

impl UriMap {
    /// Registers service `name` as `urn:svc:<name>`.
    pub fn insert(&mut self, name: &str, group: GroupId) {
        self.by_uri.insert(format!("urn:svc:{name}"), group);
    }

    /// Registers logical service `name` as sharded across `shards` (in
    /// shard order), routed by `router`. Each shard is also registered
    /// directly under its shard-qualified name (`name#<k>`), so a caller
    /// that has already pinned a shard can address it like any service.
    pub fn insert_sharded(&mut self, name: &str, shards: Vec<GroupId>, router: Arc<dyn Router>) {
        for (k, gid) in shards.iter().enumerate() {
            self.insert(&format!("{name}#{k}"), *gid);
        }
        self.sharded
            .insert(format!("urn:svc:{name}"), ShardedEntry { shards, router });
    }

    /// Resolves a URI to its group. Returns `None` for unknown URIs *and*
    /// for sharded logical URIs, which need a key — use [`UriMap::route`].
    pub fn group(&self, uri: &str) -> Option<GroupId> {
        self.by_uri.get(uri).copied()
    }

    /// Number of shards behind a sharded logical URI (`None` if `uri` is
    /// not sharded).
    pub fn shard_count(&self, uri: &str) -> Option<u32> {
        self.sharded.get(uri).map(|e| e.shards.len() as u32)
    }

    /// The shard groups behind a sharded logical URI, in shard order.
    pub fn shard_groups(&self, uri: &str) -> Option<&[GroupId]> {
        self.sharded.get(uri).map(|e| e.shards.as_slice())
    }

    /// Routes a request key to its owning group: directly for ordinary
    /// services, through the service's [`Router`] for sharded ones.
    /// Returns `(shard index, group)`; the index is 0 for unsharded
    /// services.
    ///
    /// # Errors
    ///
    /// [`RouteError::UnknownService`] if `uri` resolves to nothing, and
    /// [`RouteError::CrossShard`] if the key names entities owned by
    /// different shards (single-shard operations only).
    pub fn route(&self, uri: &str, key: &str) -> Result<(u32, GroupId), RouteError> {
        if let Some(gid) = self.by_uri.get(uri) {
            return Ok((0, *gid));
        }
        let Some(entry) = self.sharded.get(uri) else {
            return Err(RouteError::UnknownService {
                uri: uri.to_owned(),
            });
        };
        let shards = entry.shards.len() as u32;
        let mut owner: Option<u32> = None;
        let mut spread: Vec<u32> = Vec::new();
        for k in split_keys(key) {
            let s = entry.router.shard(k, shards);
            if owner.is_none_or(|o| o == s) {
                owner = Some(s);
            } else if !spread.contains(&s) {
                spread.push(s);
            }
        }
        if let Some(extra) = owner.filter(|_| !spread.is_empty()) {
            spread.insert(0, extra);
            spread.sort_unstable();
            return Err(RouteError::CrossShard {
                uri: uri.to_owned(),
                shards: spread,
            });
        }
        let s = owner.unwrap_or(0);
        Ok((s, entry.shards[s as usize]))
    }
}

/// The canonical URI of a service.
pub fn service_uri(name: &str) -> String {
    format!("urn:svc:{name}")
}

/// The default network for Perpetual-WS deployments: the paper's Gigabit
/// LAN (78 µs ping RTT) *plus* the per-hop latency of the 2007-era
/// SOAP-over-SSL stack (JSSE record processing, servlet dispatch, kernel
/// crossings) that a raw ping does not see. This latency is pipelined away
/// by asynchronous messaging, which is what gives Fig. 9 its headroom.
pub fn default_ws_net() -> NetConfig {
    NetConfig::new(LinkConfig {
        base: SimDuration::from_micros(250),
        per_byte_us: 0.008,
        jitter: SimDuration::from_micros(25),
        drop_probability: 0.0,
    })
}

enum Factory {
    Service(Box<dyn FnMut(u32) -> Box<dyn Service>>),
    Passive(Box<dyn FnMut(u32) -> Box<dyn PassiveService>>),
    /// Sharded factories receive `(shard, replica)`.
    ShardedService(Box<dyn FnMut(u32, u32) -> Box<dyn Service>>),
    ShardedPassive(Box<dyn FnMut(u32, u32) -> Box<dyn PassiveService>>),
}

struct ServiceSpec {
    name: String,
    n: u32,
    /// Shard count; 1 for ordinary services.
    shards: u32,
    /// The key router for sharded services (`None` for ordinary ones).
    router: Option<Arc<dyn Router>>,
    factory: Factory,
    /// Faults keyed by `(shard, replica)`; shard 0 for ordinary services.
    faults: HashMap<(u32, u32), FaultMode>,
}

struct ClientSpec {
    name: String,
    kind: ClientKind,
}

enum ClientKind {
    Scripted {
        target: String,
        total: u64,
        window: u64,
        op: String,
        payload: String,
        timeout: Option<SimDuration>,
    },
    /// Custom unreplicated endpoint (e.g. a TPC-W remote browser emulator):
    /// built from the wired-up `ClientCore` and the URI map.
    Custom(Box<dyn FnOnce(ClientCore, Arc<UriMap>) -> Box<dyn Node>>),
}

/// Builds a Perpetual-WS deployment.
///
/// See the [crate docs](crate) for a complete example.
pub struct SystemBuilder {
    seed: u64,
    cost: CostModel,
    ws_cost: WsCostModel,
    net: Option<NetConfig>,
    view_timeout: SimDuration,
    retry_interval: SimDuration,
    max_batch_size: usize,
    batch_delay: SimDuration,
    checkpoint_interval: u64,
    watermark_window: u64,
    recovery_window: Option<SimDuration>,
    reply_retention: Option<usize>,
    speculative: bool,
    read_only_quorum: Option<usize>,
    services: Vec<ServiceSpec>,
    clients: Vec<ClientSpec>,
}

impl std::fmt::Debug for SystemBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SystemBuilder")
            .field("seed", &self.seed)
            .field("services", &self.services.len())
            .field("clients", &self.clients.len())
            .finish_non_exhaustive()
    }
}

impl SystemBuilder {
    /// A builder with the default (paper-calibrated) cost models and LAN.
    pub fn new(seed: u64) -> Self {
        SystemBuilder {
            seed,
            cost: CostModel::DEFAULT,
            ws_cost: WsCostModel::DEFAULT,
            net: None,
            view_timeout: SimDuration::from_millis(400),
            retry_interval: SimDuration::from_millis(700),
            max_batch_size: 16,
            batch_delay: SimDuration::from_millis(1),
            checkpoint_interval: 64,
            watermark_window: 256,
            recovery_window: None,
            reply_retention: None,
            speculative: false,
            read_only_quorum: None,
            services: Vec::new(),
            clients: Vec::new(),
        }
    }

    /// Overrides the crypto/transport cost model.
    pub fn cost(&mut self, cost: CostModel) -> &mut Self {
        self.cost = cost;
        self
    }

    /// Overrides the XML marshal cost model.
    pub fn ws_cost(&mut self, ws_cost: WsCostModel) -> &mut Self {
        self.ws_cost = ws_cost;
        self
    }

    /// Overrides the network configuration.
    pub fn net(&mut self, net: NetConfig) -> &mut Self {
        self.net = Some(net);
        self
    }

    /// Overrides the CLBFT view-change timeout.
    pub fn view_timeout(&mut self, d: SimDuration) -> &mut Self {
        self.view_timeout = d;
        self
    }

    /// Overrides the CLBFT request-batching cap for every replica group:
    /// the most requests a voter primary seals into one agreement slot.
    /// `1` disables batching (one request per slot, the pre-batching
    /// behaviour).
    pub fn max_batch_size(&mut self, n: usize) -> &mut Self {
        self.max_batch_size = n.max(1);
        self
    }

    /// Overrides the CLBFT batch-delay bound: how long a queued request may
    /// wait for its batch to seal when the agreement pipeline is full.
    pub fn batch_delay(&mut self, d: SimDuration) -> &mut Self {
        self.batch_delay = d;
        self
    }

    /// Overrides the checkpoint interval for every replica group: a voter
    /// snapshots its application state and broadcasts a checkpoint
    /// certificate vote every `k` executions. Smaller intervals bound the
    /// state a recovering replica must re-fetch; larger ones amortize
    /// snapshot cost.
    pub fn checkpoint_interval(&mut self, k: u64) -> &mut Self {
        self.checkpoint_interval = k.max(1);
        self
    }

    /// Overrides the CLBFT log window (high watermark = stable checkpoint
    /// + window) for every replica group.
    pub fn watermark_window(&mut self, w: u64) -> &mut Self {
        self.watermark_window = w.max(1);
        self
    }

    /// Overrides how many produced replies (and reply routes) every
    /// replica retains per calling group for retransmits. Smaller values
    /// shrink checkpoint snapshots; a caller whose retry cadence is slower
    /// than the group completing this many newer requests risks wedging a
    /// stuck call (see the contract on the default in `pws-perpetual`).
    pub fn reply_retention(&mut self, n: usize) -> &mut Self {
        self.reply_retention = Some(n.max(1));
        self
    }

    /// Enables speculative execution for every replicated service: voters
    /// execute a batch when it pre-prepares instead of when it commits,
    /// rolling the application back from a snapshot if a view change
    /// discards the slot. Commit then finalizes the already-computed
    /// result without re-executing.
    pub fn speculative(&mut self, on: bool) -> &mut Self {
        self.speculative = on;
        self
    }

    /// Overrides the read-only fast-path reply quorum for every caller
    /// (replicated drivers and singleton clients alike). The default is
    /// `2f_t + 1` matching replies from the target group, capped at `n_t`;
    /// lowering it below that trades Byzantine safety for latency and is
    /// only meant for experiments.
    pub fn read_only_quorum(&mut self, q: usize) -> &mut Self {
        self.read_only_quorum = Some(q.max(1));
        self
    }

    /// Enables proactive recovery (paper §7 future work) for every
    /// replicated service: each window, exactly one replica per group
    /// (round-robin by index) tears its state down — voter log, driver
    /// bookkeeping, session keys — and rejoins through checkpoint state
    /// transfer. This time-bounds the `≤ f faulty replicas` assumption: a
    /// silently compromised replica is flushed within `n` windows.
    /// Singleton (`n = 1`) services are skipped — with no peers to fetch
    /// state from, a wipe would be an irrecoverable crash.
    pub fn proactive_recovery(&mut self, window: SimDuration) -> &mut Self {
        self.recovery_window = Some(window);
        self
    }

    /// Adds a replicated poll-driven service with `n` replicas. The factory
    /// is invoked once per replica (replica index passed in) and must
    /// produce deterministic, identical services.
    pub fn service<F>(&mut self, name: &str, n: u32, mut factory: F) -> &mut Self
    where
        F: FnMut(u32) -> Box<dyn Service> + 'static,
    {
        self.services.push(ServiceSpec {
            name: name.to_owned(),
            n,
            shards: 1,
            router: None,
            factory: Factory::Service(Box::new(move |i| factory(i))),
            faults: HashMap::new(),
        });
        self
    }

    /// Adds a replicated passive (request→reply) service with `n` replicas.
    pub fn passive_service<F>(&mut self, name: &str, n: u32, mut factory: F) -> &mut Self
    where
        F: FnMut(u32) -> Box<dyn PassiveService> + 'static,
    {
        self.services.push(ServiceSpec {
            name: name.to_owned(),
            n,
            shards: 1,
            router: None,
            factory: Factory::Passive(Box::new(move |i| factory(i))),
            faults: HashMap::new(),
        });
        self
    }

    /// Adds one *logical* service partitioned across `shards` independent
    /// voter groups of `n` replicas each, routed by the default
    /// [`RendezvousRouter`] on the request key. Every per-group subsystem
    /// — batching, pipelining, checkpointing, state transfer, proactive
    /// recovery — runs per shard, so agreement throughput scales out with
    /// the shard count instead of asymptoting at one group's rate.
    ///
    /// The factory is invoked once per replica with `(shard, replica)`
    /// and must produce deterministic services that are identical within
    /// a shard. Shard `k` is addressable directly as `name#k`
    /// (`urn:svc:name#k`); the logical URI `urn:svc:name` routes by key.
    /// Requests whose keys span shards are rejected with the typed
    /// [`RouteError::CrossShard`] (clients) or a deterministic abort
    /// fault (service outcalls) — single-shard operations only.
    pub fn sharded<F>(&mut self, name: &str, shards: u32, n: u32, factory: F) -> &mut Self
    where
        F: FnMut(u32, u32) -> Box<dyn Service> + 'static,
    {
        self.sharded_with_router(name, shards, n, Arc::new(RendezvousRouter::new()), factory)
    }

    /// [`SystemBuilder::sharded`] with an explicit key [`Router`].
    pub fn sharded_with_router<F>(
        &mut self,
        name: &str,
        shards: u32,
        n: u32,
        router: Arc<dyn Router>,
        mut factory: F,
    ) -> &mut Self
    where
        F: FnMut(u32, u32) -> Box<dyn Service> + 'static,
    {
        assert!(shards >= 1, "a sharded service needs at least one shard");
        self.services.push(ServiceSpec {
            name: name.to_owned(),
            n,
            shards,
            router: Some(router),
            factory: Factory::ShardedService(Box::new(move |s, i| factory(s, i))),
            faults: HashMap::new(),
        });
        self
    }

    /// Sharded variant of [`SystemBuilder::passive_service`]: one logical
    /// passive service across `shards` voter groups of `n` replicas,
    /// routed by the default [`RendezvousRouter`].
    pub fn sharded_passive<F>(
        &mut self,
        name: &str,
        shards: u32,
        n: u32,
        mut factory: F,
    ) -> &mut Self
    where
        F: FnMut(u32, u32) -> Box<dyn PassiveService> + 'static,
    {
        assert!(shards >= 1, "a sharded service needs at least one shard");
        self.services.push(ServiceSpec {
            name: name.to_owned(),
            n,
            shards,
            router: Some(Arc::new(RendezvousRouter::new())),
            factory: Factory::ShardedPassive(Box::new(move |s, i| factory(s, i))),
            faults: HashMap::new(),
        });
        self
    }

    /// Injects a fault into replica `idx` of service `name`. For sharded
    /// services address one shard as `name#<shard>`.
    ///
    /// # Panics
    ///
    /// Panics if the service has not been added yet, or if a shard suffix
    /// is malformed or out of range — a mistyped shard must fail loudly at
    /// build time, not leave the fault silently uninjected.
    pub fn fault(&mut self, name: &str, idx: u32, fault: FaultMode) -> &mut Self {
        let (base, shard) = match name.rsplit_once('#') {
            Some((base, s)) if self.services.iter().any(|sp| sp.name == base) => {
                let shard = s
                    .parse::<u32>()
                    .unwrap_or_else(|_| panic!("bad shard suffix in '{name}'"));
                (base, shard)
            }
            _ => (name, 0),
        };
        let spec = self
            .services
            .iter_mut()
            .find(|s| s.name == base)
            .unwrap_or_else(|| panic!("unknown service '{name}'"));
        assert!(
            shard < spec.shards,
            "service '{base}' has {} shard(s); '{name}' is out of range",
            spec.shards
        );
        spec.faults.insert((shard, idx), fault);
        self
    }

    /// Adds an unreplicated scripted client that fires `total` requests at
    /// service `target`, all at once (open window).
    pub fn scripted_client(&mut self, name: &str, target: &str, total: u64) -> &mut Self {
        self.scripted_client_windowed(name, target, total, total)
    }

    /// Adds a scripted client that keeps at most `window` requests
    /// outstanding until `total` complete — `window = 1` is the paper's
    /// synchronous client; larger windows are the parallel asynchronous
    /// clients of Fig. 9.
    pub fn scripted_client_windowed(
        &mut self,
        name: &str,
        target: &str,
        total: u64,
        window: u64,
    ) -> &mut Self {
        self.clients.push(ClientSpec {
            name: name.to_owned(),
            kind: ClientKind::Scripted {
                target: target.to_owned(),
                total,
                window: window.max(1),
                op: "increment".to_owned(),
                payload: String::new(),
                timeout: None,
            },
        });
        self
    }

    /// Sets a client-side give-up timeout on the most recently added
    /// scripted client.
    pub fn client_timeout(&mut self, d: SimDuration) -> &mut Self {
        if let Some(ClientSpec {
            kind: ClientKind::Scripted { timeout, .. },
            ..
        }) = self.clients.last_mut()
        {
            *timeout = Some(d);
        }
        self
    }

    /// Adds a custom unreplicated client node (e.g. a TPC-W browser
    /// emulator). The factory receives the client's wired-up [`ClientCore`]
    /// and the deployment's URI map.
    pub fn custom_client<F>(&mut self, name: &str, factory: F) -> &mut Self
    where
        F: FnOnce(ClientCore, Arc<UriMap>) -> Box<dyn Node> + 'static,
    {
        self.clients.push(ClientSpec {
            name: name.to_owned(),
            kind: ClientKind::Custom(Box::new(factory)),
        });
        self
    }

    /// Constructs the deployment.
    ///
    /// # Panics
    ///
    /// Panics if a client's target service does not exist or a group size is
    /// not `3f + 1`.
    pub fn build(self) -> System {
        let mut sim = match self.net {
            Some(net) => Simulation::with_net(self.seed, net),
            None => Simulation::with_net(self.seed, default_ws_net()),
        };
        let mut topo = Topology::new();
        let mut uris = UriMap::default();
        let mut groups_by_name = HashMap::new();
        let mut next_node = 0u32;
        let mut next_group = 0u32;

        for spec in &self.services {
            // A sharded service occupies `shards` consecutive groups, each
            // registered under its `name#k` alias; an unsharded one is the
            // single-group degenerate case of the same loop.
            let mut shard_groups = Vec::with_capacity(spec.shards as usize);
            for k in 0..spec.shards {
                let gid = GroupId(next_group);
                next_group += 1;
                let nodes: Vec<NodeId> = (next_node..next_node + spec.n)
                    .map(NodeId::from_raw)
                    .collect();
                next_node += spec.n;
                topo.register(gid, nodes);
                if spec.router.is_some() {
                    groups_by_name.insert(format!("{}#{k}", spec.name), gid);
                } else {
                    uris.insert(&spec.name, gid);
                    groups_by_name.insert(spec.name.clone(), gid);
                }
                shard_groups.push(gid);
            }
            if let Some(router) = &spec.router {
                uris.insert_sharded(&spec.name, shard_groups, router.clone());
            }
        }
        for client in &self.clients {
            let gid = GroupId(next_group);
            next_group += 1;
            topo.register(gid, vec![NodeId::from_raw(next_node)]);
            next_node += 1;
            groups_by_name.insert(client.name.clone(), gid);
        }

        let topo = Arc::new(topo);
        let uris = Arc::new(uris);

        let mut client_nodes = HashMap::new();
        for mut spec in self.services {
            for shard in 0..spec.shards {
                let (hosted_name, gid) = if spec.router.is_some() {
                    let alias = format!("{}#{shard}", spec.name);
                    let gid = groups_by_name[&alias];
                    (alias, gid)
                } else {
                    (spec.name.clone(), groups_by_name[&spec.name])
                };
                for idx in 0..spec.n {
                    let mut cfg = ReplicaConfig::new(gid, idx, topo.clone(), self.seed);
                    cfg.cost = self.cost;
                    cfg.view_timeout = self.view_timeout;
                    cfg.retry_interval = self.retry_interval;
                    cfg.max_batch_size = self.max_batch_size;
                    cfg.batch_delay = self.batch_delay;
                    cfg.checkpoint_interval = self.checkpoint_interval;
                    cfg.watermark_window = self.watermark_window;
                    cfg.recovery_interval = self.recovery_window;
                    if let Some(r) = self.reply_retention {
                        cfg.reply_retention = r;
                    }
                    cfg.speculative = self.speculative;
                    cfg.read_only_quorum = self.read_only_quorum;
                    cfg.fault = spec.faults.get(&(shard, idx)).copied().unwrap_or_default();
                    let service: Box<dyn Service> = match &mut spec.factory {
                        Factory::Service(f) => f(idx),
                        Factory::Passive(f) => Box::new(PassiveHost::new(f(idx))),
                        Factory::ShardedService(f) => f(shard, idx),
                        Factory::ShardedPassive(f) => Box::new(PassiveHost::new(f(shard, idx))),
                    };
                    let executor: Box<dyn Executor> = Box::new(ServiceExecutor::new(
                        service,
                        &hosted_name,
                        uris.clone(),
                        self.ws_cost,
                    ));
                    let node = sim.add_node(Box::new(PerpetualReplica::new(cfg, executor)));
                    debug_assert_eq!(node, topo.node(gid, idx));
                }
            }
        }
        for spec in self.clients {
            let gid = groups_by_name[&spec.name];
            let mut core = ClientCore::new(gid, topo.clone(), self.seed, self.cost);
            core.set_read_only_quorum(self.read_only_quorum);
            let node_box: Box<dyn Node> = match spec.kind {
                ClientKind::Scripted {
                    target,
                    total,
                    window,
                    op,
                    payload,
                    timeout,
                } => {
                    let target_uri = service_uri(&target);
                    // Service targets route through the URI map (sharded
                    // ones per request key); anything else — e.g. another
                    // client's degenerate group — stays pinned.
                    let fixed = if uris.group(&target_uri).is_some()
                        || uris.shard_count(&target_uri).is_some()
                    {
                        None
                    } else {
                        Some(
                            *groups_by_name
                                .get(&target)
                                .unwrap_or_else(|| panic!("client target '{target}' unknown")),
                        )
                    };
                    Box::new(ScriptedClient {
                        core,
                        uris: uris.clone(),
                        fixed,
                        shard_metric_keys: HashMap::new(),
                        target_uri,
                        engine: Engine::with_id_prefix(spec.name.clone()),
                        ws_cost: self.ws_cost,
                        total,
                        window,
                        op,
                        payload,
                        timeout,
                        sent: 0,
                        send_times: HashMap::new(),
                        replies: Vec::new(),
                        latencies: Vec::new(),
                        first_send: None,
                        last_complete: None,
                        retry_timer: None,
                    })
                }
                ClientKind::Custom(factory) => factory(core, uris.clone()),
            };
            let node = sim.add_node(node_box);
            client_nodes.insert(spec.name.clone(), node);
            debug_assert_eq!(node, topo.node(gid, 0));
        }

        System {
            sim,
            groups_by_name,
            client_nodes,
        }
    }
}

/// A built deployment ready to run.
pub struct System {
    sim: Simulation,
    groups_by_name: HashMap<String, GroupId>,
    client_nodes: HashMap<String, NodeId>,
}

impl std::fmt::Debug for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("System")
            .field("groups", &self.groups_by_name.len())
            .field("now", &self.sim.now())
            .finish_non_exhaustive()
    }
}

impl System {
    /// Runs until quiescence or `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) -> RunOutcome {
        self.sim.run_until(deadline)
    }

    /// Runs for an additional span of virtual time.
    pub fn run_for(&mut self, d: SimDuration) -> RunOutcome {
        self.sim.run_for(d)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// The group id of a service or client.
    ///
    /// # Panics
    ///
    /// Panics if the name is unknown.
    pub fn group(&self, name: &str) -> GroupId {
        self.groups_by_name[name]
    }

    /// Direct access to the simulation (metrics, network faults, tracing).
    pub fn sim_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &pws_simnet::metrics::Metrics {
        self.sim.metrics()
    }

    /// Replies recorded by a scripted client.
    ///
    /// # Panics
    ///
    /// Panics if the client name is unknown.
    pub fn client_replies(&mut self, name: &str) -> Vec<MessageContext> {
        let node = self.client_nodes[name];
        self.sim
            .node_mut::<ScriptedClient>(node)
            .expect("scripted client")
            .replies
            .clone()
    }

    /// Per-request completion latencies recorded by a scripted client.
    pub fn client_latencies(&mut self, name: &str) -> Vec<SimDuration> {
        let node = self.client_nodes[name];
        self.sim
            .node_mut::<ScriptedClient>(node)
            .expect("scripted client")
            .latencies
            .clone()
    }

    /// Client throughput: completed requests / (last completion − first
    /// send), in requests per second. `None` until two data points exist.
    pub fn client_throughput(&mut self, name: &str) -> Option<f64> {
        let node = self.client_nodes[name];
        let c = self
            .sim
            .node_mut::<ScriptedClient>(node)
            .expect("scripted client");
        let (first, last) = (c.first_send?, c.last_complete?);
        let span = (last - first).as_secs_f64();
        if span <= 0.0 {
            return None;
        }
        Some(c.replies.len() as f64 / span)
    }

    /// The span of a scripted client's run: `(first send, last
    /// completion)`. `None` until both ends exist. Aggregating spans
    /// across clients gives deployment-wide throughput for sharded
    /// sweeps.
    ///
    /// # Panics
    ///
    /// Panics if the client name is unknown.
    pub fn client_span(&mut self, name: &str) -> Option<(SimTime, SimTime)> {
        let node = self.client_nodes[name];
        let c = self
            .sim
            .node_mut::<ScriptedClient>(node)
            .expect("scripted client");
        Some((c.first_send?, c.last_complete?))
    }

    /// The simnet node hosting a client (for typed access to custom client
    /// nodes).
    ///
    /// # Panics
    ///
    /// Panics if the client name is unknown.
    pub fn client_node(&self, name: &str) -> NodeId {
        self.client_nodes[name]
    }

    /// Typed access to a service replica's hosted state (for assertions).
    pub fn replica_mut(&mut self, name: &str, idx: u32) -> Option<&mut PerpetualReplica> {
        let gid = self.groups_by_name.get(name)?;
        // Topology assigned node ids densely in registration order; look the
        // node up through the replica itself.
        let node = self.replica_node(*gid, idx)?;
        self.sim.node_mut::<PerpetualReplica>(node)
    }

    fn replica_node(&mut self, gid: GroupId, idx: u32) -> Option<NodeId> {
        // Node ids are assigned densely: scan is fine at deployment sizes.
        for raw in 0..self.sim.node_count() as u32 {
            let node = NodeId::from_raw(raw);
            if let Some(r) = self.sim.node_mut::<PerpetualReplica>(node) {
                if r.group() == gid && r.index() == idx {
                    return Some(node);
                }
            }
        }
        None
    }
}

/// A simnet node that drives a replicated service with a fixed script of
/// requests, keeping a bounded window outstanding. The workhorse behind the
/// micro-benchmarks (Figs. 7–9).
pub struct ScriptedClient {
    core: ClientCore,
    uris: Arc<UriMap>,
    /// `Some` when the target is not a routed service (e.g. another
    /// client's group); `None` routes per request through the URI map.
    fixed: Option<GroupId>,
    /// Cached per-shard metric names (`clbft.shard.route.<g>`), so the
    /// hot path formats each key once.
    shard_metric_keys: HashMap<GroupId, String>,
    target_uri: String,
    engine: Engine,
    ws_cost: WsCostModel,
    total: u64,
    window: u64,
    op: String,
    payload: String,
    timeout: Option<SimDuration>,
    sent: u64,
    send_times: HashMap<u64, SimTime>,
    /// Replies received, in completion order.
    pub replies: Vec<MessageContext>,
    /// Completion latencies, in completion order.
    pub latencies: Vec<SimDuration>,
    first_send: Option<SimTime>,
    last_complete: Option<SimTime>,
    retry_timer: Option<pws_simnet::TimerId>,
}

/// How often a scripted client re-transmits stale outstanding calls.
const RETRY_SWEEP: SimDuration = SimDuration::from_millis(900);

impl std::fmt::Debug for ScriptedClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptedClient")
            .field("sent", &self.sent)
            .field("completed", &self.replies.len())
            .finish_non_exhaustive()
    }
}

impl ScriptedClient {
    fn fire(&mut self, ctx: &mut Context<'_>) {
        // An unroutable request (cross-shard key, unknown service) burns
        // its slot as a recorded error and the loop moves to the next one
        // — a client whose whole script is unroutable finishes with zero
        // replies and a telling `client.route_errors` count, instead of
        // wedging its window forever.
        while self.sent < self.total {
            let seq = self.sent;
            self.sent += 1;
            let mut mc = MessageContext::request(&self.target_uri, &self.op);
            mc.body_mut().name = self.op.clone();
            mc.body_mut().text = if self.payload.is_empty() {
                seq.to_string()
            } else {
                self.payload.clone()
            };
            mc.addressing_mut().reply_to = Some("urn:client".to_owned());
            let target = match self.fixed {
                Some(gid) => gid,
                None => match self.uris.route(&self.target_uri, routing_key(&mc)) {
                    Ok((_, gid)) => {
                        if self.uris.shard_count(&self.target_uri).is_some() {
                            ctx.metrics().incr("clbft.shard.routed");
                            let key = self
                                .shard_metric_keys
                                .entry(gid)
                                .or_insert_with(|| format!("clbft.shard.route.{gid}"));
                            ctx.metrics().incr(key);
                        }
                        gid
                    }
                    Err(e) => {
                        if matches!(e, RouteError::CrossShard { .. }) {
                            ctx.metrics().incr("clbft.shard.cross_rejected");
                        }
                        ctx.metrics().incr("client.route_errors");
                        continue;
                    }
                },
            };
            if self.engine.run_out_pipe(&mut mc).is_err() {
                continue;
            }
            let Ok(bytes) = mc.to_bytes() else { continue };
            ctx.spend(self.ws_cost.marshal_cost(bytes.len()));
            let call = self.core.call(ctx, target, bytes);
            self.after_fire(call, ctx);
            return;
        }
    }

    fn after_fire(&mut self, call: pws_perpetual::CallId, ctx: &mut Context<'_>) {
        self.send_times.insert(call.0, ctx.now());
        if self.first_send.is_none() {
            self.first_send = Some(ctx.now());
        }
        if let Some(t) = self.timeout {
            ctx.set_timer(t);
        }
    }
}

impl Node for ScriptedClient {
    fn on_start(&mut self, ctx: &mut Context<'_>) {
        for _ in 0..self.window.min(self.total) {
            self.fire(ctx);
        }
        // Periodic retry sweep (responder rotation for faulty responders).
        self.retry_timer = Some(ctx.set_timer(RETRY_SWEEP));
    }

    fn on_message(&mut self, _from: NodeId, msg: Bytes, ctx: &mut Context<'_>) {
        if let Some(ClientEvent::Reply { call, payload }) = self.core.on_message(&msg, ctx) {
            ctx.spend(self.ws_cost.demarshal_cost(payload.len()));
            if let Ok(mc) = MessageContext::from_bytes(&payload) {
                if let Some(sent_at) = self.send_times.remove(&call.0) {
                    self.latencies.push(ctx.now() - sent_at);
                }
                self.replies.push(mc);
                self.last_complete = Some(ctx.now());
                ctx.metrics().incr("client.web_interactions");
                self.fire(ctx);
            }
        }
    }

    fn on_timer(&mut self, timer: pws_simnet::TimerId, ctx: &mut Context<'_>) {
        if Some(timer) == self.retry_timer {
            // Retry sweep: retransmit every call outstanding longer than a
            // sweep interval (responder rotation masks a faulty responder).
            let now = ctx.now();
            let stale: Vec<u64> = self
                .send_times
                .iter()
                .filter(|(_, t)| now - **t >= RETRY_SWEEP)
                .map(|(c, _)| *c)
                .collect();
            for call in stale {
                self.core.retry(ctx, pws_perpetual::CallId(call));
            }
            self.retry_timer = if self.send_times.is_empty() && self.sent >= self.total {
                None
            } else {
                Some(ctx.set_timer(RETRY_SWEEP))
            };
            return;
        }
        // A give-up timer fired; abandon the oldest outstanding call if it
        // has really been outstanding for the timeout, so closed-loop
        // clients cannot wedge on a compromised target.
        let Some(timeout) = self.timeout else { return };
        if let Some((&call, &sent_at)) = self.send_times.iter().min_by_key(|(_, t)| **t) {
            if ctx.now() - sent_at >= timeout {
                self.send_times.remove(&call);
                self.core.abandon(pws_perpetual::CallId(call));
                ctx.metrics().incr("client.abandoned");
                self.fire(ctx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uri_map_resolves() {
        let mut m = UriMap::default();
        m.insert("pge", GroupId(4));
        assert_eq!(m.group("urn:svc:pge"), Some(GroupId(4)));
        assert_eq!(m.group("urn:svc:bank"), None);
        assert_eq!(service_uri("pge"), "urn:svc:pge");
    }

    #[test]
    #[should_panic(expected = "unknown service")]
    fn fault_on_unknown_service_panics() {
        let mut b = SystemBuilder::new(1);
        b.fault("ghost", 0, FaultMode::Silent);
    }
}
