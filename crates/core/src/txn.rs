//! Cross-shard transactions and live resharding: the elastic coordination
//! layer over sharded CLBFT groups.
//!
//! Sharding (see [`crate::router`]) made multi-key requests whose keys span
//! shards a typed error. This module turns them into **two-phase commits**
//! instead: the shard owning the request's *first* key becomes the
//! **coordinator**, every other owning shard a **participant**, and the
//! protocol's records — `TxnPrepare`, `TxnCommit`, `TxnAbort` — travel as
//! *config-flagged* ordered requests, so each record seals a CLBFT
//! agreement slot of its own at the shard that executes it (see
//! `pws_clbft::messages::Request::config`). Votes and acknowledgements
//! ride the ordinary Perpetual outcall path: they come back `f_t + 1`
//! matched and are agreed into the coordinator's own log before the
//! coordinator's state machine consumes them, so a recovering coordinator
//! replica replays the identical decision every correct peer took — a
//! coordinator never forgets an outcome.
//!
//! The same shim hosts **live resharding**: an ordered `reshardExport`
//! config record fences the keys that rendezvous routing reassigns at the
//! grown shard count (requests for fenced keys get a typed
//! [`WRONG_SHARD_FAULT`] redirect), and ordered `reshardImport` records
//! install the migrated entries at the new shard, which holds client
//! traffic until every source shard's import has arrived. The epoch flip
//! is therefore anchored *per group* by an ordered config record; the
//! client-visible epoch atomic ([`crate::RouterEpoch`]) is advisory
//! routing on top.
//!
//! Everything here is deterministic: all state lives in `BTreeMap`s /
//! `BTreeSet`s, all records have count-capped decoders, and the whole shim
//! snapshot-encodes in sorted order so checkpoint digests converge.

use crate::api::{Poll, Service, WsEvent};
use crate::host::ServiceCtx;
use crate::router::{routing_key, split_keys, Router};
use pws_perpetual::snapshot::{counted, Decoder, Encoder, WireError};
use pws_simnet::{AuditEvent, ProtoFamily};
use pws_soap::{Envelope, Fault, MessageContext, XmlNode};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Operation name of a prepare record request.
pub const OP_TXN_PREPARE: &str = "txnPrepare";
/// Operation name of a commit decision record request.
pub const OP_TXN_COMMIT: &str = "txnCommit";
/// Operation name of an abort decision record request.
pub const OP_TXN_ABORT: &str = "txnAbort";
/// Operation name of the reshard fence-and-export record.
pub const OP_RESHARD_EXPORT: &str = "reshardExport";
/// Operation name of the reshard state-install record.
pub const OP_RESHARD_IMPORT: &str = "reshardImport";

/// Fault code a shard replies with when a request names a key it no longer
/// owns after an epoch flip. Clients treat it as *retry guidance* (re-route
/// at the current epoch), not as an application failure.
pub const WRONG_SHARD_FAULT: &str = "pws:WrongShard";
/// Fault code the coordinator replies with when a cross-shard transaction
/// aborts (lock conflict, failed validation, or a participant timeout).
pub const TXN_ABORTED_FAULT: &str = "pws:TxnAborted";

/// Wire tag of a [`TxnRecord::Prepare`].
pub const TXN_PREPARE: u8 = 1;
/// Wire tag of a [`TxnRecord::Commit`].
pub const TXN_COMMIT: u8 = 2;
/// Wire tag of a [`TxnRecord::Abort`].
pub const TXN_ABORT: u8 = 3;

/// Most entity keys one transaction record may carry; decode rejects more
/// before allocating.
pub const MAX_TXN_KEYS: usize = 1024;
/// Most `(key, value)` entries one reshard export/import may carry.
pub const MAX_RESHARD_ENTRIES: usize = 1 << 16;

/// How long the coordinator waits for a participant's vote before counting
/// it as a NO (the deterministic Perpetual abort timeout on the prepare).
pub const PREPARE_TIMEOUT_MS: u64 = 4000;
/// Abort timeout on decision records; a timed-out decision is re-sent until
/// acknowledged, so no participant is left holding locks.
pub const DECISION_TIMEOUT_MS: u64 = 4000;

// ------------------------------------------------------------------ codecs

/// Lowercase hex encoding — transaction records travel inside SOAP body
/// text, which is a string.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        s.push(char::from_digit((b & 0xF) as u32, 16).expect("nibble"));
    }
    s
}

/// Inverse of [`to_hex`]; `None` for odd lengths or non-hex digits.
pub fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let digits: Vec<u8> = s
        .chars()
        .map(|c| c.to_digit(16).map(|d| d as u8))
        .collect::<Option<_>>()?;
    Some(digits.chunks(2).map(|p| (p[0] << 4) | p[1]).collect())
}

fn txn_err() -> WireError {
    WireError::malformed("malformed transaction record")
}

/// Folds a transaction's `wsa:MessageID` into the 64-bit protocol-span id
/// space (FNV-1a over the id string). Observability needs a stable,
/// deterministic identity shared by coordinator and participants — not
/// collision resistance.
fn txn_span_id(txn: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in txn.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_str(e: &mut Encoder, s: &str) {
    e.put_bytes(s.as_bytes());
}

fn get_str(d: &mut Decoder<'_>) -> Result<String, WireError> {
    String::from_utf8(d.bytes()?.to_vec()).map_err(|_| txn_err())
}

/// A durable two-phase-commit record, ordered in a shard's CLBFT log as a
/// config-flagged request (own sequence slot, digest-covered flags byte).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TxnRecord {
    /// Phase 1: the coordinator asks a participant to lock `keys` and vote.
    Prepare {
        /// Transaction id: the originating request's `wsa:MessageID` —
        /// agreed content, so every coordinator replica derives the same id.
        txn: String,
        /// The coordinator's shard index (where the decision is replayable).
        coordinator: u32,
        /// The application operation to apply at commit.
        op: String,
        /// The participant-owned entity keys, locked for the 2PC window.
        keys: Vec<String>,
    },
    /// Phase 2: all participants voted YES; apply and release.
    Commit {
        /// Transaction id.
        txn: String,
    },
    /// Phase 2: some participant voted NO (or timed out); release only.
    Abort {
        /// Transaction id.
        txn: String,
    },
}

impl TxnRecord {
    /// Serializes the record with the shared length-prefixed codec.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            TxnRecord::Prepare {
                txn,
                coordinator,
                op,
                keys,
            } => {
                e.put_u8(TXN_PREPARE);
                put_str(&mut e, txn);
                e.put_u32(*coordinator);
                put_str(&mut e, op);
                e.put_u32(keys.len() as u32);
                for k in keys {
                    put_str(&mut e, k);
                }
            }
            TxnRecord::Commit { txn } => {
                e.put_u8(TXN_COMMIT);
                put_str(&mut e, txn);
            }
            TxnRecord::Abort { txn } => {
                e.put_u8(TXN_ABORT);
                put_str(&mut e, txn);
            }
        }
        e.finish().to_vec()
    }

    /// Decodes a record, rejecting junk tags and key counts past
    /// [`MAX_TXN_KEYS`] before allocating.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for truncated, oversized, or trailing input.
    pub fn decode(buf: &[u8]) -> Result<TxnRecord, WireError> {
        let mut d = Decoder::new(buf);
        let rec = match d.u8()? {
            TXN_PREPARE => {
                let txn = get_str(&mut d)?;
                let coordinator = d.u32()?;
                let op = get_str(&mut d)?;
                let keys = counted(&mut d, MAX_TXN_KEYS, txn_err, get_str)?;
                TxnRecord::Prepare {
                    txn,
                    coordinator,
                    op,
                    keys,
                }
            }
            TXN_COMMIT => TxnRecord::Commit {
                txn: get_str(&mut d)?,
            },
            TXN_ABORT => TxnRecord::Abort {
                txn: get_str(&mut d)?,
            },
            _ => return Err(txn_err()),
        };
        d.finish()?;
        Ok(rec)
    }
}

/// The ordered record that fences and extracts the keys a grown shard
/// count reassigns away from the receiving shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReshardExport {
    /// The new (post-flip) active shard count.
    pub new_count: u32,
}

impl ReshardExport {
    /// Serializes the record.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u32(self.new_count);
        e.finish().to_vec()
    }

    /// Decodes the record.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for truncated or trailing input.
    pub fn decode(buf: &[u8]) -> Result<ReshardExport, WireError> {
        let mut d = Decoder::new(buf);
        let new_count = d.u32()?;
        d.finish()?;
        Ok(ReshardExport { new_count })
    }
}

/// The ordered record that installs one source shard's migrated entries at
/// the new shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReshardImport {
    /// The shard the entries were exported from.
    pub from_shard: u32,
    /// The shard count before the flip (entries must route to `from_shard`
    /// at this count — the range bound on the source side).
    pub old_count: u32,
    /// The shard count after the flip (entries must route to the receiving
    /// shard at this count — the range bound on the destination side).
    pub new_count: u32,
    /// How many source shards will send imports; the new shard holds
    /// client traffic until all of them have arrived.
    pub sources: u32,
    /// The migrated `(key, opaque state)` entries.
    pub entries: Vec<(String, Vec<u8>)>,
}

impl ReshardImport {
    /// Serializes the record (entries in the order given; senders sort).
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u32(self.from_shard);
        e.put_u32(self.old_count);
        e.put_u32(self.new_count);
        e.put_u32(self.sources);
        put_entries(&mut e, &self.entries);
        e.finish().to_vec()
    }

    /// Decodes the record, rejecting entry counts past
    /// [`MAX_RESHARD_ENTRIES`] before allocating.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] for truncated, oversized, or trailing input.
    pub fn decode(buf: &[u8]) -> Result<ReshardImport, WireError> {
        let mut d = Decoder::new(buf);
        let rec = ReshardImport {
            from_shard: d.u32()?,
            old_count: d.u32()?,
            new_count: d.u32()?,
            sources: d.u32()?,
            entries: get_entries(&mut d)?,
        };
        d.finish()?;
        Ok(rec)
    }
}

fn put_entries(e: &mut Encoder, entries: &[(String, Vec<u8>)]) {
    e.put_u32(entries.len() as u32);
    for (k, v) in entries {
        put_str(e, k);
        e.put_bytes(v);
    }
}

fn get_entries(d: &mut Decoder<'_>) -> Result<Vec<(String, Vec<u8>)>, WireError> {
    counted(d, MAX_RESHARD_ENTRIES, txn_err, |d| {
        Ok((get_str(d)?, d.bytes()?.to_vec()))
    })
}

/// Page size the reshard-export integrity envelope chunks its payload at.
/// Exports reuse the checkpoint subsystem's page index
/// ([`pws_perpetual::PageManifest`]) rather than inventing a second
/// digesting scheme.
const RESHARD_PAGE_SIZE: u32 = pws_perpetual::DEFAULT_PAGE_SIZE;

/// Serializes exported `(key, state)` entries for a `reshardExport` reply,
/// sealed under the Merkle root of the payload's page table — the same
/// page index checkpoints use. The importer recomputes the root over the
/// received bytes ([`decode_entries`]) and rejects a corrupted or spliced
/// export before anything installs.
pub fn encode_entries(entries: &[(String, Vec<u8>)]) -> Vec<u8> {
    let mut body = Encoder::new();
    put_entries(&mut body, entries);
    let body = body.finish();
    let manifest = pws_perpetual::PageManifest::compute(&body, RESHARD_PAGE_SIZE);
    let mut e = Encoder::new();
    e.put_digest(&manifest.root());
    e.put_bytes(&body);
    e.finish().to_vec()
}

/// Inverse of [`encode_entries`]: verifies the payload's page-tree root
/// before decoding the entries.
///
/// # Errors
///
/// Returns [`WireError`] for truncated, oversized, or trailing input, or
/// when the payload does not hash to the sealed root.
pub fn decode_entries(buf: &[u8]) -> Result<Vec<(String, Vec<u8>)>, WireError> {
    let mut d = Decoder::new(buf);
    let root = d.digest()?;
    let body = d.bytes()?;
    d.finish()?;
    let manifest = pws_perpetual::PageManifest::compute(&body, RESHARD_PAGE_SIZE);
    if manifest.root() != root {
        return Err(WireError::malformed("reshard export root mismatch"));
    }
    let mut d = Decoder::new(&body);
    let entries = get_entries(&mut d)?;
    d.finish()?;
    Ok(entries)
}

// --------------------------------------------------------- decision machine

/// The pure coordinator decision function: given the votes received so far
/// and the full participant set, `Some(true)` once every participant voted
/// YES, `Some(false)` as soon as any vote is NO, `None` while undecided.
///
/// Replay-stable by construction: the outcome depends only on the vote
/// *values*, never on arrival order, so every coordinator replica — and a
/// recovering one replaying agreed votes from its checkpointed log —
/// reaches the identical decision.
pub fn decide(votes: &BTreeMap<u32, bool>, participants: &BTreeSet<u32>) -> Option<bool> {
    if votes
        .iter()
        .any(|(s, yes)| participants.contains(s) && !yes)
    {
        return Some(false);
    }
    if participants.iter().all(|s| votes.contains_key(s)) {
        Some(true)
    } else {
        None
    }
}

// ------------------------------------------------------------------- locks

/// Per-shard entity-key lock table: each key is held by at most one
/// transaction from prepare to decision. Deterministic (sorted map) and
/// snapshot-encodable.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LockTable {
    locks: BTreeMap<String, String>,
}

impl LockTable {
    /// An empty table.
    pub fn new() -> Self {
        LockTable::default()
    }

    /// Atomically locks every key for `txn`: either all keys are free (or
    /// already held by `txn` itself) and all become held, or nothing
    /// changes and `false` comes back.
    pub fn try_lock(&mut self, txn: &str, keys: &[String]) -> bool {
        if keys
            .iter()
            .any(|k| self.locks.get(k).is_some_and(|h| h != txn))
        {
            return false;
        }
        for k in keys {
            self.locks.insert(k.clone(), txn.to_owned());
        }
        true
    }

    /// Releases every key held by `txn`; returns how many were freed.
    pub fn release(&mut self, txn: &str) -> usize {
        let before = self.locks.len();
        self.locks.retain(|_, h| h != txn);
        before - self.locks.len()
    }

    /// Whether `key` is currently locked.
    pub fn is_locked(&self, key: &str) -> bool {
        self.locks.contains_key(key)
    }

    /// The transaction holding `key`, if any.
    pub fn holder(&self, key: &str) -> Option<&str> {
        self.locks.get(key).map(String::as_str)
    }

    /// Number of held keys.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// Whether no key is held.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }
}

// ----------------------------------------------------------------- service

/// A [`Service`] that can take part in cross-shard transactions and live
/// resharding. The shim drives these hooks; `on_event` keeps serving
/// ordinary single-shard requests unchanged.
///
/// Implementations must follow the *always-ready* idiom (`on_event`
/// returns [`Poll::Next`]): the shim delivers every event and defers
/// conflicting requests itself, so a narrowing wait set underneath it
/// would be ignored.
pub trait TxnService: Service {
    /// Phase-1 validation: may `op` be applied to `keys` here? Runs with no
    /// side effects; the default accepts everything.
    fn txn_validate(&mut self, op: &str, keys: &[String]) -> bool {
        let _ = (op, keys);
        true
    }

    /// Phase-2 application: apply `op` to this shard's `keys` and return a
    /// human-readable result detail (folded into the coordinator's
    /// composite reply). Must be deterministic.
    fn txn_execute(&mut self, op: &str, keys: &[String]) -> String;

    /// Extracts (and removes) every entity whose key satisfies `moved`,
    /// as opaque `(key, state)` entries. The default owns nothing.
    fn export_keys(&mut self, moved: &dyn Fn(&str) -> bool) -> Vec<(String, Vec<u8>)> {
        let _ = moved;
        Vec::new()
    }

    /// Installs entries previously produced by [`TxnService::export_keys`]
    /// on another shard. The default drops them.
    fn import_keys(&mut self, entries: &[(String, Vec<u8>)]) {
        let _ = entries;
    }
}

// -------------------------------------------------------------------- shim

/// One in-flight transaction this shard coordinates.
#[derive(Debug, Clone)]
struct Coord {
    op: String,
    /// The original client request, kept so the composite reply (or abort
    /// fault) correlates through its reply handle.
    orig: MessageContext,
    local_keys: Vec<String>,
    /// Participant shard → the keys it owns, at the coordinator's epoch.
    remote: BTreeMap<u32, Vec<String>>,
    votes: BTreeMap<u32, bool>,
    decided: Option<bool>,
    /// Per-shard commit result details (coordinator's own under its index).
    results: BTreeMap<u32, String>,
    acked: BTreeSet<u32>,
}

/// A participant-side prepared (locked, not yet decided) transaction.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Prep {
    op: String,
    keys: Vec<String>,
}

/// The transaction/resharding shim: wraps a [`TxnService`] and hosts the
/// two-phase-commit coordinator and participant state machines plus the
/// resharding fence/import gates, entirely out of agreed events — so every
/// replica of the shard runs the identical machine.
///
/// Built by `SystemBuilder::sharded_txn`; not normally constructed by hand.
pub struct TxnShim {
    inner: Box<dyn TxnService>,
    name: String,
    shard: u32,
    /// The shard count this shard *has ordered*: updated only by ordered
    /// reshard records, never by the client-side epoch atomic, so replay
    /// after recovery re-derives identical routing decisions.
    epoch_shards: u32,
    router: Arc<dyn Router>,
    locks: LockTable,
    /// Participant state: prepared transactions awaiting a decision.
    prepared: BTreeMap<String, Prep>,
    /// Participant idempotency memo: decided transaction → the ack text
    /// already sent (re-sent verbatim for replayed decisions).
    finished: BTreeMap<String, String>,
    /// Coordinator state for in-flight transactions.
    coord: BTreeMap<String, Coord>,
    /// The coordinator's durable outcome memory: every decision ever taken.
    decided: BTreeMap<String, bool>,
    /// Outstanding prepare calls: raw token → (txn, participant shard).
    prepare_calls: BTreeMap<u64, (String, u32)>,
    /// Outstanding decision calls: raw token → (txn, participant shard).
    decision_calls: BTreeMap<u64, (String, u32)>,
    /// Ordinary requests deferred behind a lock, in arrival order.
    deferred: Vec<MessageContext>,
    /// Keys fenced away by a reshard export: requests naming them redirect.
    fenced: BTreeSet<String>,
    /// A new (spare) shard holds client traffic until every source shard's
    /// import has arrived.
    gate_closed: bool,
    imported_sources: BTreeSet<u32>,
    /// Requests held while the gate is closed, in arrival order.
    held: Vec<MessageContext>,
    /// Reshard-export idempotency memo: `(new_count, reply text)`.
    last_export: Option<(u32, String)>,
    /// Re-entrancy guard for deferred/held drains (transient, not
    /// snapshotted — both queues drain again at the next release).
    draining: bool,
}

impl std::fmt::Debug for TxnShim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TxnShim")
            .field("shard", &self.shard)
            .field("epoch_shards", &self.epoch_shards)
            .field("locks", &self.locks.len())
            .field("coordinating", &self.coord.len())
            .field("prepared", &self.prepared.len())
            .field("gate_closed", &self.gate_closed)
            .finish_non_exhaustive()
    }
}

impl TxnShim {
    /// Wraps `inner` as shard `shard` of sharded service `name`, routing
    /// with `router` over `active_shards` shards. A `dormant` shard (a
    /// pre-provisioned spare) holds all client traffic until resharding
    /// imports open its gate.
    pub fn new(
        inner: Box<dyn TxnService>,
        name: impl Into<String>,
        shard: u32,
        router: Arc<dyn Router>,
        active_shards: u32,
        dormant: bool,
    ) -> Self {
        TxnShim {
            inner,
            name: name.into(),
            shard,
            epoch_shards: active_shards.max(1),
            router,
            locks: LockTable::new(),
            prepared: BTreeMap::new(),
            finished: BTreeMap::new(),
            coord: BTreeMap::new(),
            decided: BTreeMap::new(),
            prepare_calls: BTreeMap::new(),
            decision_calls: BTreeMap::new(),
            deferred: Vec::new(),
            fenced: BTreeSet::new(),
            gate_closed: dormant,
            imported_sources: BTreeSet::new(),
            held: Vec::new(),
            last_export: None,
            draining: false,
        }
    }

    /// Typed access to the wrapped service (for assertions after a run).
    pub fn inner_mut<T: TxnService>(&mut self) -> Option<&mut T> {
        let any: &mut dyn std::any::Any = self.inner.as_mut();
        any.downcast_mut::<T>()
    }

    /// The shard count this shard has ordered (its reshard epoch).
    pub fn epoch_shards(&self) -> u32 {
        self.epoch_shards
    }

    /// Keys fenced away by resharding (still owned nowhere on this shard).
    pub fn fenced_keys(&self) -> impl Iterator<Item = &str> {
        self.fenced.iter().map(String::as_str)
    }

    /// Number of keys currently locked by in-flight transactions.
    pub fn locked_keys(&self) -> usize {
        self.locks.len()
    }

    /// The outcome the coordinator durably recorded for `txn`, if any.
    pub fn outcome(&self, txn: &str) -> Option<bool> {
        self.decided.get(txn).copied()
    }

    fn participant_uri(&self, shard: u32) -> String {
        format!("urn:svc:{}#{}", self.name, shard)
    }

    /// Samples the lock-table size gauge after a lock-table transition
    /// (acquire, release, decision). Sampling at mutation points rather
    /// than on a timer keeps the series deterministic and proportional to
    /// transaction activity. A no-op downstream when tracing is off.
    fn gauge_locks(&mut self, ctx: &mut ServiceCtx<'_>) {
        let name = format!("ts.lock_table.{}.{}", self.name, self.shard);
        ctx.gauge(name, self.locks.len() as f64);
    }

    fn send_record(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        shard: u32,
        op: &str,
        record: &[u8],
        timeout_ms: u64,
    ) -> u64 {
        let mut mc = MessageContext::request(self.participant_uri(shard), op);
        mc.body_mut().name = op.to_owned();
        mc.body_mut().text = to_hex(record);
        mc.options_mut().set_timeout_millis(timeout_ms);
        ctx.send_config(mc).raw()
    }

    fn reply_text(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        request: &MessageContext,
        name: &str,
        text: impl Into<String>,
    ) {
        let reply = request.reply_with("", XmlNode::new(name).with_text(text));
        ctx.reply(reply, request);
    }

    fn reply_fault(
        &mut self,
        ctx: &mut ServiceCtx<'_>,
        request: &MessageContext,
        code: &str,
        reason: String,
    ) {
        let mc = MessageContext::from_envelope(Envelope::fault(&Fault {
            code: code.to_owned(),
            reason,
        }));
        ctx.reply(mc, request);
    }

    /// Groups `keys` by owning shard at this shard's ordered epoch.
    fn partition(&self, keys: &[String]) -> BTreeMap<u32, Vec<String>> {
        let mut by_shard: BTreeMap<u32, Vec<String>> = BTreeMap::new();
        for k in keys {
            let owner = self.router.shard(k, self.epoch_shards);
            let bucket = by_shard.entry(owner).or_default();
            if !bucket.contains(k) {
                bucket.push(k.clone());
            }
        }
        by_shard
    }

    // ------------------------------------------------------------ ordinary

    fn handle_ordinary(&mut self, request: MessageContext, ctx: &mut ServiceCtx<'_>) {
        if self.gate_closed {
            self.held.push(request);
            return;
        }
        let keys: Vec<String> = split_keys(routing_key(&request))
            .map(str::to_owned)
            .collect();
        if keys.iter().any(|k| self.fenced.contains(k)) {
            ctx.incr_metric("clbft.reshard.redirects");
            self.reply_fault(
                ctx,
                &request,
                WRONG_SHARD_FAULT,
                format!(
                    "shard {} no longer owns the key at epoch {}; re-route",
                    self.shard, self.epoch_shards
                ),
            );
            return;
        }
        let by_shard = self.partition(&keys);
        if by_shard.keys().any(|s| *s != self.shard) && by_shard.len() >= 2 {
            self.coordinate(request, by_shard, ctx);
            return;
        }
        if keys.iter().any(|k| self.locks.is_locked(k)) {
            self.deferred.push(request);
            return;
        }
        self.inner.on_event(WsEvent::Request { request }, ctx);
    }

    /// Re-runs deferred (lock-conflicted) requests after a release. Guarded
    /// against re-entry: a request re-deferred during the drain waits for
    /// the next release.
    fn drain_deferred(&mut self, ctx: &mut ServiceCtx<'_>) {
        if self.draining || self.deferred.is_empty() {
            return;
        }
        self.draining = true;
        let pending = std::mem::take(&mut self.deferred);
        for mc in pending {
            self.handle_ordinary(mc, ctx);
        }
        self.draining = false;
    }

    // --------------------------------------------------------- coordinator

    fn coordinate(
        &mut self,
        request: MessageContext,
        mut by_shard: BTreeMap<u32, Vec<String>>,
        ctx: &mut ServiceCtx<'_>,
    ) {
        let txn = request.addressing().message_id.clone().unwrap_or_default();
        if self.decided.contains_key(&txn) || self.coord.contains_key(&txn) {
            return; // replayed agreed request; the outcome is already owned
        }
        let op = request.body().name.clone();
        let local_keys = by_shard.remove(&self.shard).unwrap_or_default();
        if !self.locks.try_lock(&txn, &local_keys) || !self.inner.txn_validate(&op, &local_keys) {
            self.locks.release(&txn);
            ctx.obs_audit(AuditEvent::TxnDecision {
                txn: txn_span_id(&txn),
                commit: false,
                coordinator: true,
            });
            self.decided.insert(txn, false);
            ctx.incr_metric("clbft.txn.vote_no");
            ctx.incr_metric("clbft.txn.aborted");
            self.reply_fault(
                ctx,
                &request,
                TXN_ABORTED_FAULT,
                "coordinator shard rejected the transaction locally".to_owned(),
            );
            return;
        }
        let mut c = Coord {
            op: op.clone(),
            orig: request,
            local_keys,
            remote: by_shard,
            votes: BTreeMap::new(),
            decided: None,
            results: BTreeMap::new(),
            acked: BTreeSet::new(),
        };
        let remote = std::mem::take(&mut c.remote);
        for (shard, keys) in &remote {
            let rec = TxnRecord::Prepare {
                txn: txn.clone(),
                coordinator: self.shard,
                op: op.clone(),
                keys: keys.clone(),
            }
            .encode();
            let token = self.send_record(ctx, *shard, OP_TXN_PREPARE, &rec, PREPARE_TIMEOUT_MS);
            self.prepare_calls.insert(token, (txn.clone(), *shard));
        }
        ctx.obs_proto(ProtoFamily::Txn, txn_span_id(&txn), 0, remote.len() as u64);
        self.gauge_locks(ctx);
        c.remote = remote;
        self.coord.insert(txn, c);
    }

    fn maybe_decide(&mut self, txn: &str, ctx: &mut ServiceCtx<'_>) {
        let Some(c) = self.coord.get(txn) else { return };
        if c.decided.is_some() {
            return;
        }
        let participants: BTreeSet<u32> = c.remote.keys().copied().collect();
        let Some(commit) = decide(&c.votes, &participants) else {
            return;
        };
        let (op, local_keys) = (c.op.clone(), c.local_keys.clone());
        let detail = if commit {
            self.inner.txn_execute(&op, &local_keys)
        } else {
            String::new()
        };
        self.locks.release(txn);
        self.decided.insert(txn.to_owned(), commit);
        ctx.incr_metric(if commit {
            "clbft.txn.committed"
        } else {
            "clbft.txn.aborted"
        });
        ctx.obs_proto(ProtoFamily::Txn, txn_span_id(txn), 2, u64::from(commit));
        ctx.obs_audit(AuditEvent::TxnDecision {
            txn: txn_span_id(txn),
            commit,
            coordinator: true,
        });
        self.gauge_locks(ctx);
        let c = self.coord.get_mut(txn).expect("coord entry checked above");
        c.decided = Some(commit);
        if commit {
            c.results.insert(self.shard, detail);
        }
        let (dec_op, rec) = if commit {
            (
                OP_TXN_COMMIT,
                TxnRecord::Commit {
                    txn: txn.to_owned(),
                }
                .encode(),
            )
        } else {
            (
                OP_TXN_ABORT,
                TxnRecord::Abort {
                    txn: txn.to_owned(),
                }
                .encode(),
            )
        };
        for shard in participants {
            let token = self.send_record(ctx, shard, dec_op, &rec, DECISION_TIMEOUT_MS);
            self.decision_calls.insert(token, (txn.to_owned(), shard));
        }
        self.drain_deferred(ctx);
    }

    fn maybe_finish(&mut self, txn: &str, ctx: &mut ServiceCtx<'_>) {
        let Some(c) = self.coord.get(txn) else { return };
        let Some(commit) = c.decided else { return };
        if !c.remote.keys().all(|s| c.acked.contains(s)) {
            return;
        }
        let c = self.coord.remove(txn).expect("coord entry checked above");
        ctx.obs_proto(ProtoFamily::Txn, txn_span_id(txn), 3, c.acked.len() as u64);
        if commit {
            let joined: Vec<String> = c.results.iter().map(|(s, d)| format!("{s}={d}")).collect();
            let text = format!("txn=commit;{}", joined.join(";"));
            self.reply_text(ctx, &c.orig, &format!("{}Result", c.op), text);
        } else {
            self.reply_fault(
                ctx,
                &c.orig,
                TXN_ABORTED_FAULT,
                "cross-shard transaction aborted".to_owned(),
            );
        }
    }

    /// Routes a reply to the coordinator machine; `false` if the token is
    /// not a transaction call (the reply belongs to the inner service).
    fn on_reply(&mut self, raw: u64, reply: &MessageContext, ctx: &mut ServiceCtx<'_>) -> bool {
        if let Some((txn, shard)) = self.prepare_calls.remove(&raw) {
            let yes = reply.envelope().as_fault().is_none() && reply.body().text.starts_with("yes");
            if let Some(c) = self.coord.get_mut(&txn) {
                if c.decided.is_none() {
                    c.votes.insert(shard, yes);
                    let votes = c.votes.len() as u64;
                    ctx.obs_proto(ProtoFamily::Txn, txn_span_id(&txn), 1, votes);
                    self.maybe_decide(&txn, ctx);
                }
            }
            return true;
        }
        if let Some((txn, shard)) = self.decision_calls.remove(&raw) {
            if reply.envelope().as_fault().is_some() {
                // The participant may not have ordered the decision; re-send
                // until acknowledged so no shard is left holding locks.
                ctx.incr_metric("clbft.txn.decision_retries");
                let commit = self.decided.get(&txn).copied().unwrap_or(false);
                let (dec_op, rec) = if commit {
                    (
                        OP_TXN_COMMIT,
                        TxnRecord::Commit { txn: txn.clone() }.encode(),
                    )
                } else {
                    (OP_TXN_ABORT, TxnRecord::Abort { txn: txn.clone() }.encode())
                };
                let token = self.send_record(ctx, shard, dec_op, &rec, DECISION_TIMEOUT_MS);
                self.decision_calls.insert(token, (txn, shard));
                return true;
            }
            if let Some(c) = self.coord.get_mut(&txn) {
                c.acked.insert(shard);
                if let Some(detail) = reply.body().text.strip_prefix("ack;") {
                    c.results.insert(shard, detail.to_owned());
                }
                self.maybe_finish(&txn, ctx);
            }
            return true;
        }
        false
    }

    // --------------------------------------------------------- participant

    fn participant_prepare(&mut self, request: MessageContext, ctx: &mut ServiceCtx<'_>) {
        let rec = from_hex(routing_key(&request)).and_then(|b| TxnRecord::decode(&b).ok());
        let Some(TxnRecord::Prepare { txn, op, keys, .. }) = rec else {
            self.reply_fault(
                ctx,
                &request,
                "soap:Sender",
                "malformed txnPrepare record".to_owned(),
            );
            return;
        };
        let yes = if self.finished.contains_key(&txn) {
            // The decision overtook this prepare (it can only be an abort):
            // vote NO without touching locks.
            false
        } else if self.prepared.contains_key(&txn) {
            true
        } else if !self.locks.try_lock(&txn, &keys) {
            ctx.incr_metric("clbft.txn.vote_no");
            false
        } else if !self.inner.txn_validate(&op, &keys) {
            self.locks.release(&txn);
            ctx.incr_metric("clbft.txn.vote_no");
            false
        } else {
            self.prepared.insert(txn.clone(), Prep { op, keys });
            ctx.incr_metric("clbft.txn.prepared");
            true
        };
        self.reply_text(
            ctx,
            &request,
            "txnPrepareResult",
            if yes { "yes" } else { "no" },
        );
        self.gauge_locks(ctx);
    }

    fn participant_decision(
        &mut self,
        request: MessageContext,
        commit: bool,
        ctx: &mut ServiceCtx<'_>,
    ) {
        let rec = from_hex(routing_key(&request)).and_then(|b| TxnRecord::decode(&b).ok());
        let txn = match rec {
            Some(TxnRecord::Commit { txn }) if commit => txn,
            Some(TxnRecord::Abort { txn }) if !commit => txn,
            _ => {
                self.reply_fault(
                    ctx,
                    &request,
                    "soap:Sender",
                    "malformed decision record".to_owned(),
                );
                return;
            }
        };
        let name = if commit {
            "txnCommitResult"
        } else {
            "txnAbortResult"
        };
        if let Some(prev) = self.finished.get(&txn) {
            let prev = prev.clone();
            self.reply_text(ctx, &request, name, prev);
            return;
        }
        let text = match self.prepared.remove(&txn) {
            Some(p) => {
                self.locks.release(&txn);
                if commit {
                    format!("ack;{}", self.inner.txn_execute(&p.op, &p.keys))
                } else {
                    "ack".to_owned()
                }
            }
            // A decision for a never-prepared transaction: record it so a
            // late prepare votes NO instead of locking forever.
            None => "ack".to_owned(),
        };
        ctx.obs_audit(AuditEvent::TxnDecision {
            txn: txn_span_id(&txn),
            commit,
            coordinator: false,
        });
        self.finished.insert(txn, text.clone());
        self.reply_text(ctx, &request, name, text);
        self.gauge_locks(ctx);
        self.drain_deferred(ctx);
    }

    // ---------------------------------------------------------- resharding

    fn reshard_export(&mut self, request: MessageContext, ctx: &mut ServiceCtx<'_>) {
        let rec = from_hex(routing_key(&request)).and_then(|b| ReshardExport::decode(&b).ok());
        let Some(ReshardExport { new_count }) = rec else {
            self.reply_fault(
                ctx,
                &request,
                "soap:Sender",
                "malformed reshardExport record".to_owned(),
            );
            return;
        };
        if let Some((n, cached)) = &self.last_export {
            if *n == new_count {
                let cached = cached.clone();
                self.reply_text(ctx, &request, "reshardExportResult", cached);
                return;
            }
        }
        let shard = self.shard;
        let router = Arc::clone(&self.router);
        let mut entries = self
            .inner
            .export_keys(&|k| router.shard(k, new_count) != shard);
        entries.sort();
        for (k, _) in &entries {
            self.fenced.insert(k.clone());
            ctx.incr_metric("clbft.reshard.exported_keys");
        }
        self.epoch_shards = new_count;
        // One reshard span per epoch: "fenced" counts the keys this shard
        // gave up, "exported" stamps the entries leaving in the reply.
        ctx.obs_proto(
            ProtoFamily::Reshard,
            u64::from(new_count),
            1,
            entries.len() as u64,
        );
        ctx.obs_proto(
            ProtoFamily::Reshard,
            u64::from(new_count),
            2,
            entries.len() as u64,
        );
        let text = to_hex(&encode_entries(&entries));
        self.last_export = Some((new_count, text.clone()));
        self.reply_text(ctx, &request, "reshardExportResult", text);
        // Deferred requests naming now-fenced keys must redirect, not wait.
        self.drain_deferred(ctx);
    }

    fn reshard_import(&mut self, request: MessageContext, ctx: &mut ServiceCtx<'_>) {
        let rec = from_hex(routing_key(&request)).and_then(|b| ReshardImport::decode(&b).ok());
        let Some(imp) = rec else {
            self.reply_fault(
                ctx,
                &request,
                "soap:Sender",
                "malformed reshardImport record".to_owned(),
            );
            return;
        };
        if self.imported_sources.contains(&imp.from_shard) {
            self.reply_text(ctx, &request, "reshardImportResult", "ack;duplicate");
            return;
        }
        self.epoch_shards = imp.new_count;
        let mut accepted = Vec::new();
        for (k, v) in imp.entries {
            // Range-bounded install: the key must route *here* at the new
            // count and to the claimed source at the old count; anything
            // else is a mis-addressed (or forged) entry and is dropped.
            let in_range = self.router.shard(&k, imp.new_count) == self.shard
                && self.router.shard(&k, imp.old_count) == imp.from_shard;
            if in_range {
                ctx.incr_metric("clbft.reshard.imported_keys");
                accepted.push((k, v));
            } else {
                ctx.incr_metric("clbft.reshard.rejected_keys");
            }
        }
        self.inner.import_keys(&accepted);
        self.imported_sources.insert(imp.from_shard);
        ctx.obs_proto(
            ProtoFamily::Reshard,
            u64::from(imp.new_count),
            3,
            accepted.len() as u64,
        );
        let text = format!("ack;accepted={}", accepted.len());
        self.reply_text(ctx, &request, "reshardImportResult", text);
        if self.gate_closed && self.imported_sources.len() as u32 >= imp.sources {
            self.gate_closed = false;
            let held = std::mem::take(&mut self.held);
            for mc in held {
                self.handle_ordinary(mc, ctx);
            }
        }
    }
}

impl Service for TxnShim {
    fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
        match ev {
            WsEvent::Request { request } => match request.body().name.as_str() {
                OP_TXN_PREPARE => self.participant_prepare(request, ctx),
                OP_TXN_COMMIT => self.participant_decision(request, true, ctx),
                OP_TXN_ABORT => self.participant_decision(request, false, ctx),
                OP_RESHARD_EXPORT => self.reshard_export(request, ctx),
                OP_RESHARD_IMPORT => self.reshard_import(request, ctx),
                _ => self.handle_ordinary(request, ctx),
            },
            WsEvent::Reply { token, reply } => {
                if !self.on_reply(token.raw(), &reply, ctx) {
                    self.inner.on_event(WsEvent::Reply { token, reply }, ctx);
                }
            }
            other => {
                self.inner.on_event(other, ctx);
            }
        }
        Poll::Next
    }

    fn snapshot(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u8(1); // shim snapshot version
        e.put_bytes(&self.inner.snapshot());
        e.put_u32(self.epoch_shards);
        e.put_u32(self.locks.locks.len() as u32);
        for (k, t) in &self.locks.locks {
            put_str(&mut e, k);
            put_str(&mut e, t);
        }
        e.put_u32(self.prepared.len() as u32);
        for (txn, p) in &self.prepared {
            put_str(&mut e, txn);
            put_str(&mut e, &p.op);
            e.put_u32(p.keys.len() as u32);
            for k in &p.keys {
                put_str(&mut e, k);
            }
        }
        e.put_u32(self.finished.len() as u32);
        for (txn, text) in &self.finished {
            put_str(&mut e, txn);
            put_str(&mut e, text);
        }
        e.put_u32(self.decided.len() as u32);
        for (txn, commit) in &self.decided {
            put_str(&mut e, txn);
            e.put_u8(u8::from(*commit));
        }
        e.put_u32(self.coord.len() as u32);
        for (txn, c) in &self.coord {
            put_str(&mut e, txn);
            put_str(&mut e, &c.op);
            e.put_bytes(&c.orig.to_bytes().expect("agreed request re-marshals"));
            e.put_u32(c.local_keys.len() as u32);
            for k in &c.local_keys {
                put_str(&mut e, k);
            }
            e.put_u32(c.remote.len() as u32);
            for (s, keys) in &c.remote {
                e.put_u32(*s);
                e.put_u32(keys.len() as u32);
                for k in keys {
                    put_str(&mut e, k);
                }
            }
            e.put_u32(c.votes.len() as u32);
            for (s, v) in &c.votes {
                e.put_u32(*s);
                e.put_u8(u8::from(*v));
            }
            e.put_u8(match c.decided {
                None => 0,
                Some(false) => 1,
                Some(true) => 2,
            });
            e.put_u32(c.results.len() as u32);
            for (s, d) in &c.results {
                e.put_u32(*s);
                put_str(&mut e, d);
            }
            e.put_u32(c.acked.len() as u32);
            for s in &c.acked {
                e.put_u32(*s);
            }
        }
        for calls in [&self.prepare_calls, &self.decision_calls] {
            e.put_u32(calls.len() as u32);
            for (raw, (txn, shard)) in calls {
                e.put_u64(*raw);
                put_str(&mut e, txn);
                e.put_u32(*shard);
            }
        }
        for queue in [&self.deferred, &self.held] {
            e.put_u32(queue.len() as u32);
            for mc in queue {
                e.put_bytes(&mc.to_bytes().expect("agreed request re-marshals"));
            }
        }
        e.put_u32(self.fenced.len() as u32);
        for k in &self.fenced {
            put_str(&mut e, k);
        }
        e.put_u8(u8::from(self.gate_closed));
        e.put_u32(self.imported_sources.len() as u32);
        for s in &self.imported_sources {
            e.put_u32(*s);
        }
        match &self.last_export {
            None => e.put_u8(0),
            Some((n, text)) => {
                e.put_u8(1);
                e.put_u32(*n);
                put_str(&mut e, text);
            }
        }
        e.finish().to_vec()
    }

    fn restore(&mut self, snapshot: &[u8]) {
        if let Err(err) = self.decode_shim(snapshot) {
            // The snapshot was vouched for by f+1 replicas before install;
            // failing loudly beats silent divergence.
            panic!("verified txn shim snapshot failed to decode: {err}");
        }
    }
}

impl TxnShim {
    fn decode_shim(&mut self, snapshot: &[u8]) -> Result<(), WireError> {
        const CAP: usize = 1 << 20;
        let mut d = Decoder::new(snapshot);
        if d.u8()? != 1 {
            return Err(txn_err());
        }
        let inner_snap = d.bytes()?;
        let epoch_shards = d.u32()?;
        let locks: BTreeMap<String, String> =
            counted(&mut d, CAP, txn_err, |d| Ok((get_str(d)?, get_str(d)?)))?
                .into_iter()
                .collect();
        let prepared: BTreeMap<String, Prep> = counted(&mut d, CAP, txn_err, |d| {
            let txn = get_str(d)?;
            let op = get_str(d)?;
            let keys = counted(d, MAX_TXN_KEYS, txn_err, get_str)?;
            Ok((txn, Prep { op, keys }))
        })?
        .into_iter()
        .collect();
        let finished: BTreeMap<String, String> =
            counted(&mut d, CAP, txn_err, |d| Ok((get_str(d)?, get_str(d)?)))?
                .into_iter()
                .collect();
        let decided: BTreeMap<String, bool> =
            counted(&mut d, CAP, txn_err, |d| Ok((get_str(d)?, d.u8()? != 0)))?
                .into_iter()
                .collect();
        let coord: BTreeMap<String, Coord> = counted(&mut d, CAP, txn_err, |d| {
            let txn = get_str(d)?;
            let op = get_str(d)?;
            let orig = MessageContext::from_bytes(&d.bytes()?).map_err(|_| txn_err())?;
            let local_keys = counted(d, MAX_TXN_KEYS, txn_err, get_str)?;
            let remote: BTreeMap<u32, Vec<String>> = counted(d, CAP, txn_err, |d| {
                let s = d.u32()?;
                let keys = counted(d, MAX_TXN_KEYS, txn_err, get_str)?;
                Ok((s, keys))
            })?
            .into_iter()
            .collect();
            let votes: BTreeMap<u32, bool> =
                counted(d, CAP, txn_err, |d| Ok((d.u32()?, d.u8()? != 0)))?
                    .into_iter()
                    .collect();
            let decided = match d.u8()? {
                0 => None,
                1 => Some(false),
                2 => Some(true),
                _ => return Err(txn_err()),
            };
            let results: BTreeMap<u32, String> =
                counted(d, CAP, txn_err, |d| Ok((d.u32()?, get_str(d)?)))?
                    .into_iter()
                    .collect();
            let acked: BTreeSet<u32> = counted(d, CAP, txn_err, |d| d.u32())?.into_iter().collect();
            Ok((
                txn,
                Coord {
                    op,
                    orig,
                    local_keys,
                    remote,
                    votes,
                    decided,
                    results,
                    acked,
                },
            ))
        })?
        .into_iter()
        .collect();
        let mut call_maps = Vec::with_capacity(2);
        for _ in 0..2 {
            let m: BTreeMap<u64, (String, u32)> = counted(&mut d, CAP, txn_err, |d| {
                let raw = d.u64()?;
                let txn = get_str(d)?;
                let shard = d.u32()?;
                Ok((raw, (txn, shard)))
            })?
            .into_iter()
            .collect();
            call_maps.push(m);
        }
        let mut queues = Vec::with_capacity(2);
        for _ in 0..2 {
            queues.push(counted(&mut d, CAP, txn_err, |d| {
                MessageContext::from_bytes(&d.bytes()?).map_err(|_| txn_err())
            })?);
        }
        let fenced: BTreeSet<String> = counted(&mut d, CAP, txn_err, get_str)?
            .into_iter()
            .collect();
        let gate_closed = d.u8()? != 0;
        let imported_sources: BTreeSet<u32> = counted(&mut d, CAP, txn_err, |d| d.u32())?
            .into_iter()
            .collect();
        let last_export = match d.u8()? {
            0 => None,
            1 => Some((d.u32()?, get_str(&mut d)?)),
            _ => return Err(txn_err()),
        };
        d.finish()?;

        // Everything parsed; commit.
        self.inner.restore(&inner_snap);
        self.epoch_shards = epoch_shards;
        self.locks = LockTable { locks };
        self.prepared = prepared;
        self.finished = finished;
        self.decided = decided;
        self.coord = coord;
        self.decision_calls = call_maps.pop().expect("two call maps");
        self.prepare_calls = call_maps.pop().expect("two call maps");
        self.held = queues.pop().expect("two queues");
        self.deferred = queues.pop().expect("two queues");
        self.fenced = fenced;
        self.gate_closed = gate_closed;
        self.imported_sources = imported_sources;
        self.last_export = last_export;
        self.draining = false;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hex_roundtrips_and_rejects_junk() {
        for bytes in [vec![], vec![0u8], vec![0xAB, 0x00, 0xFF, 0x7E]] {
            assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        }
        assert!(from_hex("abc").is_none(), "odd length");
        assert!(from_hex("zz").is_none(), "non-hex digit");
    }

    #[test]
    fn txn_record_roundtrips() {
        let records = [
            TxnRecord::Prepare {
                txn: "urn:pws:anon:7:3".into(),
                coordinator: 2,
                op: "increment".into(),
                keys: vec!["a".into(), "b".into()],
            },
            TxnRecord::Commit { txn: "t".into() },
            TxnRecord::Abort { txn: "t".into() },
        ];
        for rec in records {
            let bytes = rec.encode();
            assert_eq!(TxnRecord::decode(&bytes).unwrap(), rec);
            for cut in 0..bytes.len() {
                assert!(TxnRecord::decode(&bytes[..cut]).is_err(), "cut={cut}");
            }
            let mut long = bytes.clone();
            long.push(0);
            assert!(TxnRecord::decode(&long).is_err(), "trailing junk");
        }
        assert!(TxnRecord::decode(&[9]).is_err(), "junk tag");
    }

    #[test]
    fn txn_record_key_count_is_capped() {
        // Hand-build a prepare whose key count claims more than the cap;
        // the decoder must reject before allocating.
        let mut e = Encoder::new();
        e.put_u8(TXN_PREPARE);
        put_str(&mut e, "t");
        e.put_u32(0);
        put_str(&mut e, "op");
        e.put_u32(MAX_TXN_KEYS as u32 + 1);
        assert!(TxnRecord::decode(&e.finish()).is_err());
    }

    #[test]
    fn reshard_records_roundtrip() {
        let exp = ReshardExport { new_count: 3 };
        assert_eq!(ReshardExport::decode(&exp.encode()).unwrap(), exp);
        let imp = ReshardImport {
            from_shard: 1,
            old_count: 2,
            new_count: 3,
            sources: 2,
            entries: vec![("k1".into(), vec![1, 2]), ("k2".into(), vec![])],
        };
        let bytes = imp.encode();
        assert_eq!(ReshardImport::decode(&bytes).unwrap(), imp);
        for cut in 0..bytes.len() {
            assert!(ReshardImport::decode(&bytes[..cut]).is_err(), "cut={cut}");
        }
        let entries = vec![("x".to_owned(), vec![9u8; 4])];
        assert_eq!(decode_entries(&encode_entries(&entries)).unwrap(), entries);
    }

    #[test]
    fn reshard_entry_count_is_capped() {
        // A correctly-sealed frame whose body claims an absurd entry count
        // must still be rejected by the cap, after the root verifies.
        let mut body = Encoder::new();
        body.put_u32(MAX_RESHARD_ENTRIES as u32 + 1);
        let body = body.finish();
        let manifest = pws_perpetual::PageManifest::compute(&body, 1024);
        let mut e = Encoder::new();
        e.put_digest(&manifest.root());
        e.put_bytes(&body);
        assert!(decode_entries(&e.finish()).is_err());
    }

    #[test]
    fn corrupted_reshard_export_fails_the_root_check() {
        let entries = vec![("k".to_owned(), vec![7u8; 16])];
        let sealed = encode_entries(&entries);
        // Flip one payload byte (past the 32-byte root and length prefix):
        // the page-tree root no longer matches and nothing decodes.
        let mut bad = sealed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(decode_entries(&bad).is_err());
        // Truncations die too, at every prefix.
        for cut in 0..sealed.len() {
            assert!(decode_entries(&sealed[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn lock_table_is_atomic_and_reentrant() {
        let mut t = LockTable::new();
        let ab: Vec<String> = vec!["a".into(), "b".into()];
        let bc: Vec<String> = vec!["b".into(), "c".into()];
        assert!(t.try_lock("t1", &ab));
        assert!(t.try_lock("t1", &ab), "same holder may re-lock");
        assert!(!t.try_lock("t2", &bc), "conflict on b");
        assert!(!t.is_locked("c"), "failed lock must not leak partial locks");
        assert_eq!(t.holder("a"), Some("t1"));
        assert_eq!(t.release("t1"), 2);
        assert!(t.is_empty());
        assert!(t.try_lock("t2", &bc));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn decision_logic() {
        let parts: BTreeSet<u32> = [1, 2].into();
        let mut votes = BTreeMap::new();
        assert_eq!(decide(&votes, &parts), None);
        votes.insert(1, true);
        assert_eq!(decide(&votes, &parts), None, "still waiting on shard 2");
        votes.insert(2, false);
        assert_eq!(decide(&votes, &parts), Some(false), "any NO aborts");
        let all_yes: BTreeMap<u32, bool> = [(1, true), (2, true)].into();
        assert_eq!(decide(&all_yes, &parts), Some(true));
        assert_eq!(
            decide(&BTreeMap::new(), &BTreeSet::new()),
            Some(true),
            "no participants commits vacuously"
        );
    }

    proptest! {
        /// The decision is a pure function of the vote *set*: every arrival
        /// order reaches the same final outcome, and any prefix that
        /// decides early decides the same way.
        #[test]
        fn decide_is_order_independent(
            raw_votes in proptest::collection::vec(any::<bool>(), 1..6),
            order in proptest::collection::vec(0usize..6, 0..6),
        ) {
            let votes: BTreeMap<u32, bool> = raw_votes
                .iter()
                .enumerate()
                .map(|(s, v)| (s as u32, *v))
                .collect();
            let participants: BTreeSet<u32> = votes.keys().copied().collect();
            let expected = decide(&votes, &participants);
            prop_assert!(expected.is_some(), "full vote set always decides");

            // Replay the votes in a permuted arrival order; the first
            // decided prefix must agree with the full-set outcome.
            let mut keys: Vec<u32> = votes.keys().copied().collect();
            for (i, swap) in order.iter().enumerate() {
                if i < keys.len() {
                    let j = swap % keys.len();
                    keys.swap(i, j);
                }
            }
            let mut partial = BTreeMap::new();
            let mut early: Option<bool> = None;
            for k in keys {
                partial.insert(k, votes[&k]);
                if let Some(outcome) = decide(&partial, &participants) {
                    early = Some(outcome);
                    if !outcome {
                        break; // an early abort never un-aborts
                    }
                }
            }
            prop_assert_eq!(early, expected);
        }

        /// Record codecs never panic on arbitrary bytes — they reject.
        #[test]
        fn decoders_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = TxnRecord::decode(&bytes);
            let _ = ReshardExport::decode(&bytes);
            let _ = ReshardImport::decode(&bytes);
            let _ = decode_entries(&bytes);
        }
    }
}
