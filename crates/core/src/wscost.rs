//! XML marshaling costs.
//!
//! The paper's §6.4 observes that crypto at the ChannelAdapter dwarfs XML
//! marshal/demarshal at the Axis2 layer; these costs exist so that claim is
//! *represented* in the model rather than assumed.

use pws_simnet::SimDuration;

/// CPU cost of serializing/parsing SOAP envelopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WsCostModel {
    /// Fixed cost to marshal an envelope.
    pub marshal: SimDuration,
    /// Additional marshal cost per KiB of envelope.
    pub marshal_per_kb: SimDuration,
    /// Fixed cost to demarshal an envelope.
    pub demarshal: SimDuration,
    /// Additional demarshal cost per KiB.
    pub demarshal_per_kb: SimDuration,
}

impl WsCostModel {
    /// Calibrated default: an order of magnitude below the crypto costs in
    /// [`pws_perpetual::CostModel::DEFAULT`], per the paper's observation.
    pub const DEFAULT: WsCostModel = WsCostModel {
        marshal: SimDuration::from_micros(3),
        marshal_per_kb: SimDuration::from_micros(2),
        demarshal: SimDuration::from_micros(4),
        demarshal_per_kb: SimDuration::from_micros(3),
    };

    /// Zero-cost model for protocol tests.
    pub const FREE: WsCostModel = WsCostModel {
        marshal: SimDuration::ZERO,
        marshal_per_kb: SimDuration::ZERO,
        demarshal: SimDuration::ZERO,
        demarshal_per_kb: SimDuration::ZERO,
    };

    /// Cost of marshaling `len` bytes.
    pub fn marshal_cost(&self, len: usize) -> SimDuration {
        self.marshal + self.marshal_per_kb.saturating_mul(len as u64 / 1024)
    }

    /// Cost of demarshaling `len` bytes.
    pub fn demarshal_cost(&self, len: usize) -> SimDuration {
        self.demarshal + self.demarshal_per_kb.saturating_mul(len as u64 / 1024)
    }
}

impl Default for WsCostModel {
    fn default() -> Self {
        WsCostModel::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pws_perpetual::CostModel;

    #[test]
    fn marshal_is_cheaper_than_crypto() {
        // The design claim from §6.4 holds in the default models.
        let ws = WsCostModel::DEFAULT;
        let crypto = CostModel::DEFAULT;
        assert!(ws.marshal_cost(512) < crypto.send_cost(512, 0));
        assert!(ws.demarshal_cost(512) < crypto.recv_cost(512, 0));
    }

    #[test]
    fn costs_scale_with_size() {
        let ws = WsCostModel::DEFAULT;
        assert!(ws.marshal_cost(64 * 1024) > ws.marshal_cost(100));
        assert_eq!(ws.marshal_cost(100), ws.marshal);
        assert_eq!(WsCostModel::FREE.marshal_cost(1 << 20), SimDuration::ZERO);
    }
}
