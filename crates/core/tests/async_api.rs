//! Properties of the async multi-outcall wait set: N concurrent calls with
//! out-of-order replies and one deterministic abort always resume their
//! continuations in agreed-event order, regardless of the interleaving and
//! of whether the service selects on the full token set or on any reply —
//! and a narrowed wait set holds events back without reordering them.

use perpetual_ws::runtime::UriMap;
use perpetual_ws::{
    CallToken, Poll, Service, ServiceCtx, ServiceExecutor, WaitSet, WsCostModel, WsEvent,
};
use proptest::prelude::*;
use pws_perpetual::{AppEvent, AppOutput, CallId, Executor, GroupId};
use pws_soap::MessageContext;
use std::collections::BTreeSet;
use std::sync::Arc;

/// How the service declares its continuation between events.
#[derive(Clone, Copy, Debug, PartialEq)]
enum WaitMode {
    /// `select` on exactly the outstanding token set, shrinking as calls
    /// resolve.
    ExplicitSet,
    /// Wake on any reply.
    AnyReply,
}

/// Issues `n` calls on Init and records the order continuations resume.
struct FanOut {
    n: u64,
    mode: WaitMode,
    outstanding: BTreeSet<CallToken>,
    resumed: Vec<(CallToken, bool)>,
}

impl FanOut {
    fn new(n: u64, mode: WaitMode) -> Self {
        FanOut {
            n,
            mode,
            outstanding: BTreeSet::new(),
            resumed: Vec::new(),
        }
    }

    fn continuation(&self) -> Poll {
        if self.outstanding.is_empty() {
            Poll::Done
        } else {
            match self.mode {
                WaitMode::ExplicitSet => {
                    Poll::Wait(WaitSet::new().replies(self.outstanding.iter().copied()))
                }
                WaitMode::AnyReply => Poll::any_reply(),
            }
        }
    }
}

impl Service for FanOut {
    fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
        match ev {
            WsEvent::Init { .. } => {
                for i in 0..self.n {
                    let mut mc = MessageContext::request("urn:svc:target", "op");
                    mc.body_mut().text = i.to_string();
                    let token = ctx.send(mc);
                    self.outstanding.insert(token);
                }
            }
            WsEvent::Reply { token, reply } => {
                assert!(
                    self.outstanding.remove(&token),
                    "{token:?} resumed exactly once"
                );
                self.resumed
                    .push((token, reply.envelope().as_fault().is_some()));
            }
            _ => {}
        }
        self.continuation()
    }
}

fn host(service: impl Service) -> ServiceExecutor {
    let mut uris = UriMap::default();
    uris.insert("target", GroupId(1));
    ServiceExecutor::new(
        Box::new(service),
        "caller",
        Arc::new(uris),
        WsCostModel::FREE,
    )
}

/// Drives `exec` like the replica driver does: counters persist across
/// deliveries so call ids are assigned deterministically.
struct Driver {
    exec: ServiceExecutor,
    next_call: u64,
    next_token: u64,
}

impl Driver {
    fn new(exec: ServiceExecutor) -> Self {
        Driver {
            exec,
            next_call: 0,
            next_token: 0,
        }
    }

    fn deliver(&mut self, ev: AppEvent) -> AppOutput {
        let mut out = AppOutput::new(self.next_call, self.next_token);
        self.exec.on_event(ev, &mut out);
        let (nc, nt) = out.counters();
        self.next_call = nc;
        self.next_token = nt;
        out
    }
}

fn reply_payload(i: u64) -> bytes::Bytes {
    let mut mc = MessageContext::request("urn:svc:caller", "opResponse");
    mc.addressing_mut().relates_to = Some(format!("r{i}"));
    mc.body_mut().text = format!("answer-{i}");
    mc.to_bytes().unwrap()
}

/// Deterministic Fisher–Yates permutation of `0..n` from a seed.
fn permutation(n: u64, seed: u64) -> Vec<u64> {
    let mut v: Vec<u64> = (0..n).collect();
    let mut s = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    for i in (1..v.len()).rev() {
        s = s
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (s >> 33) as usize % (i + 1);
        v.swap(i, j);
    }
    v
}

/// Runs the fan-out scenario: `n` calls, replies delivered in a permuted
/// order, call `abort_idx` aborted instead of answered. Returns the resume
/// log.
fn run_fan_out(n: u64, perm_seed: u64, abort_idx: u64, mode: WaitMode) -> Vec<(CallToken, bool)> {
    let mut d = Driver::new(host(FanOut::new(n, mode)));
    let out = d.deliver(AppEvent::Init { seed: 1 });
    let calls = out
        .cmds()
        .iter()
        .filter(|c| matches!(c, pws_perpetual::AppCmd::Call { .. }))
        .count();
    assert_eq!(calls as u64, n, "all calls issued concurrently on Init");

    for &i in &permutation(n, perm_seed) {
        if i == abort_idx {
            d.deliver(AppEvent::Aborted { call: CallId(i) });
        } else {
            d.deliver(AppEvent::Reply {
                call: CallId(i),
                payload: reply_payload(i),
            });
        }
    }
    assert!(d.exec.is_done(), "every continuation resumed");
    d.exec
        .service_mut::<FanOut>()
        .expect("typed access")
        .resumed
        .clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn continuations_resume_in_agreed_event_order(
        n in 2u64..9,
        perm_seed in 0u64..1_000_000,
        abort_pick in 0u64..9,
    ) {
        let abort_idx = abort_pick % n;
        let fed = permutation(n, perm_seed);
        for mode in [WaitMode::ExplicitSet, WaitMode::AnyReply] {
            let resumed = run_fan_out(n, perm_seed, abort_idx, mode);
            // Resume order is exactly the agreed delivery order...
            let order: Vec<u64> = resumed.iter().map(|(t, _)| t.raw()).collect();
            prop_assert_eq!(&order, &fed, "mode {:?}", mode);
            // ...and exactly the aborted call resumed as a fault.
            for (t, is_fault) in &resumed {
                prop_assert_eq!(*is_fault, t.raw() == abort_idx);
            }
        }
    }

    #[test]
    fn both_wait_modes_agree_exactly(
        n in 2u64..9,
        perm_seed in 0u64..1_000_000,
    ) {
        // No abort: selecting on the explicit token set and waking on any
        // reply are observationally identical when all tokens are selected.
        let a = run_fan_out(n, perm_seed, u64::MAX, WaitMode::ExplicitSet);
        let b = run_fan_out(n, perm_seed, u64::MAX, WaitMode::AnyReply);
        prop_assert_eq!(a, b);
    }
}

#[test]
fn narrowed_wait_set_holds_back_but_never_reorders() {
    // The service first selects only token #2; the other replies arrive
    // earlier but must stay queued, then deliver in agreed order once the
    // service widens to any_reply.
    struct Narrow {
        resumed: Vec<u64>,
    }
    impl Service for Narrow {
        fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
            match ev {
                WsEvent::Init { .. } => {
                    for _ in 0..4 {
                        ctx.send(MessageContext::request("urn:svc:target", "op"));
                    }
                    Poll::reply(CallToken::from_raw(2))
                }
                WsEvent::Reply { token, .. } => {
                    self.resumed.push(token.raw());
                    if self.resumed.len() == 4 {
                        Poll::Done
                    } else {
                        Poll::any_reply()
                    }
                }
                _ => Poll::Next,
            }
        }
    }
    let mut d = Driver::new(host(Narrow {
        resumed: Vec::new(),
    }));
    d.deliver(AppEvent::Init { seed: 1 });
    for i in [0u64, 3, 2, 1] {
        d.deliver(AppEvent::Reply {
            call: CallId(i),
            payload: reply_payload(i),
        });
    }
    let resumed = d
        .exec
        .service_mut::<Narrow>()
        .expect("typed access")
        .resumed
        .clone();
    // #2 wakes the service first; the held-back 0 and 3 then deliver in
    // their original agreed order, followed by 1.
    assert_eq!(resumed, vec![2, 0, 3, 1]);
    assert!(d.exec.is_done());
}
