//! End-to-end tests of the Perpetual-WS middleware: active services with
//! long-running threads, synchronous and asynchronous messaging, agreed
//! utilities, orchestration across tiers, and fault injection.

use perpetual_ws::{
    ActiveService, FaultMode, MessageHandler, PassiveService, PassiveUtils, ServiceApi,
    SystemBuilder, Utils,
};
use pws_simnet::{SimDuration, SimTime};
use pws_soap::{MessageContext, XmlNode};

/// A passive echo used as a backend tier.
struct EchoBackend(&'static str);
impl PassiveService for EchoBackend {
    fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
        let text = format!("{}{}", self.0, req.body().text);
        req.reply_with("", XmlNode::new("echoResult").with_text(text))
    }
}

/// An active middle tier: forwards each request to the backend
/// *asynchronously*, continuing to accept new requests while replies are in
/// flight — the §4.1 model.
struct AsyncForwarder {
    backend: &'static str,
}
impl ActiveService for AsyncForwarder {
    fn run(self: Box<Self>, api: &mut ServiceApi) {
        let mut pending: Vec<(String, MessageContext)> = Vec::new();
        loop {
            // Prefer handing out replies we already have, then take more
            // work; receive_request blocks when idle.
            let Some(req) = api.receive_request() else {
                return;
            };
            let mut out = MessageContext::request(format!("urn:svc:{}", self.backend), "echo");
            out.body_mut().name = "echo".into();
            out.body_mut().text = req.body().text.clone();
            let id = api.send(out);
            pending.push((id, req));
            // Opportunistically complete any call whose reply arrived.
            while let Some(pos) = pending.iter().position(|_| true) {
                let (id, orig) = pending[pos].clone();
                let Some(reply) = api.receive_reply_for(&id) else {
                    return;
                };
                let text = reply.body().text.clone();
                let resp = orig.reply_with("", XmlNode::new("fwdResult").with_text(text));
                api.send_reply(resp, &orig);
                pending.remove(pos);
            }
        }
    }
}

#[test]
fn active_middle_tier_forwards_to_backend() {
    let mut b = SystemBuilder::new(5);
    b.service("mid", 4, |_| Box::new(AsyncForwarder { backend: "back" }));
    b.passive_service("back", 4, |_| Box::new(EchoBackend("be:")));
    b.scripted_client("rbe", "mid", 5);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(60));
    let replies = sys.client_replies("rbe");
    assert_eq!(replies.len(), 5);
    for r in &replies {
        assert!(r.body().text.starts_with("be:"), "body: {:?}", r.body());
    }
}

#[test]
fn sync_send_receive_works_inside_active_service() {
    struct SyncCaller;
    impl ActiveService for SyncCaller {
        fn run(self: Box<Self>, api: &mut ServiceApi) {
            loop {
                let Some(req) = api.receive_request() else {
                    return;
                };
                let mut call = MessageContext::request("urn:svc:back", "echo");
                call.body_mut().text = req.body().text.clone();
                let Some(reply) = api.send_receive(call) else {
                    return;
                };
                let resp = req.reply_with(
                    "",
                    XmlNode::new("r").with_text(format!("sync:{}", reply.body().text)),
                );
                api.send_reply(resp, &req);
            }
        }
    }
    let mut b = SystemBuilder::new(6);
    b.service("mid", 4, |_| Box::new(SyncCaller));
    b.passive_service("back", 1, |_| Box::new(EchoBackend("b:")));
    b.scripted_client("rbe", "mid", 3);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(60));
    let replies = sys.client_replies("rbe");
    assert_eq!(replies.len(), 3);
    assert!(replies.iter().all(|r| r.body().text.starts_with("sync:b:")));
}

#[test]
fn agreed_time_and_seeded_random_are_consistent() {
    // The service answers each request with (agreed time, random). All four
    // replicas must produce identical values or agreement on the reply
    // digest would fail and nothing would come back.
    struct TimeService;
    impl ActiveService for TimeService {
        fn run(self: Box<Self>, api: &mut ServiceApi) {
            loop {
                let Some(req) = api.receive_request() else {
                    return;
                };
                let t = api.current_time_millis();
                let r = api.random_u64();
                let resp = req.reply_with("", XmlNode::new("now").with_text(format!("{t}:{r}")));
                api.send_reply(resp, &req);
            }
        }
    }
    let mut b = SystemBuilder::new(7);
    b.service("clock", 4, |_| Box::new(TimeService));
    b.scripted_client("rbe", "clock", 3);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(60));
    let replies = sys.client_replies("rbe");
    assert_eq!(
        replies.len(),
        3,
        "replies only arrive if all replicas agreed on time+random"
    );
    let parts: Vec<u64> = replies[0]
        .body()
        .text
        .split(':')
        .map(|s| s.parse().unwrap())
        .collect();
    assert!(parts[0] >= 1_190_000_000_000, "epoch-offset time");
}

#[test]
fn f_faulty_replicas_are_masked_by_builder_faults() {
    let mut b = SystemBuilder::new(8);
    b.passive_service("svc", 4, |_| Box::new(EchoBackend("x:")));
    b.fault("svc", 2, FaultMode::Silent);
    b.scripted_client("rbe", "svc", 6);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(60));
    assert_eq!(sys.client_replies("rbe").len(), 6);
}

#[test]
fn corrupt_reply_replica_is_outvoted() {
    let mut b = SystemBuilder::new(9);
    b.passive_service("svc", 4, |_| Box::new(EchoBackend("x:")));
    b.fault("svc", 0, FaultMode::CorruptReplies);
    b.scripted_client("rbe", "svc", 6);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(60));
    let replies = sys.client_replies("rbe");
    assert_eq!(replies.len(), 6);
    assert!(replies.iter().all(|r| r.body().text.starts_with("x:")));
}

#[test]
fn windowed_client_paces_requests() {
    let mut b = SystemBuilder::new(10);
    b.passive_service("svc", 1, |_| Box::new(EchoBackend("e:")));
    b.scripted_client_windowed("sync", "svc", 10, 1);
    b.scripted_client_windowed("burst", "svc", 10, 10);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(60));
    assert_eq!(sys.client_replies("sync").len(), 10);
    assert_eq!(sys.client_replies("burst").len(), 10);
    let sync_lat = sys.client_latencies("sync");
    let burst_lat = sys.client_latencies("burst");
    // The burst client's later requests queue behind earlier ones, so its
    // completion latencies exceed the one-at-a-time client's.
    let avg = |v: &Vec<SimDuration>| v.iter().map(|d| d.as_micros()).sum::<u64>() / v.len() as u64;
    assert!(avg(&burst_lat) > avg(&sync_lat));
}

#[test]
fn throughput_counters_populate() {
    let mut b = SystemBuilder::new(11);
    b.passive_service("svc", 4, |_| Box::new(EchoBackend("e:")));
    b.scripted_client("rbe", "svc", 20);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(120));
    let tput = sys.client_throughput("rbe").expect("throughput");
    assert!(tput > 0.0);
    assert!(sys.metrics().counter("client.web_interactions") >= 20);
    assert!(sys.metrics().counter("perpetual.requests_delivered") > 0);
}

#[test]
fn deterministic_runs_same_seed() {
    let run = |seed| {
        let mut b = SystemBuilder::new(seed);
        b.passive_service("svc", 4, |_| Box::new(EchoBackend("e:")));
        b.scripted_client("rbe", "svc", 5);
        let mut sys = b.build();
        sys.run_until(SimTime::from_secs(30));
        (
            sys.sim_mut().trace_digest().value(),
            sys.client_replies("rbe")
                .iter()
                .map(|r| r.body().text.clone())
                .collect::<Vec<_>>(),
        )
    };
    let (t1, r1) = run(123);
    let (t2, r2) = run(123);
    assert_eq!(t1, t2);
    assert_eq!(r1, r2);
}
