//! End-to-end tests of the Perpetual-WS middleware: poll-driven services,
//! synchronous and asynchronous invocation, agreed utilities, orchestration
//! across tiers, fault injection, and panic surfacing.

use perpetual_ws::{
    CallToken, FaultMode, PassiveService, PassiveUtils, Poll, Service, ServiceCtx, SystemBuilder,
    WsEvent,
};
use pws_simnet::{RunOutcome, SimDuration, SimTime};
use pws_soap::{MessageContext, XmlNode};
use std::collections::HashMap;

/// A passive echo used as a backend tier.
struct EchoBackend(&'static str);
impl PassiveService for EchoBackend {
    fn handle(&mut self, req: MessageContext, _u: &mut PassiveUtils) -> MessageContext {
        let text = format!("{}{}", self.0, req.body().text);
        req.reply_with("", XmlNode::new("echoResult").with_text(text))
    }
}

/// An asynchronous middle tier: forwards each request to the backend and
/// keeps accepting new requests while any number of calls are in flight —
/// the §4.1/§5 model, now expressed directly as a state machine.
struct AsyncForwarder {
    backend: &'static str,
    pending: HashMap<CallToken, MessageContext>,
}
impl Service for AsyncForwarder {
    fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
        match ev {
            WsEvent::Request { request } => {
                let mut out = MessageContext::request(format!("urn:svc:{}", self.backend), "echo");
                out.body_mut().name = "echo".into();
                out.body_mut().text = request.body().text.clone();
                let token = ctx.send(out);
                self.pending.insert(token, request);
            }
            WsEvent::Reply { token, reply } => {
                if let Some(orig) = self.pending.remove(&token) {
                    let text = reply.body().text.clone();
                    let resp = orig.reply_with("", XmlNode::new("fwdResult").with_text(text));
                    ctx.reply(resp, &orig);
                }
            }
            _ => {}
        }
        Poll::Next
    }
}

#[test]
fn active_middle_tier_forwards_to_backend() {
    let mut b = SystemBuilder::new(5);
    b.service("mid", 4, |_| {
        Box::new(AsyncForwarder {
            backend: "back",
            pending: HashMap::new(),
        })
    });
    b.passive_service("back", 4, |_| Box::new(EchoBackend("be:")));
    b.scripted_client("rbe", "mid", 5);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(60));
    let replies = sys.client_replies("rbe");
    assert_eq!(replies.len(), 5);
    for r in &replies {
        assert!(r.body().text.starts_with("be:"), "body: {:?}", r.body());
    }
}

#[test]
fn sync_wait_set_works_inside_service() {
    // The synchronous `send_receive` idiom: while the downstream call is in
    // flight only its reply is admitted; new requests queue in agreed order.
    #[derive(Default)]
    struct SyncCaller {
        serving: Option<MessageContext>,
    }
    impl Service for SyncCaller {
        fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
            match ev {
                WsEvent::Request { request } => {
                    let mut call = MessageContext::request("urn:svc:back", "echo");
                    call.body_mut().text = request.body().text.clone();
                    let token = ctx.send(call);
                    self.serving = Some(request);
                    Poll::reply(token)
                }
                WsEvent::Reply { reply, .. } => {
                    let req = self.serving.take().expect("pending");
                    let resp = req.reply_with(
                        "",
                        XmlNode::new("r").with_text(format!("sync:{}", reply.body().text)),
                    );
                    ctx.reply(resp, &req);
                    Poll::request()
                }
                _ => Poll::request(),
            }
        }
    }
    let mut b = SystemBuilder::new(6);
    b.service("mid", 4, |_| Box::<SyncCaller>::default());
    b.passive_service("back", 1, |_| Box::new(EchoBackend("b:")));
    b.scripted_client("rbe", "mid", 3);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(60));
    let replies = sys.client_replies("rbe");
    assert_eq!(replies.len(), 3);
    assert!(replies.iter().all(|r| r.body().text.starts_with("sync:b:")));
}

#[test]
fn agreed_time_and_seeded_random_are_consistent() {
    // The service answers each request with (agreed time, random). All four
    // replicas must produce identical values or agreement on the reply
    // digest would fail and nothing would come back.
    #[derive(Default)]
    struct TimeService {
        serving: Option<MessageContext>,
    }
    impl Service for TimeService {
        fn on_event(&mut self, ev: WsEvent, ctx: &mut ServiceCtx<'_>) -> Poll {
            match ev {
                WsEvent::Request { request } => {
                    ctx.query_time();
                    self.serving = Some(request);
                    Poll::time()
                }
                WsEvent::Time { millis, .. } => {
                    let r = ctx.random_u64();
                    let req = self.serving.take().expect("pending");
                    let resp =
                        req.reply_with("", XmlNode::new("now").with_text(format!("{millis}:{r}")));
                    ctx.reply(resp, &req);
                    Poll::request()
                }
                _ => Poll::request(),
            }
        }
    }
    let mut b = SystemBuilder::new(7);
    b.service("clock", 4, |_| Box::<TimeService>::default());
    b.scripted_client("rbe", "clock", 3);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(60));
    let replies = sys.client_replies("rbe");
    assert_eq!(
        replies.len(),
        3,
        "replies only arrive if all replicas agreed on time+random"
    );
    let parts: Vec<u64> = replies[0]
        .body()
        .text
        .split(':')
        .map(|s| s.parse().unwrap())
        .collect();
    assert!(parts[0] >= 1_190_000_000_000, "epoch-offset time");
}

#[test]
fn f_faulty_replicas_are_masked_by_builder_faults() {
    let mut b = SystemBuilder::new(8);
    b.passive_service("svc", 4, |_| Box::new(EchoBackend("x:")));
    b.fault("svc", 2, FaultMode::Silent);
    b.scripted_client("rbe", "svc", 6);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(60));
    assert_eq!(sys.client_replies("rbe").len(), 6);
}

#[test]
fn corrupt_reply_replica_is_outvoted() {
    let mut b = SystemBuilder::new(9);
    b.passive_service("svc", 4, |_| Box::new(EchoBackend("x:")));
    b.fault("svc", 0, FaultMode::CorruptReplies);
    b.scripted_client("rbe", "svc", 6);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(60));
    let replies = sys.client_replies("rbe");
    assert_eq!(replies.len(), 6);
    assert!(replies.iter().all(|r| r.body().text.starts_with("x:")));
}

#[test]
fn windowed_client_paces_requests() {
    let mut b = SystemBuilder::new(10);
    b.passive_service("svc", 1, |_| Box::new(EchoBackend("e:")));
    b.scripted_client_windowed("sync", "svc", 10, 1);
    b.scripted_client_windowed("burst", "svc", 10, 10);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(60));
    assert_eq!(sys.client_replies("sync").len(), 10);
    assert_eq!(sys.client_replies("burst").len(), 10);
    let sync_lat = sys.client_latencies("sync");
    let burst_lat = sys.client_latencies("burst");
    // The burst client's later requests queue behind earlier ones, so its
    // completion latencies exceed the one-at-a-time client's.
    let avg = |v: &Vec<SimDuration>| v.iter().map(|d| d.as_micros()).sum::<u64>() / v.len() as u64;
    assert!(avg(&burst_lat) > avg(&sync_lat));
}

#[test]
fn throughput_counters_populate() {
    let mut b = SystemBuilder::new(11);
    b.passive_service("svc", 4, |_| Box::new(EchoBackend("e:")));
    b.scripted_client("rbe", "svc", 20);
    let mut sys = b.build();
    sys.run_until(SimTime::from_secs(120));
    let tput = sys.client_throughput("rbe").expect("throughput");
    assert!(tput > 0.0);
    assert!(sys.metrics().counter("client.web_interactions") >= 20);
    assert!(sys.metrics().counter("perpetual.requests_delivered") > 0);
}

#[test]
fn deterministic_runs_same_seed() {
    let run = |seed| {
        let mut b = SystemBuilder::new(seed);
        b.passive_service("svc", 4, |_| Box::new(EchoBackend("e:")));
        b.scripted_client("rbe", "svc", 5);
        let mut sys = b.build();
        sys.run_until(SimTime::from_secs(30));
        (
            sys.sim_mut().trace_digest().value(),
            sys.client_replies("rbe")
                .iter()
                .map(|r| r.body().text.clone())
                .collect::<Vec<_>>(),
        )
    };
    let (t1, r1) = run(123);
    let (t2, r2) = run(123);
    assert_eq!(t1, t2);
    assert_eq!(r1, r2);
}

#[test]
fn service_panic_surfaces_as_run_failure_not_a_hang() {
    // A deterministic bug in service code must fail the run loudly — the
    // old thread model could leave a panicking service thread joined
    // silently.
    struct Buggy;
    impl Service for Buggy {
        fn on_event(&mut self, ev: WsEvent, _ctx: &mut ServiceCtx<'_>) -> Poll {
            if let WsEvent::Request { .. } = ev {
                panic!("deterministic service bug");
            }
            Poll::request()
        }
    }
    let mut b = SystemBuilder::new(12);
    b.service("buggy", 4, |_| Box::new(Buggy));
    b.scripted_client("rbe", "buggy", 1);
    let mut sys = b.build();
    let outcome = sys.run_until(SimTime::from_secs(60));
    assert!(
        matches!(outcome, RunOutcome::NodePanicked { .. }),
        "got {outcome:?}"
    );
    assert!(sys
        .sim_mut()
        .panic_message()
        .unwrap()
        .contains("deterministic service bug"));
    // Subsequent runs must not hang either.
    assert!(matches!(
        sys.run_until(SimTime::from_secs(120)),
        RunOutcome::NodePanicked { .. }
    ));
}
