//! Router determinism properties (ISSUE 5 satellite).
//!
//! The rendezvous router is the coordination-free contract between every
//! client, calling replica, and shard in a deployment: these properties
//! pin down the three guarantees everything else leans on — identical
//! assignment everywhere (no seed, no instance state), minimal movement
//! under shard-count growth, and balance within the documented bound.

use perpetual_ws::{RendezvousRouter, Router, RouterEpoch, SystemBuilder};
use proptest::prelude::*;
use pws_simnet::SimTime;
use std::sync::Arc;

proptest! {
    /// Seed/instance independence: two separately constructed routers —
    /// and repeat calls on one — agree on every key, for every shard
    /// count. There is nothing to configure, so there is nothing to skew.
    #[test]
    fn assignment_is_identical_across_instances_and_calls(
        keys in proptest::collection::vec("[a-z0-9:._-]{0,16}", 1..40),
        shards in 1u32..17,
    ) {
        let a = RendezvousRouter::new();
        let b = RendezvousRouter::new();
        for key in &keys {
            let s = a.shard(key, shards);
            prop_assert!(s < shards);
            prop_assert_eq!(s, b.shard(key, shards));
            prop_assert_eq!(s, a.shard(key, shards));
        }
    }

    /// Stability under growth: adding shard `S` to an `S`-shard layout may
    /// move a key only *to* the new shard — keys never migrate between
    /// pre-existing shards, so a scale-out touches the minimum of state.
    #[test]
    fn growth_only_moves_keys_to_the_new_shard(
        key in "[ -~]{0,24}",
        shards in 1u32..12,
    ) {
        let r = RendezvousRouter::new();
        let before = r.shard(&key, shards);
        let after = r.shard(&key, shards + 1);
        prop_assert!(
            after == before || after == shards,
            "key {:?} moved {} -> {} when shard {} was added",
            key, before, after, shards
        );
    }

    /// Epoch transitions (ISSUE 7): flipping a `RouterEpoch` from `S` to
    /// `S + 1` moves exactly the keys whose rendezvous winner changed —
    /// and every one of those lands on the new shard. Routing before and
    /// after the flip is the pure per-epoch function of the underlying
    /// router; the epoch wrapper adds no state of its own.
    #[test]
    fn epoch_flip_moves_only_keys_whose_winner_changed(
        keys in proptest::collection::vec("[a-z0-9:._-]{0,16}", 1..50),
        shards in 1u32..10,
    ) {
        let raw = RendezvousRouter::new();
        let epoch = RouterEpoch::new(Arc::new(RendezvousRouter::new()), shards);
        prop_assert_eq!(epoch.epoch(), shards);
        let before: Vec<u32> = keys.iter().map(|k| epoch.shard(k)).collect();
        for (k, s) in keys.iter().zip(&before) {
            prop_assert_eq!(*s, raw.shard(k, shards));
        }
        epoch.advance(shards + 1);
        prop_assert_eq!(epoch.epoch(), shards + 1);
        for (k, old) in keys.iter().zip(&before) {
            let new = epoch.shard(k);
            // A moved key moved because its rendezvous winner changed, and
            // the only legal destination is the newly added shard.
            prop_assert_eq!(new, raw.shard(k, shards + 1));
            prop_assert!(
                new == *old || new == shards,
                "key {:?} moved {} -> {} on epoch flip {} -> {}",
                k, old, new, shards, shards + 1
            );
        }
        // Epochs only grow: a stale advance is a no-op.
        epoch.advance(shards);
        prop_assert_eq!(epoch.epoch(), shards + 1);
    }

    /// Movement volume on a flip stays near the fair share: growing from
    /// `S` to `S + 1` shards reassigns roughly `1 / (S + 1)` of a large
    /// corpus (within 2x either way), so a reshard migrates the minimum of
    /// state rather than reshuffling the world.
    #[test]
    fn epoch_flip_moves_about_a_fair_share_of_keys(
        base in any::<u32>(),
        shards in 1u32..8,
    ) {
        let epoch = RouterEpoch::new(Arc::new(RendezvousRouter::new()), shards);
        let keys = 2_000u32;
        let before: Vec<u32> = (0..keys)
            .map(|i| epoch.shard(&format!("k{base}-{i}")))
            .collect();
        epoch.advance(shards + 1);
        let moved = (0..keys)
            .filter(|i| epoch.shard(&format!("k{base}-{i}")) != before[*i as usize])
            .count() as u32;
        let fair = keys / (shards + 1);
        prop_assert!(
            moved * 2 >= fair && moved <= fair * 2,
            "{} of {} keys moved on {} -> {} (fair share {})",
            moved, keys, shards, shards + 1, fair
        );
    }

    /// Balance: over any reasonably sized corpus of distinct keys, every
    /// shard owns between half and twice the fair share (the bound
    /// documented on `RendezvousRouter`).
    #[test]
    fn balance_stays_within_the_documented_bound(
        base in any::<u32>(),
        shards in 2u32..9,
    ) {
        let r = RendezvousRouter::new();
        let keys = 2_000u32;
        let mut counts = vec![0u32; shards as usize];
        for i in 0..keys {
            let key = format!("k{}-{i}", base);
            counts[r.shard(&key, shards) as usize] += 1;
        }
        let fair = keys / shards;
        for (s, c) in counts.iter().enumerate() {
            prop_assert!(
                *c * 2 >= fair && *c <= fair * 2,
                "shard {}/{} owns {} keys vs fair {}",
                s, shards, c, fair
            );
        }
    }
}

/// Replica-side agreement, end to end: the shard a *deployment* routes a
/// key to is the shard the standalone router predicts, independent of the
/// system seed — clients and shards agree without ever exchanging routing
/// state.
#[test]
fn deployment_routing_matches_the_standalone_router_across_seeds() {
    for seed in [1u64, 42, 9_999] {
        let mut b = SystemBuilder::new(seed);
        b.sharded_passive("echo", 4, 1, |shard, _| {
            Box::new(
                move |req: pws_soap::MessageContext, _u: &mut perpetual_ws::PassiveUtils| {
                    req.reply_with(
                        "",
                        pws_soap::XmlNode::new("owner").with_text(shard.to_string()),
                    )
                },
            )
        });
        b.scripted_client_windowed("probe", "echo", 24, 4);
        let mut sys = b.build();
        sys.run_until(SimTime::from_secs(60));
        let replies = sys.client_replies("probe");
        assert_eq!(replies.len(), 24);
        let router = RendezvousRouter::new();
        for (i, r) in replies.iter().enumerate() {
            let owner: u32 = r.body().text.parse().expect("owner shard");
            // Scripted clients key request i on its sequence number; the
            // reply's RelatesTo proves which request this answers, but
            // seq->key is 1:1 here so the owner set must match exactly.
            let _ = i;
            assert!(owner < 4);
        }
        // Every reply must come from the shard the router predicts for
        // some probe key, and each key's prediction must be represented
        // the right number of times.
        let mut expected = std::collections::HashMap::new();
        for i in 0..24u64 {
            *expected
                .entry(router.shard(&i.to_string(), 4))
                .or_insert(0u32) += 1;
        }
        let mut observed = std::collections::HashMap::new();
        for r in &replies {
            *observed
                .entry(r.body().text.parse::<u32>().unwrap())
                .or_insert(0u32) += 1;
        }
        assert_eq!(expected, observed, "seed {seed} skewed the routing");
    }
}
