//! PBFT-style authenticators and Perpetual reply-bundle shares.
//!
//! An *authenticator* is a vector of MACs over the same message, one per
//! receiving replica, each computed under the pairwise key the sender shares
//! with that replica (Castro & Liskov §2.4). It replaces a digital signature
//! at roughly 1/1000 of the cost, at the price of `O(n)` tag bytes.
//!
//! A [`BundleShare`] is a target replica's contribution to a Perpetual reply
//! bundle (paper §2.1.1 stages 5–6): the replica MACs the reply digest once
//! per *calling* driver, so the responder can forward a bundle of `f_t + 1`
//! shares that every calling driver can verify independently.

use crate::keys::{KeyTable, Principal};
use crate::mac::Mac;
use crate::sha256::Digest32;

/// A vector of MACs over one message, one entry per receiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Authenticator {
    entries: Vec<(Principal, Mac)>,
}

impl Authenticator {
    /// Computes an authenticator for `msg` from `sender` to each receiver.
    pub fn compute(
        keys: &mut KeyTable,
        sender: Principal,
        receivers: &[Principal],
        msg: &[u8],
    ) -> Self {
        let entries = receivers
            .iter()
            .map(|&r| (r, keys.key_between(sender, r).compute(msg)))
            .collect();
        Authenticator { entries }
    }

    /// Verifies the entry addressed to `receiver`, if present.
    pub fn verify(
        &self,
        keys: &mut KeyTable,
        sender: Principal,
        receiver: Principal,
        msg: &[u8],
    ) -> bool {
        self.entries
            .iter()
            .find(|(r, _)| *r == receiver)
            .is_some_and(|(_, mac)| keys.key_between(sender, receiver).verify(msg, mac))
    }

    /// The MAC addressed to `receiver`, if present.
    pub fn mac_for(&self, receiver: Principal) -> Option<&Mac> {
        self.entries
            .iter()
            .find(|(r, _)| *r == receiver)
            .map(|(_, m)| m)
    }

    /// Number of (receiver, MAC) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the authenticator carries no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over the entries (for wire encoding).
    pub fn entries(&self) -> impl Iterator<Item = &(Principal, Mac)> {
        self.entries.iter()
    }

    /// Rebuilds an authenticator from decoded entries.
    pub fn from_entries(entries: Vec<(Principal, Mac)>) -> Self {
        Authenticator { entries }
    }
}

/// One target replica's contribution to a reply bundle: an authenticator
/// over `(request id, reply digest)` addressed to every calling driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleShare {
    /// The target replica that produced this share.
    pub from: Principal,
    /// Digest of the reply payload this share vouches for.
    pub reply_digest: Digest32,
    /// MACs addressed to each calling driver.
    pub auth: Authenticator,
}

/// Canonical byte string a share MACs: request id then reply digest.
pub fn share_message(request_tag: &[u8], reply_digest: &Digest32) -> Vec<u8> {
    let mut msg = Vec::with_capacity(request_tag.len() + 32);
    msg.extend_from_slice(request_tag);
    msg.extend_from_slice(reply_digest.as_bytes());
    msg
}

impl BundleShare {
    /// Builds a share for `reply_digest` of request `request_tag`, MACed to
    /// every principal in `calling_drivers`.
    pub fn build(
        keys: &mut KeyTable,
        from: Principal,
        request_tag: &[u8],
        reply_digest: Digest32,
        calling_drivers: &[Principal],
    ) -> Self {
        let msg = share_message(request_tag, &reply_digest);
        BundleShare {
            from,
            reply_digest,
            auth: Authenticator::compute(keys, from, calling_drivers, &msg),
        }
    }

    /// Verifies this share from the point of view of one calling driver.
    pub fn verify(&self, keys: &mut KeyTable, request_tag: &[u8], me: Principal) -> bool {
        let msg = share_message(request_tag, &self.reply_digest);
        self.auth.verify(keys, self.from, me, &msg)
    }
}

/// Validates a reply bundle from one calling driver's perspective: at least
/// `threshold` shares from *distinct* target replicas, all vouching for
/// `reply_digest`, each with a valid MAC addressed to `me`.
pub fn verify_bundle(
    keys: &mut KeyTable,
    shares: &[BundleShare],
    request_tag: &[u8],
    reply_digest: &Digest32,
    me: Principal,
    threshold: usize,
) -> bool {
    let mut seen: Vec<Principal> = Vec::new();
    for share in shares {
        if share.reply_digest != *reply_digest || seen.contains(&share.from) {
            continue;
        }
        if share.verify(keys, request_tag, me) {
            seen.push(share.from);
            if seen.len() >= threshold {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sha256::sha256;

    fn drivers(n: u32) -> Vec<Principal> {
        (0..n).map(|i| Principal::new(1, i)).collect()
    }

    #[test]
    fn authenticator_verifies_per_receiver() {
        let mut keys = KeyTable::new(1);
        let sender = Principal::new(0, 0);
        let rs = drivers(4);
        let auth = Authenticator::compute(&mut keys, sender, &rs, b"hello");
        assert_eq!(auth.len(), 4);
        assert!(!auth.is_empty());
        for &r in &rs {
            assert!(auth.verify(&mut keys, sender, r, b"hello"));
            assert!(!auth.verify(&mut keys, sender, r, b"hellp"));
        }
        // A receiver not in the vector fails.
        assert!(!auth.verify(&mut keys, sender, Principal::new(1, 9), b"hello"));
    }

    #[test]
    fn authenticator_entry_roundtrip() {
        let mut keys = KeyTable::new(1);
        let sender = Principal::new(0, 0);
        let rs = drivers(3);
        let auth = Authenticator::compute(&mut keys, sender, &rs, b"m");
        let rebuilt = Authenticator::from_entries(auth.entries().cloned().collect());
        assert_eq!(auth, rebuilt);
        assert!(rebuilt.mac_for(rs[1]).is_some());
        assert!(rebuilt.mac_for(Principal::new(9, 9)).is_none());
    }

    #[test]
    fn bundle_accepts_threshold_distinct_shares() {
        let mut keys = KeyTable::new(1);
        let callers = drivers(4);
        let digest = sha256(b"the reply");
        let tag = b"req-42";
        let shares: Vec<BundleShare> = (0..2)
            .map(|i| BundleShare::build(&mut keys, Principal::new(2, i), tag, digest, &callers))
            .collect();
        // threshold 2 (= f_t + 1 with f_t = 1)
        assert!(verify_bundle(
            &mut keys, &shares, tag, &digest, callers[0], 2
        ));
        assert!(!verify_bundle(
            &mut keys, &shares, tag, &digest, callers[0], 3
        ));
    }

    #[test]
    fn bundle_rejects_duplicate_share_origin() {
        let mut keys = KeyTable::new(1);
        let callers = drivers(4);
        let digest = sha256(b"the reply");
        let tag = b"req-1";
        let share = BundleShare::build(&mut keys, Principal::new(2, 0), tag, digest, &callers);
        let shares = vec![share.clone(), share];
        assert!(!verify_bundle(
            &mut keys, &shares, tag, &digest, callers[0], 2
        ));
    }

    #[test]
    fn bundle_rejects_wrong_digest_shares() {
        let mut keys = KeyTable::new(1);
        let callers = drivers(4);
        let good = sha256(b"good");
        let bad = sha256(b"bad");
        let tag = b"req-2";
        let shares = vec![
            BundleShare::build(&mut keys, Principal::new(2, 0), tag, good, &callers),
            BundleShare::build(&mut keys, Principal::new(2, 1), tag, bad, &callers),
        ];
        assert!(!verify_bundle(
            &mut keys, &shares, tag, &good, callers[0], 2
        ));
    }

    #[test]
    fn bundle_rejects_forged_share() {
        let mut keys = KeyTable::new(1);
        let mut other_keys = KeyTable::new(2); // attacker has wrong keys
        let callers = drivers(4);
        let digest = sha256(b"r");
        let tag = b"req-3";
        let shares = vec![
            BundleShare::build(&mut keys, Principal::new(2, 0), tag, digest, &callers),
            BundleShare::build(&mut other_keys, Principal::new(2, 1), tag, digest, &callers),
        ];
        assert!(!verify_bundle(
            &mut keys, &shares, tag, &digest, callers[0], 2
        ));
        assert!(verify_bundle(
            &mut keys, &shares, tag, &digest, callers[0], 1
        ));
    }
}
