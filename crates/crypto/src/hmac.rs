//! HMAC-SHA-256 (RFC 2104), verified against RFC 4231 test vectors.

use crate::sha256::{sha256, Sha256};

const BLOCK: usize = 64;

/// Computes `HMAC-SHA-256(key, msg)`.
///
/// Keys longer than the 64-byte block are hashed first, per RFC 2104.
///
/// # Example
///
/// ```
/// let tag = pws_crypto::hmac::hmac_sha256(b"Jefe", b"what do ya want for nothing?");
/// assert_eq!(tag[0], 0x5b);
/// ```
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; 32] {
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..32].copy_from_slice(sha256(key).as_bytes());
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }
    let mut ipad = [0x36u8; BLOCK];
    let mut opad = [0x5cu8; BLOCK];
    for i in 0..BLOCK {
        ipad[i] ^= key_block[i];
        opad[i] ^= key_block[i];
    }
    let mut inner = Sha256::new();
    inner.update(&ipad);
    inner.update(msg);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    outer.update(&opad);
    outer.update(inner_digest.as_bytes());
    outer.finalize().0
}

/// Incremental HMAC-SHA-256, for MACs over multi-part messages without
/// intermediate copies.
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    opad: [u8; BLOCK],
}

impl HmacSha256 {
    /// Starts a MAC computation under `key`.
    pub fn new(key: &[u8]) -> Self {
        let mut key_block = [0u8; BLOCK];
        if key.len() > BLOCK {
            key_block[..32].copy_from_slice(sha256(key).as_bytes());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0x36u8; BLOCK];
        let mut opad = [0x5cu8; BLOCK];
        for i in 0..BLOCK {
            ipad[i] ^= key_block[i];
            opad[i] ^= key_block[i];
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 { inner, opad }
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, msg: &[u8]) {
        self.inner.update(msg);
    }

    /// Finishes and returns the tag.
    pub fn finalize(self) -> [u8; 32] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad);
        outer.update(inner_digest.as_bytes());
        outer.finalize().0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn hex(t: &[u8; 32]) -> String {
        t.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test cases.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let msg = [0xddu8; 50];
        let tag = hmac_sha256(&key, &msg);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case7_long_key_and_data() {
        let key = [0xaau8; 131];
        let msg: &[u8] = b"This is a test using a larger than block-size key and a larger than block-size data. The key needs to be hashed before being used by the HMAC algorithm.";
        let tag = hmac_sha256(&key, msg);
        assert_eq!(
            hex(&tag),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let key = b"some key material";
        let mut h = HmacSha256::new(key);
        h.update(b"part one ");
        h.update(b"part two");
        assert_eq!(h.finalize(), hmac_sha256(key, b"part one part two"));
    }

    proptest! {
        #[test]
        fn key_separation(msg in proptest::collection::vec(any::<u8>(), 0..128)) {
            let a = hmac_sha256(b"key-a", &msg);
            let b = hmac_sha256(b"key-b", &msg);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn incremental_equals_oneshot_prop(
            key in proptest::collection::vec(any::<u8>(), 0..100),
            msg in proptest::collection::vec(any::<u8>(), 0..256),
            split in 0usize..256,
        ) {
            let split = split.min(msg.len());
            let mut h = HmacSha256::new(&key);
            h.update(&msg[..split]);
            h.update(&msg[split..]);
            prop_assert_eq!(h.finalize(), hmac_sha256(&key, &msg));
        }
    }
}
