//! Pairwise session-key tables.
//!
//! The paper's `ChannelAdapter` maintains an authenticated, encrypted
//! SSL/TCP connection per peer; the session keys behind those connections
//! are modeled here as deterministic derivations from a deployment-wide
//! master seed, so every correct node computes the same pairwise key without
//! a simulated handshake.

use crate::mac::MacKey;
use std::collections::HashMap;
use std::fmt;

/// A protocol principal: one replica of one service group.
///
/// Unreplicated endpoints (plain clients, §1 footnote 3) are degenerate
/// groups of size 1, so they are principals too.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Principal {
    /// The replica group (service) id.
    pub group: u32,
    /// The replica index within the group.
    pub replica: u32,
}

impl Principal {
    /// Creates a principal.
    pub const fn new(group: u32, replica: u32) -> Self {
        Principal { group, replica }
    }
}

impl fmt::Debug for Principal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}r{}", self.group, self.replica)
    }
}

/// Lazily-populated table of pairwise MAC keys.
#[derive(Debug)]
pub struct KeyTable {
    master_seed: u64,
    cache: HashMap<(Principal, Principal), MacKey>,
}

impl KeyTable {
    /// Creates a key table for a deployment identified by `master_seed`.
    pub fn new(master_seed: u64) -> Self {
        KeyTable {
            master_seed,
            cache: HashMap::new(),
        }
    }

    /// The symmetric key shared by `a` and `b`; symmetric in its arguments.
    pub fn key_between(&mut self, a: Principal, b: Principal) -> MacKey {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let seed = self.master_seed;
        *self.cache.entry((lo, hi)).or_insert_with(|| {
            let mut label = Vec::with_capacity(16);
            label.extend_from_slice(&lo.group.to_be_bytes());
            label.extend_from_slice(&lo.replica.to_be_bytes());
            label.extend_from_slice(&hi.group.to_be_bytes());
            label.extend_from_slice(&hi.replica.to_be_bytes());
            MacKey::derive_from_label(seed, &label)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_is_symmetric() {
        let mut t = KeyTable::new(99);
        let a = Principal::new(0, 1);
        let b = Principal::new(2, 3);
        assert_eq!(t.key_between(a, b), t.key_between(b, a));
    }

    #[test]
    fn distinct_pairs_distinct_keys() {
        let mut t = KeyTable::new(99);
        let a = Principal::new(0, 0);
        let b = Principal::new(0, 1);
        let c = Principal::new(0, 2);
        assert_ne!(t.key_between(a, b), t.key_between(a, c));
        assert_ne!(t.key_between(a, b), t.key_between(b, c));
    }

    #[test]
    fn two_tables_same_seed_agree() {
        let mut t1 = KeyTable::new(5);
        let mut t2 = KeyTable::new(5);
        let a = Principal::new(1, 0);
        let b = Principal::new(2, 1);
        assert_eq!(t1.key_between(a, b), t2.key_between(a, b));
        let mut t3 = KeyTable::new(6);
        assert_ne!(t1.key_between(a, b), t3.key_between(a, b));
    }

    #[test]
    fn principal_debug() {
        assert_eq!(format!("{:?}", Principal::new(3, 1)), "g3r1");
    }
}
