//! # pws-crypto
//!
//! The authentication substrate for the Perpetual-WS reproduction.
//!
//! The paper authenticates all communication with Message Authentication
//! Codes (MACs, §2.1.2), arguing that MAC computation is three orders of
//! magnitude cheaper than digital signatures and therefore scales to large
//! replica groups (§3, "Cryptographic overhead"). This crate provides:
//!
//! * [`sha256`](mod@sha256) — a from-scratch FIPS 180-4 SHA-256
//!   implementation.
//! * [`hmac`] — HMAC-SHA-256 (RFC 2104), tested against RFC 4231 vectors.
//! * [`mac`] — [`MacKey`]/[`Mac`] newtypes with constant-shape verification.
//! * [`keys`] — pairwise session-key tables between principals, as the
//!   Perpetual `ChannelAdapter` would negotiate over SSL.
//! * [`auth`] — PBFT-style *authenticators*: a vector of MACs, one per
//!   receiving replica, plus reply-bundle share verification used by
//!   Perpetual stage 6.
//! * [`sig`] — a **cost-model** digital-signature stand-in used only by the
//!   baseline comparisons (SWS/BFT-WS sign replies); see module docs for
//!   the substitution rationale.
//!
//! See `docs/ARCHITECTURE.md` at the repository root for how this crate
//! slots into the full Perpetual-WS stack.
//!
//! # Example
//!
//! ```
//! use pws_crypto::{MacKey, hmac::hmac_sha256};
//!
//! let key = MacKey::derive_from_label(42, b"replica-0<->replica-1");
//! let mac = key.compute(b"pre-prepare");
//! assert!(key.verify(b"pre-prepare", &mac));
//! assert!(!key.verify(b"pre-prepared", &mac));
//! let raw = hmac_sha256(key.as_bytes(), b"pre-prepare");
//! assert_eq!(raw, *mac.as_bytes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod auth;
pub mod hmac;
pub mod keys;
pub mod mac;
pub mod sha256;
pub mod sig;

pub use auth::{Authenticator, BundleShare};
pub use keys::{KeyTable, Principal};
pub use mac::{Mac, MacKey};
pub use sha256::{sha256, Digest32};
pub use sig::{SigKeypair, Signature};
