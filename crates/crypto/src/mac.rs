//! MAC key and tag newtypes.

use crate::hmac::hmac_sha256;
use std::fmt;

/// A 256-bit symmetric MAC key shared by exactly two principals.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacKey([u8; 32]);

impl MacKey {
    /// Wraps raw key bytes.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        MacKey(bytes)
    }

    /// Derives a key from a master seed and a label, e.g. the canonical names
    /// of the two endpoints. Deterministic, so both endpoints of a simulated
    /// channel derive the same key without a handshake (the paper's
    /// `Connection` modules negotiate keys over SSL; the handshake itself is
    /// not part of any measured path).
    pub fn derive_from_label(master_seed: u64, label: &[u8]) -> Self {
        MacKey(hmac_sha256(&master_seed.to_be_bytes(), label))
    }

    /// The raw key bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Computes the MAC of `msg` under this key.
    pub fn compute(&self, msg: &[u8]) -> Mac {
        Mac(hmac_sha256(&self.0, msg))
    }

    /// Verifies `mac` over `msg`.
    pub fn verify(&self, msg: &[u8], mac: &Mac) -> bool {
        // Simulation substrate: plain comparison suffices (no timing oracle).
        self.compute(msg) == *mac
    }
}

impl fmt::Debug for MacKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "MacKey(..)")
    }
}

/// A 256-bit MAC tag.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mac([u8; 32]);

impl Mac {
    /// Wraps raw tag bytes (e.g. decoded from the wire).
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Mac(bytes)
    }

    /// The raw tag bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }
}

impl fmt::Debug for Mac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Mac({})",
            self.0[..6]
                .iter()
                .map(|b| format!("{b:02x}"))
                .collect::<String>()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_verify_roundtrip() {
        let key = MacKey::derive_from_label(7, b"a<->b");
        let mac = key.compute(b"message");
        assert!(key.verify(b"message", &mac));
        assert!(!key.verify(b"messag3", &mac));
    }

    #[test]
    fn different_keys_reject() {
        let k1 = MacKey::derive_from_label(7, b"a<->b");
        let k2 = MacKey::derive_from_label(7, b"a<->c");
        let mac = k1.compute(b"message");
        assert!(!k2.verify(b"message", &mac));
    }

    #[test]
    fn derivation_is_deterministic() {
        let k1 = MacKey::derive_from_label(7, b"x");
        let k2 = MacKey::derive_from_label(7, b"x");
        assert_eq!(k1, k2);
        assert_ne!(k1, MacKey::derive_from_label(8, b"x"));
    }

    #[test]
    fn debug_hides_key_material() {
        let key = MacKey::derive_from_label(7, b"secret");
        assert_eq!(format!("{key:?}"), "MacKey(..)");
        let mac = key.compute(b"m");
        assert!(format!("{mac:?}").starts_with("Mac("));
    }

    #[test]
    fn mac_from_bytes_roundtrip() {
        let key = MacKey::from_bytes([9u8; 32]);
        let mac = key.compute(b"data");
        let wire = *mac.as_bytes();
        assert_eq!(Mac::from_bytes(wire), mac);
    }
}
