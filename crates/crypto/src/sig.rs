//! A cost-model digital-signature stand-in.
//!
//! **Substitution note (see DESIGN.md):** the paper's baselines (SWS and
//! BFT-WS) authenticate messages with RSA digital signatures, and the
//! paper's §3 argues MACs are *three orders of magnitude* cheaper — the
//! basis for Perpetual-WS's scalability claim. Implementing production RSA
//! from scratch is out of scope and irrelevant to the protocol logic, so
//! this module provides a scheme with the *interface* of a signature
//! (anyone holding the public handle can verify) and explicit **cost
//! constants** used by the simulation's CPU model. The default costs are
//! calibrated to the paper's claim: signing ≈ 1000× a MAC computation.
//!
//! Internally a "signature" is an HMAC under the keypair's secret; a
//! verifier re-computes it through the public handle. This is *not*
//! cryptographically a signature (the handle embeds the secret) — it is a
//! simulation artifact, clearly documented, never used for real security.

use crate::hmac::hmac_sha256;
use std::fmt;

/// Simulated CPU cost of producing a signature, in microseconds.
/// ≈ 1000 × [`MAC_COMPUTE_COST_US`], per the paper's three-orders claim.
pub const SIGN_COST_US: u64 = 2_000;

/// Simulated CPU cost of verifying a signature, in microseconds.
pub const VERIFY_COST_US: u64 = 100;

/// Simulated CPU cost of computing one MAC, in microseconds.
pub const MAC_COMPUTE_COST_US: u64 = 2;

/// A signature tag.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature([u8; 32]);

impl Signature {
    /// Raw tag bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Rebuilds a signature from wire bytes.
    pub const fn from_bytes(bytes: [u8; 32]) -> Self {
        Signature(bytes)
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Signature({})",
            self.0[..6]
                .iter()
                .map(|b| format!("{b:02x}"))
                .collect::<String>()
        )
    }
}

/// A signing keypair (simulation stand-in; see module docs).
#[derive(Clone)]
pub struct SigKeypair {
    secret: [u8; 32],
    signer_id: u64,
}

impl SigKeypair {
    /// Derives a keypair for `signer_id` from the deployment master seed.
    pub fn derive(master_seed: u64, signer_id: u64) -> Self {
        let mut label = Vec::with_capacity(12);
        label.extend_from_slice(b"sig:");
        label.extend_from_slice(&signer_id.to_be_bytes());
        SigKeypair {
            secret: hmac_sha256(&master_seed.to_be_bytes(), &label),
            signer_id,
        }
    }

    /// The signer's id (the "public key" lookup handle).
    pub fn signer_id(&self) -> u64 {
        self.signer_id
    }

    /// Signs `msg`.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        Signature(hmac_sha256(&self.secret, msg))
    }

    /// Verifies `sig` over `msg`. In a real deployment this would use the
    /// public key; here the handle embeds the secret (simulation only).
    pub fn verify(&self, msg: &[u8], sig: &Signature) -> bool {
        self.sign(msg) == *sig
    }
}

impl fmt::Debug for SigKeypair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SigKeypair(signer={})", self.signer_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = SigKeypair::derive(3, 17);
        let sig = kp.sign(b"payload");
        assert!(kp.verify(b"payload", &sig));
        assert!(!kp.verify(b"payloae", &sig));
        assert_eq!(kp.signer_id(), 17);
    }

    #[test]
    fn distinct_signers_distinct_sigs() {
        let a = SigKeypair::derive(3, 1);
        let b = SigKeypair::derive(3, 2);
        assert_ne!(a.sign(b"m"), b.sign(b"m"));
        assert!(!b.verify(b"m", &a.sign(b"m")));
    }

    #[test]
    fn cost_model_matches_paper_claim() {
        // "MAC calculations are three orders of magnitude faster than
        // digital signature calculations" (§3).
        assert_eq!(SIGN_COST_US / MAC_COMPUTE_COST_US, 1000);
    }

    #[test]
    fn signature_wire_roundtrip() {
        let kp = SigKeypair::derive(1, 1);
        let sig = kp.sign(b"x");
        assert_eq!(Signature::from_bytes(*sig.as_bytes()), sig);
        assert!(format!("{sig:?}").starts_with("Signature("));
        assert_eq!(format!("{kp:?}"), "SigKeypair(signer=1)");
    }
}
