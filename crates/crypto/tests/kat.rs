//! Known-answer tests for the crypto substrate.
//!
//! SHA-256 vectors come from FIPS 180-4 (via the NIST examples and the
//! classic `abc` / two-block / million-`a` inputs); HMAC-SHA-256 vectors are
//! RFC 4231 test cases 1–7. These pin the primitives bit-for-bit so future
//! refactors of the hot hashing paths cannot silently change semantics.

use pws_crypto::hmac::{hmac_sha256, HmacSha256};
use pws_crypto::sha256::Sha256;
use pws_crypto::{sha256, Authenticator, KeyTable, Mac, MacKey, Principal};

fn unhex(s: &str) -> Vec<u8> {
    assert!(s.len().is_multiple_of(2), "odd hex literal");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("hex digit"))
        .collect()
}

fn hex32(bytes: &[u8; 32]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

// --- SHA-256, FIPS 180-4 -------------------------------------------------

#[test]
fn sha256_empty_input() {
    assert_eq!(
        hex32(&sha256(b"").0),
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    );
}

#[test]
fn sha256_abc() {
    assert_eq!(
        hex32(&sha256(b"abc").0),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    );
}

#[test]
fn sha256_two_block_message() {
    assert_eq!(
        hex32(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").0),
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    );
}

#[test]
fn sha256_four_block_message() {
    let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
                ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
    assert_eq!(
        hex32(&sha256(msg).0),
        "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
    );
}

#[test]
fn sha256_one_million_a() {
    let msg = vec![b'a'; 1_000_000];
    assert_eq!(
        hex32(&sha256(&msg).0),
        "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    );
}

#[test]
fn sha256_incremental_matches_vectors_across_split_points() {
    let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
    for split in [0, 1, 31, 32, 33, 55, msg.len()] {
        let mut h = Sha256::new();
        h.update(&msg[..split]);
        h.update(&msg[split..]);
        assert_eq!(h.finalize(), sha256(msg), "split at {split}");
    }
}

// --- HMAC-SHA-256, RFC 4231 ----------------------------------------------

struct HmacVector {
    key: Vec<u8>,
    data: Vec<u8>,
    /// Expected tag; test case 5 publishes only the first 128 bits.
    expect_prefix: &'static str,
}

fn rfc4231_vectors() -> Vec<HmacVector> {
    vec![
        // Test case 1
        HmacVector {
            key: vec![0x0b; 20],
            data: b"Hi There".to_vec(),
            expect_prefix: "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
        },
        // Test case 2: key shorter than block size
        HmacVector {
            key: b"Jefe".to_vec(),
            data: b"what do ya want for nothing?".to_vec(),
            expect_prefix: "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
        },
        // Test case 3: combined key/data longer than block size
        HmacVector {
            key: vec![0xaa; 20],
            data: vec![0xdd; 50],
            expect_prefix: "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe",
        },
        // Test case 4
        HmacVector {
            key: unhex("0102030405060708090a0b0c0d0e0f10111213141516171819"),
            data: vec![0xcd; 50],
            expect_prefix: "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b",
        },
        // Test case 5: truncated output (first 128 bits published)
        HmacVector {
            key: vec![0x0c; 20],
            data: b"Test With Truncation".to_vec(),
            expect_prefix: "a3b6167473100ee06e0c796c2955552b",
        },
        // Test case 6: key larger than block size
        HmacVector {
            key: vec![0xaa; 131],
            data: b"Test Using Larger Than Block-Size Key - Hash Key First".to_vec(),
            expect_prefix: "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
        },
        // Test case 7: key and data larger than block size
        HmacVector {
            key: vec![0xaa; 131],
            data: b"This is a test using a larger than block-size key and a larger \
                    than block-size data. The key needs to be hashed before being \
                    used by the HMAC algorithm."
                .to_vec(),
            expect_prefix: "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2",
        },
    ]
}

#[test]
fn hmac_sha256_rfc4231_vectors() {
    for (i, v) in rfc4231_vectors().iter().enumerate() {
        let tag = hmac_sha256(&v.key, &v.data);
        assert!(
            hex32(&tag).starts_with(v.expect_prefix),
            "RFC 4231 test case {}: got {}, want prefix {}",
            i + 1,
            hex32(&tag),
            v.expect_prefix
        );
    }
}

#[test]
fn hmac_incremental_matches_rfc4231() {
    for v in rfc4231_vectors() {
        let mut h = HmacSha256::new(&v.key);
        let split = v.data.len() / 2;
        h.update(&v.data[..split]);
        h.update(&v.data[split..]);
        assert_eq!(h.finalize(), hmac_sha256(&v.key, &v.data));
    }
}

// --- MAC / authenticator tamper detection --------------------------------

#[test]
fn mac_detects_any_single_bit_flip_in_message() {
    let key = MacKey::derive_from_label(7, b"driver0<->target3");
    let msg = b"PRE-PREPARE v=2 seq=9 digest=...".to_vec();
    let tag = key.compute(&msg);
    assert!(key.verify(&msg, &tag));
    for byte in 0..msg.len() {
        for bit in 0..8 {
            let mut tampered = msg.clone();
            tampered[byte] ^= 1 << bit;
            assert!(
                !key.verify(&tampered, &tag),
                "flip of byte {byte} bit {bit} went undetected"
            );
        }
    }
}

#[test]
fn mac_detects_tag_tampering_and_wrong_key() {
    let key = MacKey::derive_from_label(7, b"link-a");
    let other = MacKey::derive_from_label(7, b"link-b");
    let msg = b"reply bundle share";
    let tag = key.compute(msg);
    // A tag modified in any byte must not verify.
    let raw = *tag.as_bytes();
    for byte in 0..raw.len() {
        let mut bad = raw;
        bad[byte] ^= 0x80;
        assert!(!key.verify(msg, &Mac::from_bytes(bad)));
    }
    // A tag from a different pairwise key must not verify.
    assert!(!other.verify(msg, &tag));
}

#[test]
fn authenticator_rejects_tampered_message_and_foreign_receiver() {
    let mut keys = KeyTable::new(11);
    let sender = Principal::new(1, 0);
    let receivers: Vec<Principal> = (0..4).map(|i| Principal::new(2, i)).collect();
    let outsider = Principal::new(3, 0);
    let msg = b"agree on seq 17";

    let auth = Authenticator::compute(&mut keys, sender, &receivers, msg);
    for &r in &receivers {
        assert!(auth.verify(&mut keys, sender, r, msg));
        assert!(
            !auth.verify(&mut keys, sender, r, b"agree on seq 18"),
            "receiver {r:?} accepted a tampered message"
        );
    }
    // No entry for a principal outside the receiver set.
    assert!(!auth.verify(&mut keys, sender, outsider, msg));
    // An authenticator computed by a different sender must not verify.
    let forged = Authenticator::compute(&mut keys, outsider, &receivers, msg);
    assert!(!forged.verify(&mut keys, sender, receivers[0], msg));
}
