//! Online protocol invariant auditor.
//!
//! The auditor is an opt-in consumer of the observability event stream: it
//! never touches protocol state, so (like the recorder) it is a pure side
//! channel that cannot perturb scheduling, time, or randomness. Replicas
//! emit [`AuditEvent`]s describing what they just did; the auditor
//! cross-checks them against the protocol's safety invariants and records
//! a structured [`Violation`] when one breaks.
//!
//! Invariants checked (see ARCHITECTURE.md for provenance):
//!
//! 1. **Span phase monotonicity** — a request's ordered-path phases are
//!    first seen in lifecycle order (reported by the recorder, counted
//!    here).
//! 2. **Exactly-once execution** — per node incarnation, no
//!    `(origin, target_seq)` is delivered to the service twice.
//! 3. **Commit covered by a prepare certificate** — no batch commits in a
//!    group unless some replica first assembled a prepare certificate for
//!    that exact digest.
//! 4. **One batch per slot** — across all views and replicas of a group,
//!    a sequence number commits at most one batch digest. The same check
//!    on *accepted pre-prepares per view* detects an equivocating primary
//!    before any divergence can commit.
//! 5. **Checkpoint stability implies f+1 matching votes** — a replica may
//!    declare a checkpoint stable only after at least f+1 distinct
//!    replicas voted for that exact digest.
//! 6. **2PC decision agreement** — every participant's recorded decision
//!    for a transaction matches the coordinator's.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Counter key bumped once per recorded violation.
pub const AUDIT_VIOLATIONS_KEY: &str = "obs.audit.violations";

/// How the auditor reacts to a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditMode {
    /// Record violations (counter + report) and keep running.
    Record,
    /// Record, then panic on the first violation — under the simulator's
    /// panic trap this surfaces as a node panic plus a flight dump, so
    /// test suites fail loudly.
    Strict,
}

/// One protocol observation, emitted by a replica as it acts. Events carry
/// no group id — the drain point qualifies them with the emitting node's
/// group (and digests are folded to 64 bits; auditing needs inequality
/// detection, not collision resistance).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditEvent {
    /// A replica accepted (or, as primary, proposed) a pre-prepare.
    PrePrepare { view: u64, seq: u64, digest: u64 },
    /// A replica assembled a prepare certificate (2f matching prepares).
    Prepared { view: u64, seq: u64, digest: u64 },
    /// A replica committed a batch into its execution order.
    /// `via_transfer` marks slots installed by state transfer, which carry
    /// a checkpoint certificate instead of a local prepare certificate.
    Committed {
        seq: u64,
        digest: u64,
        via_transfer: bool,
    },
    /// A replica delivered an external request to the service
    /// (the exactly-once point).
    Executed { origin: u64, target_seq: u64 },
    /// A replica recorded a checkpoint vote from `voter`.
    CheckpointVote { seq: u64, digest: u64, voter: u64 },
    /// A replica declared a checkpoint stable.
    CheckpointStable { seq: u64, digest: u64 },
    /// A 2PC role recorded its decision for a transaction.
    TxnDecision {
        txn: u64,
        commit: bool,
        coordinator: bool,
    },
    /// The node discarded execution state (wipe, speculative rollback):
    /// its exactly-once tracking starts a new incarnation.
    NodeReset,
    /// The recorder saw a request-span phase recorded out of lifecycle
    /// order (reported by the span machinery, judged here).
    PhaseRegression { origin: u64, counter: u64 },
}

/// A recorded invariant violation.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Simulated time of the offending event, in microseconds.
    pub at_us: u64,
    /// Group the event belonged to.
    pub group: u32,
    /// Node that emitted the offending event.
    pub node: u64,
    /// Which invariant broke (stable short name, e.g. `slot-divergence`).
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>10}us] g{} n{} {}: {}",
            self.at_us, self.group, self.node, self.invariant, self.detail
        )
    }
}

#[derive(Debug, Default)]
struct GroupState {
    /// Fault bound `f`, when registered.
    f: Option<u64>,
    /// First accepted pre-prepare digest per (view, seq).
    pre_prepares: BTreeMap<(u64, u64), u64>,
    /// Prepare certificates seen: digests per seq (any view, any node).
    prepared: BTreeMap<u64, BTreeSet<u64>>,
    /// First committed digest per seq.
    committed: BTreeMap<u64, u64>,
    /// Distinct checkpoint voters per (seq, digest).
    ckpt_votes: BTreeMap<(u64, u64), BTreeSet<u64>>,
    /// Highest stable checkpoint seq the group reached. Everything at or
    /// below it is certified by 2f+1 matching votes, so late sightings
    /// from lagging replicas (a commit whose prepare ledger was pruned, a
    /// stale stability declaration) are covered, not violations.
    stable_floor: u64,
}

/// The auditor: per-group protocol ledgers plus global 2PC and
/// exactly-once ledgers, fed from the obs event stream.
#[derive(Debug)]
pub struct Auditor {
    mode: AuditMode,
    groups: BTreeMap<u32, GroupState>,
    /// Exactly-once ledger: (node, incarnation) → delivered
    /// (origin, target_seq) pairs.
    delivered: BTreeMap<(u64, u64), BTreeSet<(u64, u64)>>,
    /// Node incarnation counters (bumped by `NodeReset`).
    incarnations: BTreeMap<u64, u64>,
    /// Coordinator decision per transaction hash.
    txn_decisions: BTreeMap<u64, bool>,
    violations: Vec<Violation>,
    events_seen: u64,
}

/// Violations kept with full detail; later ones only counted.
const VIOLATION_DETAIL_CAP: usize = 256;

impl Auditor {
    /// A new auditor in the given mode.
    pub fn new(mode: AuditMode) -> Self {
        Auditor {
            mode,
            groups: BTreeMap::new(),
            delivered: BTreeMap::new(),
            incarnations: BTreeMap::new(),
            txn_decisions: BTreeMap::new(),
            violations: Vec::new(),
            events_seen: 0,
        }
    }

    /// The configured reaction mode.
    pub fn mode(&self) -> AuditMode {
        self.mode
    }

    /// Registers a group's fault bound `f` (needed by the checkpoint
    /// stability check; groups without a registered bound skip it).
    pub fn register_group(&mut self, group: u32, f: u64) {
        self.groups.entry(group).or_default().f = Some(f);
    }

    /// Number of events ingested so far.
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }

    /// Total violations recorded (including ones past the detail cap).
    pub fn violation_count(&self) -> u64 {
        self.violations.len() as u64
    }

    /// The recorded violations (detail capped).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Ingests one event. Returns `true` when it violated an invariant
    /// (the caller bumps [`AUDIT_VIOLATIONS_KEY`], captures a flight dump
    /// on the first, and panics in [`AuditMode::Strict`]).
    pub fn ingest(&mut self, group: u32, node: u64, at_us: u64, ev: AuditEvent) -> bool {
        self.events_seen += 1;
        let fail = match ev {
            AuditEvent::PrePrepare { view, seq, digest } => {
                let g = self.groups.entry(group).or_default();
                match g.pre_prepares.get(&(view, seq)) {
                    Some(&first) if first != digest => Some((
                        "pre-prepare-equivocation",
                        format!(
                            "view {view} seq {seq}: accepted digest {digest:#x} \
                             conflicts with {first:#x} — primary equivocated"
                        ),
                    )),
                    Some(_) => None,
                    None => {
                        g.pre_prepares.insert((view, seq), digest);
                        None
                    }
                }
            }
            AuditEvent::Prepared {
                view: _,
                seq,
                digest,
            } => {
                let g = self.groups.entry(group).or_default();
                g.prepared.entry(seq).or_default().insert(digest);
                None
            }
            AuditEvent::Committed {
                seq,
                digest,
                via_transfer,
            } => {
                let g = self.groups.entry(group).or_default();
                let mut v = None;
                if !via_transfer
                    && seq > g.stable_floor
                    && !g.prepared.get(&seq).is_some_and(|d| d.contains(&digest))
                {
                    v = Some((
                        "commit-without-prepare",
                        format!(
                            "seq {seq} committed digest {digest:#x} with no \
                             prepare certificate seen for it"
                        ),
                    ));
                }
                match g.committed.get(&seq) {
                    Some(&first) if first != digest => {
                        v = Some((
                            "slot-divergence",
                            format!(
                                "seq {seq}: committed digest {digest:#x} \
                                 conflicts with {first:#x}"
                            ),
                        ));
                    }
                    Some(_) => {}
                    None => {
                        g.committed.insert(seq, digest);
                    }
                }
                v
            }
            AuditEvent::Executed { origin, target_seq } => {
                let inc = self.incarnations.get(&node).copied().unwrap_or(0);
                let ledger = self.delivered.entry((node, inc)).or_default();
                if !ledger.insert((origin, target_seq)) {
                    Some((
                        "double-delivery",
                        format!(
                            "origin {origin} target_seq {target_seq} delivered \
                             twice in one incarnation"
                        ),
                    ))
                } else {
                    None
                }
            }
            AuditEvent::CheckpointVote { seq, digest, voter } => {
                let g = self.groups.entry(group).or_default();
                g.ckpt_votes.entry((seq, digest)).or_default().insert(voter);
                None
            }
            AuditEvent::CheckpointStable { seq, digest } => {
                let g = self.groups.entry(group).or_default();
                if seq < g.stable_floor {
                    // A lagging replica catching up to an already-certified
                    // boundary: its votes were pruned when the group moved
                    // past it, not evidence of under-voted stability.
                    return false;
                }
                let votes = g
                    .ckpt_votes
                    .get(&(seq, digest))
                    .map(|v| v.len() as u64)
                    .unwrap_or(0);
                let need = g.f.map(|f| f + 1).unwrap_or(1);
                let fired = (votes < need).then(|| {
                    (
                        "understable-checkpoint",
                        format!(
                            "seq {seq} declared stable on {votes} matching \
                             votes for {digest:#x}; need {need}"
                        ),
                    )
                });
                // Stability is a group-global floor: everything at or
                // below it is certified, so prune the per-seq ledgers.
                if fired.is_none() {
                    g.stable_floor = g.stable_floor.max(seq);
                    g.pre_prepares.retain(|&(_, s), _| s > seq);
                    g.prepared.retain(|&s, _| s > seq);
                    g.committed.retain(|&s, _| s > seq);
                    g.ckpt_votes.retain(|&(s, _), _| s >= seq);
                }
                fired
            }
            AuditEvent::TxnDecision {
                txn,
                commit,
                coordinator,
            } => {
                if coordinator {
                    match self.txn_decisions.get(&txn) {
                        Some(&first) if first != commit => Some((
                            "txn-coordinator-flip",
                            format!(
                                "txn {txn:#x}: coordinator decided \
                                 commit={commit} after commit={first}"
                            ),
                        )),
                        Some(_) => None,
                        None => {
                            self.txn_decisions.insert(txn, commit);
                            None
                        }
                    }
                } else {
                    match self.txn_decisions.get(&txn) {
                        Some(&coord) if coord != commit => Some((
                            "txn-decision-mismatch",
                            format!(
                                "txn {txn:#x}: participant decided \
                                 commit={commit}, coordinator decided \
                                 commit={coord}"
                            ),
                        )),
                        _ => None,
                    }
                }
            }
            AuditEvent::NodeReset => {
                let inc = self.incarnations.get(&node).copied().unwrap_or(0);
                // The old incarnation's ledger can never fire again.
                self.delivered.remove(&(node, inc));
                self.incarnations.insert(node, inc + 1);
                None
            }
            AuditEvent::PhaseRegression { origin, counter } => Some((
                "span-phase-regression",
                format!(
                    "request span origin {origin} counter {counter} recorded \
                     an ordered-path phase out of lifecycle order"
                ),
            )),
        };
        match fail {
            Some((invariant, detail)) => {
                if self.violations.len() < VIOLATION_DETAIL_CAP {
                    self.violations.push(Violation {
                        at_us,
                        group,
                        node,
                        invariant,
                        detail,
                    });
                } else {
                    // Past the cap, keep counting without the detail.
                    self.violations.push(Violation {
                        at_us,
                        group,
                        node,
                        invariant,
                        detail: String::new(),
                    });
                }
                true
            }
            None => false,
        }
    }

    /// The structured report: one line per violation plus a summary
    /// header. Empty report ⇒ "audit clean".
    pub fn report(&self) -> String {
        let mut out = format!(
            "== protocol audit: {} events, {} violation(s) ==\n",
            self.events_seen,
            self.violations.len()
        );
        if self.violations.is_empty() {
            out.push_str("audit clean\n");
            return out;
        }
        let mut by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
        for v in &self.violations {
            *by_kind.entry(v.invariant).or_insert(0) += 1;
        }
        for (kind, n) in &by_kind {
            out.push_str(&format!("  {kind}: {n}\n"));
        }
        for v in self.violations.iter().take(VIOLATION_DETAIL_CAP) {
            out.push_str(&format!("{v}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn auditor() -> Auditor {
        let mut a = Auditor::new(AuditMode::Record);
        a.register_group(1, 1);
        a
    }

    #[test]
    fn clean_ordered_flow_passes() {
        let mut a = auditor();
        assert!(!a.ingest(
            1,
            0,
            10,
            AuditEvent::PrePrepare {
                view: 0,
                seq: 1,
                digest: 0xAA
            }
        ));
        assert!(!a.ingest(
            1,
            1,
            11,
            AuditEvent::PrePrepare {
                view: 0,
                seq: 1,
                digest: 0xAA
            }
        ));
        assert!(!a.ingest(
            1,
            0,
            12,
            AuditEvent::Prepared {
                view: 0,
                seq: 1,
                digest: 0xAA
            }
        ));
        assert!(!a.ingest(
            1,
            0,
            13,
            AuditEvent::Committed {
                seq: 1,
                digest: 0xAA,
                via_transfer: false
            }
        ));
        assert!(!a.ingest(
            1,
            0,
            14,
            AuditEvent::Executed {
                origin: 7,
                target_seq: 1
            }
        ));
        assert_eq!(a.violation_count(), 0);
        assert!(a.report().contains("audit clean"));
    }

    #[test]
    fn equivocating_pre_prepare_fires() {
        let mut a = auditor();
        a.ingest(
            1,
            0,
            10,
            AuditEvent::PrePrepare {
                view: 0,
                seq: 3,
                digest: 0xAA,
            },
        );
        assert!(a.ingest(
            1,
            2,
            11,
            AuditEvent::PrePrepare {
                view: 0,
                seq: 3,
                digest: 0xBB
            }
        ));
        assert_eq!(a.violations()[0].invariant, "pre-prepare-equivocation");
    }

    #[test]
    fn commit_without_prepare_fires_but_transfer_is_exempt() {
        let mut a = auditor();
        assert!(a.ingest(
            1,
            0,
            10,
            AuditEvent::Committed {
                seq: 5,
                digest: 0xCC,
                via_transfer: false
            }
        ));
        assert!(!a.ingest(
            1,
            1,
            11,
            AuditEvent::Committed {
                seq: 6,
                digest: 0xDD,
                via_transfer: true
            }
        ));
    }

    #[test]
    fn slot_divergence_fires_across_views() {
        let mut a = auditor();
        a.ingest(
            1,
            0,
            10,
            AuditEvent::Prepared {
                view: 0,
                seq: 9,
                digest: 0xAA,
            },
        );
        a.ingest(
            1,
            0,
            11,
            AuditEvent::Prepared {
                view: 1,
                seq: 9,
                digest: 0xBB,
            },
        );
        a.ingest(
            1,
            0,
            12,
            AuditEvent::Committed {
                seq: 9,
                digest: 0xAA,
                via_transfer: false,
            },
        );
        assert!(a.ingest(
            1,
            3,
            13,
            AuditEvent::Committed {
                seq: 9,
                digest: 0xBB,
                via_transfer: false
            }
        ));
        assert_eq!(a.violations()[0].invariant, "slot-divergence");
    }

    #[test]
    fn double_delivery_fires_until_node_reset() {
        let mut a = auditor();
        assert!(!a.ingest(
            1,
            0,
            10,
            AuditEvent::Executed {
                origin: 7,
                target_seq: 4
            }
        ));
        assert!(a.ingest(
            1,
            0,
            11,
            AuditEvent::Executed {
                origin: 7,
                target_seq: 4
            }
        ));
        // A wipe/rollback starts a new incarnation: re-delivery is legal.
        a.ingest(1, 0, 12, AuditEvent::NodeReset);
        assert!(!a.ingest(
            1,
            0,
            13,
            AuditEvent::Executed {
                origin: 7,
                target_seq: 4
            }
        ));
        // …but only for the node that reset.
        assert!(!a.ingest(
            1,
            1,
            14,
            AuditEvent::Executed {
                origin: 7,
                target_seq: 4
            }
        ));
        assert!(a.ingest(
            1,
            1,
            15,
            AuditEvent::Executed {
                origin: 7,
                target_seq: 4
            }
        ));
    }

    #[test]
    fn checkpoint_stability_needs_f_plus_one_votes() {
        let mut a = auditor();
        a.ingest(
            1,
            0,
            10,
            AuditEvent::CheckpointVote {
                seq: 8,
                digest: 0xEE,
                voter: 0,
            },
        );
        assert!(a.ingest(
            1,
            0,
            11,
            AuditEvent::CheckpointStable {
                seq: 8,
                digest: 0xEE
            }
        ));
        a.ingest(
            1,
            0,
            12,
            AuditEvent::CheckpointVote {
                seq: 8,
                digest: 0xEE,
                voter: 1,
            },
        );
        assert!(!a.ingest(
            1,
            0,
            13,
            AuditEvent::CheckpointStable {
                seq: 8,
                digest: 0xEE
            }
        ));
    }

    #[test]
    fn stable_checkpoint_prunes_ledgers_below_it() {
        let mut a = auditor();
        a.ingest(
            1,
            0,
            1,
            AuditEvent::PrePrepare {
                view: 0,
                seq: 2,
                digest: 0xAA,
            },
        );
        a.ingest(
            1,
            0,
            2,
            AuditEvent::Prepared {
                view: 0,
                seq: 2,
                digest: 0xAA,
            },
        );
        a.ingest(
            1,
            0,
            3,
            AuditEvent::Committed {
                seq: 2,
                digest: 0xAA,
                via_transfer: false,
            },
        );
        for voter in 0..2 {
            a.ingest(
                1,
                0,
                4,
                AuditEvent::CheckpointVote {
                    seq: 10,
                    digest: 0xFF,
                    voter,
                },
            );
        }
        a.ingest(
            1,
            0,
            5,
            AuditEvent::CheckpointStable {
                seq: 10,
                digest: 0xFF,
            },
        );
        let g = a.groups.get(&1).unwrap();
        assert!(g.pre_prepares.is_empty() && g.prepared.is_empty() && g.committed.is_empty());
    }

    #[test]
    fn lagging_replica_below_the_stable_floor_is_clean() {
        let mut a = auditor();
        a.ingest(
            1,
            0,
            1,
            AuditEvent::Prepared {
                view: 0,
                seq: 32,
                digest: 0xAA,
            },
        );
        for voter in 0..2 {
            a.ingest(
                1,
                0,
                2,
                AuditEvent::CheckpointVote {
                    seq: 32,
                    digest: 0xFF,
                    voter,
                },
            );
        }
        a.ingest(
            1,
            0,
            3,
            AuditEvent::CheckpointStable {
                seq: 32,
                digest: 0xFF,
            },
        );
        // A straggler commits seq 32 after the group moved past it: the
        // prepare ledger is pruned, but the stable floor certifies it.
        assert!(!a.ingest(
            1,
            3,
            4,
            AuditEvent::Committed {
                seq: 32,
                digest: 0xAA,
                via_transfer: false
            }
        ));
        // The straggler's own stale stability declaration below the floor
        // is equally covered (its votes are long pruned).
        for voter in 0..2 {
            a.ingest(
                1,
                0,
                5,
                AuditEvent::CheckpointVote {
                    seq: 48,
                    digest: 0xEE,
                    voter,
                },
            );
        }
        a.ingest(
            1,
            0,
            6,
            AuditEvent::CheckpointStable {
                seq: 48,
                digest: 0xEE,
            },
        );
        assert!(!a.ingest(
            1,
            3,
            7,
            AuditEvent::CheckpointStable {
                seq: 32,
                digest: 0xFF
            }
        ));
        // Above the floor the invariant still bites.
        assert!(a.ingest(
            1,
            2,
            8,
            AuditEvent::Committed {
                seq: 60,
                digest: 0xDD,
                via_transfer: false
            }
        ));
        assert_eq!(a.violations()[0].invariant, "commit-without-prepare");
    }

    #[test]
    fn txn_participant_must_match_coordinator() {
        let mut a = auditor();
        a.ingest(
            1,
            0,
            10,
            AuditEvent::TxnDecision {
                txn: 0x99,
                commit: true,
                coordinator: true,
            },
        );
        assert!(!a.ingest(
            2,
            4,
            11,
            AuditEvent::TxnDecision {
                txn: 0x99,
                commit: true,
                coordinator: false
            }
        ));
        assert!(a.ingest(
            2,
            5,
            12,
            AuditEvent::TxnDecision {
                txn: 0x99,
                commit: false,
                coordinator: false
            }
        ));
        assert_eq!(a.violations()[0].invariant, "txn-decision-mismatch");
    }

    #[test]
    fn report_groups_by_kind() {
        let mut a = auditor();
        a.ingest(
            1,
            0,
            10,
            AuditEvent::Executed {
                origin: 1,
                target_seq: 1,
            },
        );
        a.ingest(
            1,
            0,
            11,
            AuditEvent::Executed {
                origin: 1,
                target_seq: 1,
            },
        );
        a.ingest(
            1,
            0,
            12,
            AuditEvent::PhaseRegression {
                origin: 3,
                counter: 9,
            },
        );
        let r = a.report();
        assert!(r.contains("2 violation(s)"));
        assert!(r.contains("double-delivery: 1"));
        assert!(r.contains("span-phase-regression: 1"));
    }
}
