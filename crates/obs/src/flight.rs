//! The flight recorder: a bounded per-node ring buffer of recent protocol
//! events.
//!
//! Unlike spans, the flight recorder is always on — its events are rare
//! (view changes, checkpoint boundaries, state-transfer verdicts,
//! rejections) and its memory bounded, and it must already be populated
//! when the event nobody planned for happens. On a node panic the
//! simulation dumps the panicking node's ring, turning a dead soak into a
//! readable timeline of what the replica was doing in its last moments.
//!
//! **Trust note:** flight events are a *local* debugging aid, recorded by
//! each replica about itself with no quorum behind them. A Byzantine
//! replica's ring describes whatever it wants; never feed flight-recorder
//! content back into protocol decisions.

use std::collections::VecDeque;
use std::fmt;

/// Default per-node ring capacity.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// What kind of protocol event a flight record describes. The two payload
/// slots `a`/`b` of [`FlightEvent`] are interpreted per kind (see
/// [`FlightEvent`]'s `Display`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A view change started (`a` = the view being abandoned, `b` = the
    /// proposed new view).
    ViewChangeStarted,
    /// The replica entered a view (`a` = view).
    EnteredView,
    /// A checkpoint snapshot was taken (`a` = seq, `b` = snapshot bytes).
    CheckpointTaken,
    /// A checkpoint became stable (`a` = seq).
    CheckpointStable,
    /// The replica began fetching state (`a` = its last stable seq).
    StateFetchStarted,
    /// A fetched checkpoint was installed (`a` = seq, `b` = pages fetched).
    StateInstalled,
    /// A state-transfer response failed verification (`a` = seq).
    StateRejected,
    /// A transferred page failed verification against the certified
    /// manifest root (`a` = page index).
    PageRejected,
    /// The replica wiped its state (`a` = 1 for cold — page cache lost).
    Wiped,
    /// A proactive-recovery restart began.
    ProactiveRestart,
    /// A read-only fast-path request was refused by the gate.
    RoRefused,
    /// A speculative batch was rolled back (`a` = first seq discarded).
    SpecRolledBack,
    /// A cross-shard transaction record was ordered (`a` = txn id).
    TxnRecord,
    /// A reshard record was ordered (`a` = shard, `b` = new shard count).
    ReshardRecord,
    /// The node panicked (recorded by the simulation as the final entry).
    NodePanic,
}

impl FlightKind {
    /// The event's dump/export name.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::ViewChangeStarted => "view-change-started",
            FlightKind::EnteredView => "entered-view",
            FlightKind::CheckpointTaken => "checkpoint-taken",
            FlightKind::CheckpointStable => "checkpoint-stable",
            FlightKind::StateFetchStarted => "state-fetch-started",
            FlightKind::StateInstalled => "state-installed",
            FlightKind::StateRejected => "state-rejected",
            FlightKind::PageRejected => "page-rejected",
            FlightKind::Wiped => "wiped",
            FlightKind::ProactiveRestart => "proactive-restart",
            FlightKind::RoRefused => "ro-refused",
            FlightKind::SpecRolledBack => "spec-rolled-back",
            FlightKind::TxnRecord => "txn-record",
            FlightKind::ReshardRecord => "reshard-record",
            FlightKind::NodePanic => "node-panic",
        }
    }

    /// Names for the two payload slots, for rendering (`None` = unused).
    fn slots(self) -> (Option<&'static str>, Option<&'static str>) {
        match self {
            FlightKind::ViewChangeStarted => (Some("from_view"), Some("to_view")),
            FlightKind::EnteredView => (Some("view"), None),
            FlightKind::CheckpointTaken => (Some("seq"), Some("bytes")),
            FlightKind::CheckpointStable => (Some("seq"), None),
            FlightKind::StateFetchStarted => (Some("stable_seq"), None),
            FlightKind::StateInstalled => (Some("seq"), Some("pages")),
            FlightKind::StateRejected => (Some("seq"), None),
            FlightKind::PageRejected => (Some("page"), None),
            FlightKind::Wiped => (Some("cold"), None),
            FlightKind::ProactiveRestart => (None, None),
            FlightKind::RoRefused => (None, None),
            FlightKind::SpecRolledBack => (Some("from_seq"), None),
            FlightKind::TxnRecord => (Some("txn"), None),
            FlightKind::ReshardRecord => (Some("shard"), Some("new_count")),
            FlightKind::NodePanic => (None, None),
        }
    }
}

/// One recorded protocol event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Sim-time of the event, microseconds.
    pub at_us: u64,
    /// The recording node.
    pub node: u64,
    /// What happened.
    pub kind: FlightKind,
    /// First payload slot (kind-specific, see [`FlightKind`]).
    pub a: u64,
    /// Second payload slot.
    pub b: u64,
}

impl fmt::Display for FlightEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={}.{:06}s node={} {}",
            self.at_us / 1_000_000,
            self.at_us % 1_000_000,
            self.node,
            self.kind.name()
        )?;
        let (sa, sb) = self.kind.slots();
        if let Some(n) = sa {
            write!(f, " {n}={}", self.a)?;
        }
        if let Some(n) = sb {
            write!(f, " {n}={}", self.b)?;
        }
        Ok(())
    }
}

/// A bounded ring of [`FlightEvent`]s: pushing beyond capacity evicts the
/// oldest entry. Tracks the total ever pushed so a dump can say how much
/// history was dropped.
#[derive(Debug, Clone)]
pub struct FlightRing {
    cap: usize,
    buf: VecDeque<FlightEvent>,
    total: u64,
}

impl FlightRing {
    /// An empty ring holding at most `cap` events (min 1).
    pub fn new(cap: usize) -> Self {
        FlightRing {
            cap: cap.max(1),
            buf: VecDeque::new(),
            total: 0,
        }
    }

    /// Appends an event, evicting the oldest if full.
    pub fn push(&mut self, ev: FlightEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
        }
        self.buf.push_back(ev);
        self.total += 1;
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &FlightEvent> {
        self.buf.iter()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events ever pushed (≥ `len()`; the difference was evicted).
    pub fn total_recorded(&self) -> u64 {
        self.total
    }

    /// Renders the ring as a human-readable timeline, oldest first.
    pub fn dump(&self, out: &mut String) {
        let dropped = self.total - self.buf.len() as u64;
        if dropped > 0 {
            out.push_str(&format!("  ... {dropped} earlier event(s) evicted\n"));
        }
        for ev in &self.buf {
            out.push_str("  ");
            out.push_str(&ev.to_string());
            out.push('\n');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(at_us: u64, kind: FlightKind, a: u64) -> FlightEvent {
        FlightEvent {
            at_us,
            node: 3,
            kind,
            a,
            b: 0,
        }
    }

    #[test]
    fn ring_bounds_and_tracks_evictions() {
        let mut r = FlightRing::new(4);
        for i in 0..10 {
            r.push(ev(i, FlightKind::EnteredView, i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.capacity(), 4);
        assert_eq!(r.total_recorded(), 10);
        let views: Vec<u64> = r.events().map(|e| e.a).collect();
        assert_eq!(views, vec![6, 7, 8, 9], "oldest evicted first");
        let mut s = String::new();
        r.dump(&mut s);
        assert!(s.contains("6 earlier event(s) evicted"));
        assert!(s.contains("entered-view view=9"));
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let mut r = FlightRing::new(0);
        r.push(ev(1, FlightKind::Wiped, 1));
        r.push(ev(2, FlightKind::Wiped, 0));
        assert_eq!(r.len(), 1);
        assert_eq!(r.events().next().unwrap().at_us, 2);
    }

    #[test]
    fn display_names_slots_per_kind() {
        let e = FlightEvent {
            at_us: 1_500_000,
            node: 7,
            kind: FlightKind::ViewChangeStarted,
            a: 2,
            b: 3,
        };
        assert_eq!(
            e.to_string(),
            "t=1.500000s node=7 view-change-started from_view=2 to_view=3"
        );
        let e = FlightEvent {
            at_us: 0,
            node: 0,
            kind: FlightKind::ProactiveRestart,
            a: 9,
            b: 9,
        };
        assert_eq!(e.to_string(), "t=0.000000s node=0 proactive-restart");
    }
}
