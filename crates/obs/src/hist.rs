//! Fixed-bucket log-scale histograms with a deterministic layout.
//!
//! The bucket grid is fixed at construction-independent positions (HDR
//! style: power-of-two octaves, each split into [`SUB_BUCKETS`] linear
//! sub-buckets), so recording the same multiset of samples in *any* order
//! produces bit-identical counts and therefore identical percentile reads
//! — unlike a raw `Vec<f64>` dump, whose percentile estimates are exact
//! but whose memory grows with the sample count and whose debug output
//! leaks insertion order.

/// Sub-buckets per power-of-two octave. 8 bounds the relative quantile
/// error at `1/(2·8) ≈ 6%`.
pub const SUB_BUCKETS: usize = 8;
const SUB_BITS: u32 = 3;

/// Smallest supported binary exponent: values below `2^MIN_EXP` land in
/// the underflow bucket. `2^-20 ≈ 1e-6`, far below one microsecond when
/// samples are milliseconds.
const MIN_EXP: i32 = -20;
/// Largest supported binary exponent: values at or above `2^(MAX_EXP+1)`
/// land in the overflow bucket. `2^43 ≈ 8.8e12`.
const MAX_EXP: i32 = 43;

const OCTAVES: usize = (MAX_EXP - MIN_EXP + 1) as usize;
/// Underflow bucket + octave grid + overflow bucket.
const NUM_BUCKETS: usize = 2 + OCTAVES * SUB_BUCKETS;

/// A fixed-bucket log-scale histogram over non-negative `f64` samples.
///
/// Tracks exact `count`/`sum`/`min`/`max` alongside the bucket counts, so
/// [`Histogram::max`] and [`Histogram::mean`] are exact while quantiles
/// are bucket-resolution approximations (≈6% relative error), clamped to
/// the exact `[min, max]` range.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

fn bucket_index(v: f64) -> usize {
    if !v.is_finite() || v <= 0.0 {
        return 0; // underflow (also catches NaN deterministically)
    }
    let bits = v.to_bits();
    let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
    if exp < MIN_EXP {
        return 0;
    }
    if exp > MAX_EXP {
        return NUM_BUCKETS - 1;
    }
    let sub = ((bits >> (52 - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
    1 + (exp - MIN_EXP) as usize * SUB_BUCKETS + sub
}

/// Lower bound of bucket `i` (0.0 for the underflow bucket).
fn bucket_lo(i: usize) -> f64 {
    if i == 0 {
        return 0.0;
    }
    if i >= NUM_BUCKETS - 1 {
        return exp2i(MAX_EXP + 1);
    }
    let g = i - 1;
    let exp = MIN_EXP + (g / SUB_BUCKETS) as i32;
    let sub = (g % SUB_BUCKETS) as f64;
    exp2i(exp) * (1.0 + sub / SUB_BUCKETS as f64)
}

/// Exclusive upper bound of bucket `i`.
fn bucket_hi(i: usize) -> f64 {
    if i >= NUM_BUCKETS - 1 {
        return f64::INFINITY;
    }
    bucket_lo(i + 1)
}

/// `2^e` for integer `e`, without floating-point `powf`.
fn exp2i(e: i32) -> f64 {
    f64::from_bits(((e + 1023) as u64) << 52)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. Negative and non-finite values land in the
    /// underflow bucket (and are clamped to 0.0 for the exact min/max/sum
    /// tracking) so a stray NaN cannot poison percentile reads.
    pub fn record(&mut self, v: f64) {
        let clean = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += clean;
        if clean < self.min {
            self.min = clean;
        }
        if clean > self.max {
            self.max = clean;
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Exact mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Exact smallest sample (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Exact largest sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`), bucket-resolution approximate,
    /// clamped into the exact `[min, max]` range. 0.0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the sample we want, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= rank {
                let lo = bucket_lo(i);
                let hi = bucket_hi(i);
                let rep = if hi.is_finite() { (lo + hi) / 2.0 } else { lo };
                return rep.clamp(self.min, self.max);
            }
        }
        self.max()
    }

    /// Median.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Merges another histogram's samples into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            if other.min < self.min {
                self.min = other.min;
            }
            if other.max > self.max {
                self.max = other.max;
            }
        }
    }

    /// Iterates over the non-empty buckets as `(lo, hi, count)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (f64, f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (bucket_lo(i), bucket_hi(i), c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert!(h.is_empty());
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.p50(), 0.0);
        assert_eq!(h.nonzero_buckets().count(), 0);
    }

    #[test]
    fn exact_stats_and_approximate_quantiles() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 1000.0);
        assert!((h.mean() - 500.5).abs() < 1e-9);
        // ≈6% relative bucket error.
        assert!((h.p50() - 500.0).abs() / 500.0 < 0.07, "p50={}", h.p50());
        assert!((h.p95() - 950.0).abs() / 950.0 < 0.07, "p95={}", h.p95());
        assert!((h.p99() - 990.0).abs() / 990.0 < 0.07, "p99={}", h.p99());
    }

    #[test]
    fn hostile_values_land_in_underflow() {
        let mut h = Histogram::new();
        h.record(-5.0);
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        h.record(0.0);
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), 0.0);
        assert_eq!(h.p99(), 0.0);
    }

    #[test]
    fn extreme_magnitudes_clamp_to_edge_buckets() {
        let mut h = Histogram::new();
        h.record(1e-12); // below 2^-20
        h.record(1e300); // above 2^44
        assert_eq!(h.count(), 2);
        let buckets: Vec<_> = h.nonzero_buckets().collect();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].0, 0.0, "underflow bucket starts at 0");
        assert!(buckets[1].1.is_infinite(), "overflow bucket is unbounded");
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let xs: Vec<f64> = (1..=50).map(|i| i as f64 * 0.37).collect();
        let mut whole = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for (i, &x) in xs.iter().enumerate() {
            whole.record(x);
            if i % 2 == 0 {
                a.record(x);
            } else {
                b.record(x);
            }
        }
        a.merge(&b);
        assert_eq!(
            a.nonzero_buckets().collect::<Vec<_>>(),
            whole.nonzero_buckets().collect::<Vec<_>>()
        );
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert!((a.sum() - whole.sum()).abs() < 1e-9);
    }

    #[test]
    fn bucket_bounds_are_monotone_and_cover() {
        let mut prev = -1.0;
        for i in 0..NUM_BUCKETS {
            let lo = bucket_lo(i);
            assert!(lo > prev, "bucket {i} lo {lo} after {prev}");
            assert!(bucket_hi(i) > lo);
            prev = lo;
        }
    }

    /// Fills one histogram in the given order and one after a
    /// deterministic seed-driven shuffle; every *read* (bucket counts,
    /// count, min/max, all percentiles) must be bit-identical. Only `sum`
    /// (and thus `mean`) is excluded: f64 addition is not associative, so
    /// it is exact but order-sensitive in the last ulp.
    fn order_invariance_holds(mut xs: Vec<f64>, seed: u64) -> bool {
        let mut fwd = Histogram::new();
        for &x in &xs {
            fwd.record(x);
        }
        let mut s = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(1);
        for i in (1..xs.len()).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            xs.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let mut shuf = Histogram::new();
        for &x in &xs {
            shuf.record(x);
        }
        let q = |h: &Histogram| -> Vec<u64> {
            (0..=20)
                .map(|i| h.quantile(i as f64 / 20.0).to_bits())
                .collect()
        };
        fwd.nonzero_buckets().collect::<Vec<_>>() == shuf.nonzero_buckets().collect::<Vec<_>>()
            && fwd.count() == shuf.count()
            && fwd.min().to_bits() == shuf.min().to_bits()
            && fwd.max().to_bits() == shuf.max().to_bits()
            && q(&fwd) == q(&shuf)
    }

    #[test]
    fn quantile_on_empty_is_zero_at_every_q() {
        let h = Histogram::new();
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0, -3.0, 7.0] {
            assert_eq!(h.quantile(q), 0.0, "empty quantile({q})");
        }
    }

    #[test]
    fn merge_with_disjoint_bucket_ranges() {
        // `a` lives entirely in the sub-millisecond octaves, `b` entirely
        // in the multi-second ones: no bucket overlaps.
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for i in 1..=10 {
            a.record(i as f64 * 1.0e-4);
            b.record(i as f64 * 1.0e4);
        }
        let (a_buckets, b_buckets) = (a.nonzero_buckets().count(), b.nonzero_buckets().count());
        a.merge(&b);
        assert_eq!(a.count(), 20);
        assert_eq!(
            a.nonzero_buckets().count(),
            a_buckets + b_buckets,
            "disjoint ranges merge without bucket collisions"
        );
        assert_eq!(a.min(), 1.0e-4);
        assert_eq!(a.max(), 1.0e5);
        // The median straddles the gap; both tails stay readable.
        assert!(a.quantile(0.25) < 1.0, "low tail stays low");
        assert!(a.quantile(0.9) > 1.0e3, "high tail stays high");
    }

    #[test]
    fn merging_an_empty_histogram_changes_nothing() {
        let mut a = Histogram::new();
        a.record(2.5);
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before);
        // And empty ← non-empty adopts the source's exact min/max.
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e.min(), 2.5);
        assert_eq!(e.max(), 2.5);
        assert_eq!(e.count(), 1);
    }

    #[test]
    fn single_sample_p99_is_the_sample() {
        let mut h = Histogram::new();
        h.record(3.7);
        // Quantiles are bucket midpoints clamped to [min, max]; with one
        // sample min == max, so every quantile is exact.
        assert_eq!(h.p99(), 3.7);
        assert_eq!(h.p50(), 3.7);
        assert_eq!(h.quantile(0.0), 3.7);
        assert_eq!(h.quantile(1.0), 3.7);
    }

    proptest! {
        /// Merge is order-independent: a⊎b and b⊎a produce identical
        /// bucket counts and identical percentile reads.
        #[test]
        fn merge_is_order_independent(
            raw_a in proptest::collection::vec(0u64..1_000_000_000_000, 0..100),
            raw_b in proptest::collection::vec(0u64..1_000_000_000_000, 0..100),
        ) {
            let mut a1 = Histogram::new();
            for &r in &raw_a {
                a1.record(r as f64 / 1.0e6);
            }
            let mut b1 = Histogram::new();
            for &r in &raw_b {
                b1.record(r as f64 / 1.0e6);
            }
            let (mut ab, mut ba) = (a1.clone(), b1.clone());
            ab.merge(&b1);
            ba.merge(&a1);
            prop_assert_eq!(
                ab.nonzero_buckets().collect::<Vec<_>>(),
                ba.nonzero_buckets().collect::<Vec<_>>()
            );
            prop_assert_eq!(ab.count(), ba.count());
            prop_assert_eq!(ab.min().to_bits(), ba.min().to_bits());
            prop_assert_eq!(ab.max().to_bits(), ba.max().to_bits());
            for i in 0..=20 {
                let q = i as f64 / 20.0;
                prop_assert_eq!(ab.quantile(q).to_bits(), ba.quantile(q).to_bits());
            }
        }

        /// The satellite's bucket-determinism property: the same samples
        /// in any insertion order produce identical percentile reads.
        #[test]
        fn insertion_order_never_changes_reads(
            raw in proptest::collection::vec(0u64..1_000_000_000_000, 1..200),
            seed in 0u64..1000,
        ) {
            // Mix magnitudes: microseconds to kiloseconds when read as ms.
            let xs: Vec<f64> = raw.iter().map(|&r| r as f64 / 1.0e6).collect();
            prop_assert!(order_invariance_holds(xs, seed));
        }

        /// Every finite positive sample lands in a bucket whose bounds
        /// contain it.
        #[test]
        fn samples_land_inside_their_bucket(raw in 1u64..u64::MAX) {
            let x = raw as f64 / 1.0e6;
            let i = bucket_index(x);
            prop_assert!(bucket_lo(i) <= x, "{} < lo {}", x, bucket_lo(i));
            prop_assert!(x < bucket_hi(i), "{} >= hi {}", x, bucket_hi(i));
        }
    }
}
