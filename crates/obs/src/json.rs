//! Minimal JSON emission helpers (the workspace has no serde; exporters
//! build their documents by hand and these keep that honest).

/// Escapes a string for embedding in a JSON string literal.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number (JSON has no NaN/Infinity; those
/// render as 0 so a stray value cannot corrupt the document).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(escape_json("plain"), "plain");
    }

    #[test]
    fn non_finite_numbers_render_as_zero() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
    }
}
