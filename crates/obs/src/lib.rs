//! Deterministic observability for the Perpetual-WS stack.
//!
//! This crate is a *pure side channel*: nothing in it touches simulation
//! time, randomness, or message scheduling, so enabling any of it leaves a
//! same-seed run's trace digest byte-identical. It provides:
//!
//! * [`TraceLevel`] — the tracing knob (`Off` / `Phases` / `Full`).
//! * [`Phase`] / [`SpanKey`] / [`Recorder`] — request-lifecycle spans:
//!   every ordered request is tracked through
//!   `queued → batched → pre-prepared → prepared → committed → executed →
//!   replied` (plus the `spec-executed` / `rolled-back` / `ro-served`
//!   fast-path phases), each phase stamped with sim-time at first sighting,
//!   so per-phase latency breakdowns fall out as deltas.
//! * [`Histogram`] — fixed-bucket log-scale latency histograms with a
//!   deterministic bucket layout: identical samples in any insertion order
//!   produce identical percentile reads.
//! * [`FlightRing`] / [`FlightEvent`] — a bounded per-node flight recorder
//!   of recent protocol events (view changes, checkpoint boundaries,
//!   state-transfer verdicts, rejections), dumped on node panic or on
//!   demand to turn "the soak wedged" into a readable timeline.
//! * [`ProtoFamily`] / [`ProtoKey`] — *protocol-plane* spans, keyed per
//!   group: view changes (`vc.<view>`), checkpoint certification
//!   (`ckpt.<seq>`), Merkle state transfer (`xfer.<seq>`), cross-shard
//!   2PC (`txn.<id>`), and live resharding (`reshard.<epoch>`), with
//!   per-phase latencies under `obs.proto.<family>.<phase>_ms`.
//! * [`Auditor`] / [`AuditEvent`] — an opt-in online invariant auditor
//!   that consumes the same event stream and cross-checks protocol
//!   safety: exactly-once execution, commit-covered-by-prepare, one
//!   batch per slot, checkpoint vote bars, and 2PC decision agreement.
//! * chrome://tracing-compatible JSON export ([`Recorder::export_trace_json`]).
//!
//! The crate is dependency-free and knows nothing about the simulator;
//! times are plain `u64` microseconds supplied by the caller.

mod audit;
mod flight;
mod hist;
mod json;
mod proto;
mod recorder;

pub use audit::{AuditEvent, AuditMode, Auditor, Violation, AUDIT_VIOLATIONS_KEY};
pub use flight::{FlightEvent, FlightKind, FlightRing, DEFAULT_FLIGHT_CAPACITY};
pub use hist::Histogram;
pub use json::{escape_json, fmt_f64};
pub use proto::{
    ProtoDeltas, ProtoFamily, ProtoKey, ProtoSpan, MAX_PROTO_PHASES, PROTO_FAMILY_COUNT,
};
pub use recorder::{PhaseDeltas, Recorder, Span, SpanKey};

/// How much request-lifecycle tracing the simulation records.
///
/// The flight recorder is *always* on (its events are rare and its memory
/// bounded); this level only gates the per-request span machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub enum TraceLevel {
    /// No span recording at all. The per-event cost is one branch.
    #[default]
    Off,
    /// Track first-seen phase times per request and feed the per-phase
    /// latency histograms; spans are dropped once they close, so memory
    /// stays bounded by the number of *open* requests.
    Phases,
    /// Everything in `Phases`, plus every individual phase sighting (per
    /// node) is kept for chrome-trace export. Memory grows with the run;
    /// meant for bounded export runs, not soaks.
    Full,
}

impl TraceLevel {
    /// Whether span recording is on at all.
    #[inline]
    pub fn spans_enabled(self) -> bool {
        self != TraceLevel::Off
    }

    /// Whether the full per-sighting event log is kept for export.
    #[inline]
    pub fn events_enabled(self) -> bool {
        self == TraceLevel::Full
    }

    /// Parses a level from a `PWS_TRACE`-style environment value:
    /// `0`/`off` → `Off`, `1`/`phases` → `Phases`, `2`/`full` → `Full`.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s.trim().to_ascii_lowercase().as_str() {
            "0" | "off" | "" => Some(TraceLevel::Off),
            "1" | "phases" | "on" => Some(TraceLevel::Phases),
            "2" | "full" => Some(TraceLevel::Full),
            _ => None,
        }
    }

    /// Every level, for exhaustive invariance tests.
    pub const ALL: [TraceLevel; 3] = [TraceLevel::Off, TraceLevel::Phases, TraceLevel::Full];
}

/// A request-lifecycle phase. The discriminant order is the canonical
/// lifecycle order: a later phase's first sighting never precedes an
/// earlier phase's in a correct run, which is what the span-monotonicity
/// smoke check asserts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Phase {
    /// Admitted into a voter's request queue.
    Queued = 0,
    /// Sealed into an agreement batch by the primary.
    Batched = 1,
    /// Accepted a pre-prepare for the slot holding it.
    PrePrepared = 2,
    /// Executed speculatively at pre-prepare time (Zyzzyva-style).
    SpecExecuted = 3,
    /// Prepared certificate reached.
    Prepared = 4,
    /// Commit certificate reached.
    Committed = 5,
    /// Executed against committed application state (or speculation
    /// finalized).
    Executed = 6,
    /// A speculative execution of it was rolled back.
    RolledBack = 7,
    /// A reply was produced for the caller.
    Replied = 8,
    /// Served on the read-only fast path (never ordered).
    RoServed = 9,
}

/// Number of distinct [`Phase`] values.
pub const PHASE_COUNT: usize = 10;

impl Phase {
    /// All phases in lifecycle order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Queued,
        Phase::Batched,
        Phase::PrePrepared,
        Phase::SpecExecuted,
        Phase::Prepared,
        Phase::Committed,
        Phase::Executed,
        Phase::RolledBack,
        Phase::Replied,
        Phase::RoServed,
    ];

    /// The phase's index in lifecycle order.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The phase's wire/export name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Queued => "queued",
            Phase::Batched => "batched",
            Phase::PrePrepared => "pre-prepared",
            Phase::SpecExecuted => "spec-executed",
            Phase::Prepared => "prepared",
            Phase::Committed => "committed",
            Phase::Executed => "executed",
            Phase::RolledBack => "rolled-back",
            Phase::Replied => "replied",
            Phase::RoServed => "ro-served",
        }
    }

    /// The metrics-histogram key for the latency *into* this phase (delta
    /// from the previous recorded phase of the same span).
    pub fn metric_key(self) -> &'static str {
        match self {
            Phase::Queued => "obs.phase.queued_ms",
            Phase::Batched => "obs.phase.batched_ms",
            Phase::PrePrepared => "obs.phase.pre_prepared_ms",
            Phase::SpecExecuted => "obs.phase.spec_executed_ms",
            Phase::Prepared => "obs.phase.prepared_ms",
            Phase::Committed => "obs.phase.committed_ms",
            Phase::Executed => "obs.phase.executed_ms",
            Phase::RolledBack => "obs.phase.rolled_back_ms",
            Phase::Replied => "obs.phase.replied_ms",
            Phase::RoServed => "obs.phase.ro_served_ms",
        }
    }

    /// Whether this phase closes a span (the request's lifecycle is over
    /// from the caller's point of view).
    #[inline]
    pub fn is_terminal(self) -> bool {
        matches!(self, Phase::Replied | Phase::RoServed)
    }
}

/// The metrics-histogram key for whole-span latency (first phase →
/// terminal phase).
pub const TOTAL_LATENCY_KEY: &str = "obs.lat.total_ms";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_order_is_lifecycle_order() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
        assert!(Phase::Queued < Phase::Batched);
        assert!(Phase::Committed < Phase::Executed);
        assert!(Phase::Executed < Phase::Replied);
    }

    #[test]
    fn trace_level_parses() {
        assert_eq!(TraceLevel::parse("0"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("off"), Some(TraceLevel::Off));
        assert_eq!(TraceLevel::parse("1"), Some(TraceLevel::Phases));
        assert_eq!(TraceLevel::parse(" full "), Some(TraceLevel::Full));
        assert_eq!(TraceLevel::parse("2"), Some(TraceLevel::Full));
        assert_eq!(TraceLevel::parse("bogus"), None);
        assert!(!TraceLevel::Off.spans_enabled());
        assert!(TraceLevel::Phases.spans_enabled());
        assert!(!TraceLevel::Phases.events_enabled());
        assert!(TraceLevel::Full.events_enabled());
    }

    #[test]
    fn terminal_phases() {
        assert!(Phase::Replied.is_terminal());
        assert!(Phase::RoServed.is_terminal());
        assert!(!Phase::Executed.is_terminal());
        assert!(!Phase::RolledBack.is_terminal());
    }
}
