//! Protocol-plane spans: the consensus/recovery/coordination machinery's
//! lifecycle, keyed per group rather than per request.
//!
//! Request spans (see [`crate::Phase`]) cover the *request* plane; these
//! families cover the protocol work underneath it:
//!
//! * `vc.<view>` — a view change: `started → installed`, or `abandoned`
//!   when a higher view installs first.
//! * `ckpt.<seq>` — a checkpoint: boundary `taken → stable` (2f+1 votes).
//! * `xfer.<seq>` — a state transfer: `triggered → manifest-verified →
//!   pages-fetched → installed`, with per-phase page counts.
//! * `txn.<id>` — a cross-shard two-phase commit:
//!   `prepare-sent → voted → decided → acked`.
//! * `reshard.<epoch>` — a live reshard:
//!   `flipped → fenced → exported → imported`.
//!
//! Like request spans, protocol spans have **first-seen semantics across
//! nodes**: every replica of a group emits the same milestones, and the
//! span records the earliest sighting of each phase, making it the
//! group-global timeline. Phase latencies are measured from the span's
//! opening phase and recorded under `obs.proto.<family>.<phase>_ms`.

/// A protocol-span family. The discriminant doubles as the phase-table
/// index, so keep [`ProtoFamily::ALL`] in discriminant order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum ProtoFamily {
    /// View change (`vc.<target view>`).
    Vc = 0,
    /// Checkpoint certification (`ckpt.<seq>`).
    Ckpt = 1,
    /// Merkle state transfer (`xfer.<installed seq>`).
    Xfer = 2,
    /// Cross-shard two-phase commit (`txn.<id hash>`).
    Txn = 3,
    /// Live reshard (`reshard.<new shard count>`).
    Reshard = 4,
}

/// Number of distinct [`ProtoFamily`] values.
pub const PROTO_FAMILY_COUNT: usize = 5;

/// Most phases any family has; spans store fixed-size arrays of this.
pub const MAX_PROTO_PHASES: usize = 4;

/// Per-family phase-name tables, in lifecycle order. Index 0 opens the
/// span.
const PHASES: [&[&str]; PROTO_FAMILY_COUNT] = [
    &["started", "installed", "abandoned"],
    &["taken", "stable"],
    &[
        "triggered",
        "manifest-verified",
        "pages-fetched",
        "installed",
    ],
    &["prepare-sent", "voted", "decided", "acked"],
    &["flipped", "fenced", "exported", "imported"],
];

/// Per-family metric keys for the latency from the opening phase into each
/// later phase (index 0 is the opening phase and has no latency).
const METRIC_KEYS: [&[&str]; PROTO_FAMILY_COUNT] = [
    &["", "obs.proto.vc.installed_ms", "obs.proto.vc.abandoned_ms"],
    &["", "obs.proto.ckpt.stable_ms"],
    &[
        "",
        "obs.proto.xfer.manifest_verified_ms",
        "obs.proto.xfer.pages_fetched_ms",
        "obs.proto.xfer.installed_ms",
    ],
    &[
        "",
        "obs.proto.txn.voted_ms",
        "obs.proto.txn.decided_ms",
        "obs.proto.txn.acked_ms",
    ],
    &[
        "",
        "obs.proto.reshard.fenced_ms",
        "obs.proto.reshard.exported_ms",
        "obs.proto.reshard.imported_ms",
    ],
];

impl ProtoFamily {
    /// Every family, in discriminant order.
    pub const ALL: [ProtoFamily; PROTO_FAMILY_COUNT] = [
        ProtoFamily::Vc,
        ProtoFamily::Ckpt,
        ProtoFamily::Xfer,
        ProtoFamily::Txn,
        ProtoFamily::Reshard,
    ];

    /// The family's export name (`vc`, `ckpt`, `xfer`, `txn`, `reshard`).
    pub fn name(self) -> &'static str {
        match self {
            ProtoFamily::Vc => "vc",
            ProtoFamily::Ckpt => "ckpt",
            ProtoFamily::Xfer => "xfer",
            ProtoFamily::Txn => "txn",
            ProtoFamily::Reshard => "reshard",
        }
    }

    /// The family's phase names, in lifecycle order. Index 0 opens a span.
    pub fn phases(self) -> &'static [&'static str] {
        PHASES[self as usize]
    }

    /// Number of phases in this family.
    pub fn phase_count(self) -> usize {
        self.phases().len()
    }

    /// The metrics-histogram key for the latency from the opening phase
    /// into `phase` (`None` for the opening phase itself).
    pub fn metric_key(self, phase: usize) -> Option<&'static str> {
        let keys = METRIC_KEYS[self as usize];
        match keys.get(phase) {
            Some(&"") | None => None,
            Some(&k) => Some(k),
        }
    }

    /// Whether `phase` closes a span of this family.
    pub fn is_terminal(self, phase: usize) -> bool {
        match self {
            // Both `installed` and `abandoned` are terminal for a view
            // change; every other family's terminal is its last phase.
            ProtoFamily::Vc => phase == 1 || phase == 2,
            _ => phase + 1 == self.phase_count(),
        }
    }
}

/// Identity of a protocol span: the family and id, qualified by the group
/// whose protocol machinery the span describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct ProtoKey {
    /// The group whose protocol instance this is.
    pub group: u32,
    /// The span family.
    pub family: ProtoFamily,
    /// The per-family id: view / seq / seq / txn-id hash / shard count.
    pub id: u64,
}

impl ProtoKey {
    /// The span's display name (`vc.5`, `ckpt.128`, …).
    pub fn display(&self) -> String {
        format!("{}.{}", self.family.name(), self.id)
    }
}

const UNSEEN: u64 = u64::MAX;

/// One protocol span: the first-seen time of each phase plus an optional
/// per-phase count payload (e.g. pages fetched).
#[derive(Debug, Clone)]
pub struct ProtoSpan {
    family: ProtoFamily,
    first_seen: [u64; MAX_PROTO_PHASES],
    counts: [u64; MAX_PROTO_PHASES],
    closed_at: Option<usize>,
}

impl ProtoSpan {
    pub(crate) fn new(family: ProtoFamily) -> Self {
        ProtoSpan {
            family,
            first_seen: [UNSEEN; MAX_PROTO_PHASES],
            counts: [0; MAX_PROTO_PHASES],
            closed_at: None,
        }
    }

    /// The span's family.
    pub fn family(&self) -> ProtoFamily {
        self.family
    }

    /// First-seen time of phase index `phase` in microseconds, if recorded.
    pub fn first(&self, phase: usize) -> Option<u64> {
        let t = *self.first_seen.get(phase)?;
        (t != UNSEEN).then_some(t)
    }

    /// The count payload recorded with phase `phase` (0 when absent).
    pub fn count(&self, phase: usize) -> u64 {
        self.counts.get(phase).copied().unwrap_or(0)
    }

    /// Recorded phases in lifecycle order: `(name, first-seen µs, count)`.
    pub fn phases(&self) -> impl Iterator<Item = (&'static str, u64, u64)> + '_ {
        (0..self.family.phase_count()).filter_map(|i| {
            self.first(i)
                .map(|t| (self.family.phases()[i], t, self.count(i)))
        })
    }

    /// Whether a terminal phase closed this span, and which one.
    pub fn closed_phase(&self) -> Option<&'static str> {
        self.closed_at.map(|i| self.family.phases()[i])
    }

    /// Whether a terminal phase was recorded.
    pub fn is_closed(&self) -> bool {
        self.closed_at.is_some()
    }

    /// Earliest recorded phase time (µs).
    pub fn start_us(&self) -> Option<u64> {
        self.phases().map(|(_, t, _)| t).min()
    }

    /// Latest recorded phase time (µs).
    pub fn end_us(&self) -> Option<u64> {
        self.phases().map(|(_, t, _)| t).max()
    }

    /// Records a phase; returns `(newly recorded, ms since span open)`.
    pub(crate) fn record(&mut self, phase: usize, at_us: u64, count: u64) -> (bool, Option<f64>) {
        if phase >= self.family.phase_count() || self.first_seen[phase] != UNSEEN {
            return (false, None);
        }
        self.first_seen[phase] = at_us;
        self.counts[phase] = count;
        if self.closed_at.is_none() && self.family.is_terminal(phase) {
            self.closed_at = Some(phase);
        }
        let since_open = self
            .first(0)
            .filter(|_| phase > 0)
            .map(|t0| (at_us.saturating_sub(t0)) as f64 / 1000.0);
        (true, since_open)
    }

    /// Force-closes the span as `phase` at `at_us` (used for view-change
    /// abandonment). No-op when already closed.
    pub(crate) fn close_as(&mut self, phase: usize, at_us: u64) -> Option<f64> {
        if self.closed_at.is_some() || phase >= self.family.phase_count() {
            return None;
        }
        let (recorded, since_open) = self.record(phase, at_us, 0);
        if recorded {
            self.closed_at = Some(phase);
        }
        since_open.or(Some(0.0))
    }
}

/// What one protocol-phase recording produced, for the caller to feed into
/// metrics (the recorder itself stays metrics-agnostic).
#[derive(Debug, Clone, Default)]
pub struct ProtoDeltas {
    /// `Some((histogram key, ms since span open))` when this sighting was
    /// the phase's first and the phase is not the span's opening phase.
    pub metric: Option<(&'static str, f64)>,
    /// Whether this sighting opened the span.
    pub opened: bool,
    /// The terminal phase name when this sighting closed the span.
    pub closed: Option<&'static str>,
    /// View-change spans auto-abandoned by this sighting (a newer view
    /// installed): `(abandoned view id, ms the span was open)`.
    pub abandoned: Vec<(u64, f64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_tables_are_consistent() {
        for f in ProtoFamily::ALL {
            assert!(f.phase_count() <= MAX_PROTO_PHASES);
            assert_eq!(METRIC_KEYS[f as usize].len(), f.phase_count());
            assert!(f.metric_key(0).is_none(), "opening phase has no latency");
            for p in 1..f.phase_count() {
                let key = f.metric_key(p).expect("later phases have keys");
                assert!(key.starts_with(&format!("obs.proto.{}.", f.name())));
            }
            assert!(
                (0..f.phase_count()).any(|p| f.is_terminal(p)),
                "{f:?} needs a terminal phase"
            );
        }
        assert!(ProtoFamily::Vc.is_terminal(1) && ProtoFamily::Vc.is_terminal(2));
        assert!(!ProtoFamily::Xfer.is_terminal(1));
    }

    #[test]
    fn span_records_first_seen_and_counts() {
        let mut s = ProtoSpan::new(ProtoFamily::Xfer);
        assert_eq!(s.record(0, 1000, 0), (true, None));
        assert_eq!(s.record(1, 3000, 64), (true, Some(2.0)));
        assert_eq!(s.record(1, 9000, 99), (false, None), "repeat ignored");
        assert_eq!(s.count(1), 64);
        assert!(!s.is_closed());
        assert_eq!(s.record(3, 11_000, 0), (true, Some(10.0)));
        assert!(s.is_closed());
        assert_eq!(s.closed_phase(), Some("installed"));
        assert_eq!(s.phases().count(), 3);
    }

    #[test]
    fn vc_close_as_abandoned() {
        let mut s = ProtoSpan::new(ProtoFamily::Vc);
        s.record(0, 500, 0);
        assert_eq!(s.close_as(2, 2500), Some(2.0));
        assert_eq!(s.closed_phase(), Some("abandoned"));
        assert_eq!(s.close_as(1, 9000), None, "already closed");
    }

    #[test]
    fn key_display() {
        let k = ProtoKey {
            group: 3,
            family: ProtoFamily::Ckpt,
            id: 128,
        };
        assert_eq!(k.display(), "ckpt.128");
    }
}
