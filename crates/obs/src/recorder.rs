//! The span recorder: first-seen phase times per request, the per-node
//! flight rings, and the chrome-trace exporter.

use crate::flight::{FlightEvent, FlightKind, FlightRing, DEFAULT_FLIGHT_CAPACITY};
use crate::json::escape_json;
use crate::proto::{ProtoDeltas, ProtoFamily, ProtoKey, ProtoSpan};
use crate::{Phase, TraceLevel, PHASE_COUNT};
use std::collections::BTreeMap;

/// Identity of a request-lifecycle span: the CLBFT request id (`origin`,
/// `counter`) qualified by the *executing* group — `(origin, counter)`
/// alone can collide across groups because a caller's per-target counters
/// each start at zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SpanKey {
    /// The executing (target) group.
    pub group: u32,
    /// CLBFT request-id origin (encodes the event family and caller).
    pub origin: u64,
    /// CLBFT request-id counter.
    pub counter: u64,
}

const UNSEEN: u64 = u64::MAX;

/// One request's lifecycle: the sim-time (µs) each phase was *first* seen
/// at any node. First-seen semantics make the span a deployment-global
/// view — e.g. `prepared` is the instant the earliest replica reached a
/// prepared certificate.
#[derive(Debug, Clone)]
pub struct Span {
    first_seen: [u64; PHASE_COUNT],
}

impl Span {
    fn new() -> Self {
        Span {
            first_seen: [UNSEEN; PHASE_COUNT],
        }
    }

    /// First-seen time of `phase` in microseconds, if ever recorded.
    pub fn first(&self, phase: Phase) -> Option<u64> {
        let t = self.first_seen[phase.index()];
        (t != UNSEEN).then_some(t)
    }

    /// The recorded phases in lifecycle order with their first-seen times.
    pub fn phases(&self) -> impl Iterator<Item = (Phase, u64)> + '_ {
        Phase::ALL
            .iter()
            .filter_map(|&p| self.first(p).map(|t| (p, t)))
    }

    /// Whether a terminal phase ([`Phase::is_terminal`]) was recorded.
    pub fn is_closed(&self) -> bool {
        Phase::ALL
            .iter()
            .any(|&p| p.is_terminal() && self.first(p).is_some())
    }

    /// Earliest recorded phase time (µs).
    pub fn start_us(&self) -> Option<u64> {
        self.phases().map(|(_, t)| t).min()
    }

    /// Latest recorded phase time (µs).
    pub fn end_us(&self) -> Option<u64> {
        self.phases().map(|(_, t)| t).max()
    }
}

/// One phase sighting, kept only at [`TraceLevel::Full`] for export.
#[derive(Debug, Clone, Copy)]
pub struct SpanEvent {
    /// The span this sighting belongs to.
    pub key: SpanKey,
    /// The phase seen.
    pub phase: Phase,
    /// Sim-time, microseconds.
    pub at_us: u64,
    /// The node that saw it.
    pub node: u64,
}

/// Latency deltas produced by a first-seen phase recording, for the
/// caller to feed into its metrics histograms (the recorder itself stays
/// metrics-agnostic).
#[derive(Debug, Clone, Copy, Default)]
pub struct PhaseDeltas {
    /// Milliseconds from the previous recorded phase of the same span to
    /// this one (`None` when this is the span's first phase, or a repeat
    /// sighting).
    pub phase_ms: Option<f64>,
    /// Whole-span milliseconds (first phase → terminal), reported once
    /// when a terminal phase first closes the span.
    pub total_ms: Option<f64>,
    /// True when this first sighting landed *before* an already-recorded
    /// later lifecycle phase, or *after* an already-recorded earlier one —
    /// i.e. the span's first-seen times are no longer monotone along the
    /// ordered path. The auditor turns this into a violation; honest runs
    /// never set it (first-seen semantics make the earliest sighting win).
    /// Only the ordered-path phases (queued → … → replied) participate;
    /// the speculative/read-only phases interleave legally.
    pub regressed: bool,
}

/// The ordered-path phases whose first-seen times must be monotone. The
/// speculative and read-only phases (`SpecExecuted`, `RolledBack`,
/// `RoServed`) interleave with the ordered path legally and are excluded.
const ORDERED_PATH: [Phase; 7] = [
    Phase::Queued,
    Phase::Batched,
    Phase::PrePrepared,
    Phase::Prepared,
    Phase::Committed,
    Phase::Executed,
    Phase::Replied,
];

/// Bound on concurrently tracked *open* spans; exceeding it evicts the
/// smallest key deterministically (a safety valve for runs that never
/// close spans, not something a healthy workload hits).
const OPEN_SPAN_CAP: usize = 1 << 16;

/// The observability recorder: span tracking plus the per-node flight
/// rings. Lives beside the simulation state; every method is a pure state
/// update with no effect on scheduling, time, or randomness.
#[derive(Debug)]
pub struct Recorder {
    level: TraceLevel,
    flight_cap: usize,
    rings: BTreeMap<u64, FlightRing>,
    open: BTreeMap<SpanKey, Span>,
    closed: BTreeMap<SpanKey, Span>,
    events: Vec<SpanEvent>,
    spans_opened: u64,
    spans_closed: u64,
    protos: BTreeMap<ProtoKey, ProtoSpan>,
    proto_spans_opened: u64,
    proto_spans_closed: u64,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// A recorder with tracing off and the default flight capacity.
    pub fn new() -> Self {
        Recorder {
            level: TraceLevel::Off,
            flight_cap: DEFAULT_FLIGHT_CAPACITY,
            rings: BTreeMap::new(),
            open: BTreeMap::new(),
            closed: BTreeMap::new(),
            events: Vec::new(),
            spans_opened: 0,
            spans_closed: 0,
            protos: BTreeMap::new(),
            proto_spans_opened: 0,
            proto_spans_closed: 0,
        }
    }

    /// Current trace level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Sets the trace level.
    pub fn set_level(&mut self, level: TraceLevel) {
        self.level = level;
    }

    /// Sets the per-node flight-ring capacity (existing rings keep their
    /// capacity; applies to rings created afterwards).
    pub fn set_flight_capacity(&mut self, cap: usize) {
        self.flight_cap = cap.max(1);
    }

    // ------------------------------------------------------------- spans

    /// Records a phase sighting for span `key` at sim-time `at_us` on
    /// `node`. Returns the latency deltas this first sighting produced
    /// (all-`None` on repeats or when tracing is off).
    pub fn phase(&mut self, key: SpanKey, phase: Phase, at_us: u64, node: u64) -> PhaseDeltas {
        if !self.level.spans_enabled() {
            return PhaseDeltas::default();
        }
        if self.level.events_enabled() {
            self.events.push(SpanEvent {
                key,
                phase,
                at_us,
                node,
            });
        }
        let in_closed = self.closed.contains_key(&key);
        let span = if in_closed {
            self.closed.get_mut(&key).expect("present")
        } else {
            if !self.open.contains_key(&key) {
                if self.open.len() >= OPEN_SPAN_CAP {
                    self.open.pop_first();
                }
                self.open.insert(key, Span::new());
                self.spans_opened += 1;
            }
            self.open.get_mut(&key).expect("just inserted")
        };
        let idx = phase.index();
        if span.first_seen[idx] != UNSEEN {
            return PhaseDeltas::default(); // repeat sighting
        }
        span.first_seen[idx] = at_us;
        let regressed = ORDERED_PATH.contains(&phase)
            && ORDERED_PATH.iter().any(|&p| {
                let t = span.first_seen[p.index()];
                t != UNSEEN && ((p < phase && t > at_us) || (p > phase && t < at_us))
            });
        let prev = span.first_seen[..idx]
            .iter()
            .filter(|&&t| t != UNSEEN)
            .max()
            .copied();
        let phase_ms = prev.map(|p| (at_us.saturating_sub(p)) as f64 / 1000.0);
        let mut total_ms = None;
        if phase.is_terminal() && !in_closed {
            let start = span.start_us().expect("phase just recorded");
            total_ms = Some((at_us.saturating_sub(start)) as f64 / 1000.0);
            self.spans_closed += 1;
            let span = self.open.remove(&key).expect("span was open");
            // `Full` keeps every closed span for export; `Phases` keeps a
            // bounded recent window purely to absorb late sightings from
            // other replicas without re-opening the span.
            if self.closed.len() >= OPEN_SPAN_CAP && !self.level.events_enabled() {
                self.closed.pop_first();
            }
            self.closed.insert(key, span);
        }
        PhaseDeltas {
            phase_ms,
            total_ms,
            regressed,
        }
    }

    /// Total spans ever opened.
    pub fn spans_opened(&self) -> u64 {
        self.spans_opened
    }

    /// Total spans closed by a terminal phase.
    pub fn spans_closed(&self) -> u64 {
        self.spans_closed
    }

    /// Number of spans currently tracked (open + retained closed).
    pub fn span_count(&self) -> usize {
        self.open.len() + self.closed.len()
    }

    /// Iterates over every tracked span (open and closed), key-ordered.
    pub fn spans(&self) -> impl Iterator<Item = (&SpanKey, &Span)> {
        self.open.iter().chain(self.closed.iter())
    }

    /// Looks up one span.
    pub fn span(&self, key: &SpanKey) -> Option<&Span> {
        self.open.get(key).or_else(|| self.closed.get(key))
    }

    /// The raw per-sighting event log ([`TraceLevel::Full`] only).
    pub fn events(&self) -> &[SpanEvent] {
        &self.events
    }

    // ------------------------------------------------------- proto spans

    /// Records a protocol-span phase sighting (first-seen semantics, like
    /// request spans). `count` is an optional payload surfaced in the
    /// export (e.g. pages fetched); pass 0 when meaningless.
    ///
    /// Installing a view change (`vc` phase 1) auto-closes every older
    /// still-open `vc` span of the same group as `abandoned` — a replica
    /// set that moves to view `w` has, by construction, given up on every
    /// view change below `w`.
    pub fn proto(&mut self, key: ProtoKey, phase: usize, at_us: u64, count: u64) -> ProtoDeltas {
        if !self.level.spans_enabled() {
            return ProtoDeltas::default();
        }
        let mut deltas = ProtoDeltas::default();
        if !self.protos.contains_key(&key) {
            if self.protos.len() >= OPEN_SPAN_CAP {
                self.protos.pop_first();
            }
            self.protos.insert(key, ProtoSpan::new(key.family));
            self.proto_spans_opened += 1;
            deltas.opened = true;
        }
        let span = self.protos.get_mut(&key).expect("just ensured");
        let was_closed = span.is_closed();
        let (recorded, since_open) = span.record(phase, at_us, count);
        if recorded {
            if let (Some(ms), Some(mk)) = (since_open, key.family.metric_key(phase)) {
                deltas.metric = Some((mk, ms));
            }
            if span.is_closed() && !was_closed {
                self.proto_spans_closed += 1;
                deltas.closed = span.closed_phase();
            }
        }
        if key.family == ProtoFamily::Vc && phase == 1 && recorded {
            let stale: Vec<ProtoKey> = self
                .protos
                .iter()
                .filter(|(k, s)| {
                    k.group == key.group
                        && k.family == ProtoFamily::Vc
                        && k.id < key.id
                        && !s.is_closed()
                })
                .map(|(k, _)| *k)
                .collect();
            for k in stale {
                let s = self.protos.get_mut(&k).expect("just listed");
                if let Some(ms) = s.close_as(2, at_us) {
                    self.proto_spans_closed += 1;
                    deltas.abandoned.push((k.id, ms));
                }
            }
        }
        deltas
    }

    /// Total protocol spans ever opened.
    pub fn proto_spans_opened(&self) -> u64 {
        self.proto_spans_opened
    }

    /// Total protocol spans closed by a terminal phase (abandonment
    /// included).
    pub fn proto_spans_closed(&self) -> u64 {
        self.proto_spans_closed
    }

    /// Iterates over every tracked protocol span, key-ordered.
    pub fn proto_spans(&self) -> impl Iterator<Item = (&ProtoKey, &ProtoSpan)> {
        self.protos.iter()
    }

    /// Looks up one protocol span.
    pub fn proto_span(&self, key: &ProtoKey) -> Option<&ProtoSpan> {
        self.protos.get(key)
    }

    // ------------------------------------------------------------ flight

    /// Records a flight event for `node` at sim-time `at_us`.
    pub fn flight(&mut self, node: u64, at_us: u64, kind: FlightKind, a: u64, b: u64) {
        let cap = self.flight_cap;
        self.rings
            .entry(node)
            .or_insert_with(|| FlightRing::new(cap))
            .push(FlightEvent {
                at_us,
                node,
                kind,
                a,
                b,
            });
    }

    /// The flight ring of `node`, if it ever recorded anything.
    pub fn flight_ring(&self, node: u64) -> Option<&FlightRing> {
        self.rings.get(&node)
    }

    /// Dumps one node's flight ring as a readable timeline (`None` if the
    /// node never recorded an event).
    pub fn dump_flight(&self, node: u64) -> Option<String> {
        let ring = self.rings.get(&node)?;
        let mut out = format!(
            "flight recorder, node {node} ({} of {} event(s) retained):\n",
            ring.len(),
            ring.total_recorded()
        );
        ring.dump(&mut out);
        Some(out)
    }

    /// Dumps every node's flight ring, node-ordered.
    pub fn dump_all_flight(&self) -> String {
        let mut out = String::new();
        for node in self.rings.keys() {
            out.push_str(&self.dump_flight(*node).expect("ring exists"));
        }
        if out.is_empty() {
            out.push_str("flight recorder: no events recorded\n");
        }
        out
    }

    // ------------------------------------------------------------ export

    /// Exports the recorded spans as chrome://tracing-compatible JSON
    /// (open `chrome://tracing` or <https://ui.perfetto.dev> and load the
    /// file). `pid` is the executing group, `tid` the sighting node.
    ///
    /// The document also carries a machine-checkable `spans` array (every
    /// span's phase timeline and closed flag) that the observability
    /// smoke test validates; chrome ignores the extra keys. Per-sighting
    /// instant events require [`TraceLevel::Full`]; at `Phases` only the
    /// per-span summary events are present.
    pub fn export_trace_json(&self) -> String {
        let mut out = String::from("{\n\"traceEvents\": [");
        let mut first = true;
        for ev in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n{{\"name\":\"{}\",\"cat\":\"phase\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":{},\"tid\":{},\"args\":{{\"origin\":{},\"counter\":{}}}}}",
                ev.phase.name(),
                ev.at_us,
                ev.key.group,
                ev.node,
                ev.key.origin,
                ev.key.counter
            ));
        }
        for (key, span) in self.spans() {
            let (Some(start), Some(end)) = (span.start_us(), span.end_us()) else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":0}}",
                escape_json(&format!("req {:#x}/{}", key.origin, key.counter)),
                start,
                end - start,
                key.group
            ));
        }
        for (key, span) in self.proto_spans() {
            let (Some(start), Some(end)) = (span.start_us(), span.end_us()) else {
                continue;
            };
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n{{\"name\":\"{}\",\"cat\":\"proto\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":0}}",
                escape_json(&key.display()),
                start,
                end - start,
                key.group
            ));
        }
        out.push_str("\n],\n\"displayTimeUnit\": \"ms\",\n\"spans\": [");
        let mut first = true;
        for (key, span) in self.spans() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n{{\"group\":{},\"origin\":{},\"counter\":{},\"closed\":{},\"phases\":[",
                key.group,
                key.origin,
                key.counter,
                span.is_closed()
            ));
            let mut fp = true;
            for (p, t) in span.phases() {
                if !fp {
                    out.push(',');
                }
                fp = false;
                out.push_str(&format!("{{\"phase\":\"{}\",\"ts_us\":{t}}}", p.name()));
            }
            out.push_str("]}");
        }
        out.push_str("\n],\n\"protoSpans\": [");
        let mut first = true;
        for (key, span) in self.proto_spans() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n{{\"name\":\"{}\",\"group\":{},\"family\":\"{}\",\"id\":{},\"closed\":{},\"closedPhase\":{},\"phases\":[",
                escape_json(&key.display()),
                key.group,
                key.family.name(),
                key.id,
                span.is_closed(),
                match span.closed_phase() {
                    Some(p) => format!("\"{p}\""),
                    None => "null".to_string(),
                }
            ));
            let mut fp = true;
            for (p, t, c) in span.phases() {
                if !fp {
                    out.push(',');
                }
                fp = false;
                out.push_str(&format!(
                    "{{\"phase\":\"{p}\",\"ts_us\":{t},\"count\":{c}}}"
                ));
            }
            out.push_str("]}");
        }
        // Accounting: never-closed spans are classified as open, not
        // silently dropped — `opened == open + closed` must always hold.
        out.push_str(&format!(
            "\n],\n\"spanCount\": {},\n\"spansOpened\": {},\n\"spansOpen\": {},\n\"spansClosed\": {},\n\"protoSpanCount\": {},\n\"protoSpansOpened\": {},\n\"protoSpansOpen\": {},\n\"protoSpansClosed\": {}\n}}\n",
            self.span_count(),
            self.spans_opened,
            self.spans_opened - self.spans_closed,
            self.spans_closed,
            self.protos.len(),
            self.proto_spans_opened,
            self.proto_spans_opened - self.proto_spans_closed,
            self.proto_spans_closed
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(counter: u64) -> SpanKey {
        SpanKey {
            group: 1,
            origin: 0x4558_5400_0000_0002,
            counter,
        }
    }

    #[test]
    fn off_level_records_nothing() {
        let mut r = Recorder::new();
        let d = r.phase(key(0), Phase::Queued, 10, 0);
        assert!(d.phase_ms.is_none() && d.total_ms.is_none());
        assert_eq!(r.span_count(), 0);
        assert_eq!(r.spans_opened(), 0);
    }

    #[test]
    fn first_seen_semantics_and_deltas() {
        let mut r = Recorder::new();
        r.set_level(TraceLevel::Phases);
        assert!(r.phase(key(0), Phase::Queued, 1000, 0).phase_ms.is_none());
        // Repeat sighting from another node: ignored.
        let d = r.phase(key(0), Phase::Queued, 1500, 1);
        assert!(d.phase_ms.is_none());
        let d = r.phase(key(0), Phase::Batched, 3000, 0);
        assert_eq!(d.phase_ms, Some(2.0));
        let d = r.phase(key(0), Phase::Executed, 9000, 2);
        assert_eq!(d.phase_ms, Some(6.0));
        let d = r.phase(key(0), Phase::Replied, 10_000, 2);
        assert_eq!(d.phase_ms, Some(1.0));
        assert_eq!(d.total_ms, Some(9.0));
        assert_eq!(r.spans_closed(), 1);
        let span = r.span(&key(0)).unwrap();
        assert!(span.is_closed());
        assert_eq!(span.first(Phase::Queued), Some(1000));
        // A late sighting after close does not re-open or re-count.
        let d = r.phase(key(0), Phase::Replied, 20_000, 3);
        assert!(d.total_ms.is_none());
        assert_eq!(r.spans_opened(), 1);
        assert_eq!(r.spans_closed(), 1);
    }

    #[test]
    fn full_level_keeps_events_and_exports_chrome_trace() {
        let mut r = Recorder::new();
        r.set_level(TraceLevel::Full);
        r.phase(key(7), Phase::Queued, 100, 0);
        r.phase(key(7), Phase::Executed, 400, 1);
        r.phase(key(7), Phase::Replied, 500, 1);
        assert_eq!(r.events().len(), 3);
        let json = r.export_trace_json();
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"queued\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"spanCount\": 1"));
        assert!(json.contains("\"closed\":true"));
    }

    #[test]
    fn ro_only_span_is_closed() {
        let mut r = Recorder::new();
        r.set_level(TraceLevel::Phases);
        let d = r.phase(key(3), Phase::RoServed, 2000, 5);
        assert!(d.phase_ms.is_none(), "no predecessor phase");
        assert_eq!(d.total_ms, Some(0.0));
        assert!(r.span(&key(3)).unwrap().is_closed());
    }

    #[test]
    fn proto_spans_first_seen_metrics_and_vc_abandonment() {
        let mut r = Recorder::new();
        r.set_level(TraceLevel::Phases);
        let vc = |id| ProtoKey {
            group: 2,
            family: ProtoFamily::Vc,
            id,
        };
        // View change to 1 starts but never installs; view change to 2
        // wins. Installing 2 abandons 1.
        let d = r.proto(vc(1), 0, 1000, 0);
        assert!(d.opened && d.metric.is_none() && d.closed.is_none());
        let d = r.proto(vc(2), 0, 2000, 0);
        assert!(d.opened);
        let d = r.proto(vc(2), 1, 5000, 0);
        assert_eq!(d.metric, Some(("obs.proto.vc.installed_ms", 3.0)));
        assert_eq!(d.closed, Some("installed"));
        assert_eq!(d.abandoned, vec![(1, 4.0)]);
        assert_eq!(r.proto_spans_opened(), 2);
        assert_eq!(r.proto_spans_closed(), 2);
        assert_eq!(
            r.proto_span(&vc(1)).unwrap().closed_phase(),
            Some("abandoned")
        );
        // Repeat sighting from another replica: no new deltas.
        let d = r.proto(vc(2), 1, 9000, 0);
        assert!(!d.opened && d.metric.is_none() && d.closed.is_none());
    }

    #[test]
    fn proto_spans_respect_trace_level_and_carry_counts() {
        let mut r = Recorder::new();
        let xfer = ProtoKey {
            group: 1,
            family: ProtoFamily::Xfer,
            id: 64,
        };
        let d = r.proto(xfer, 0, 100, 0);
        assert!(!d.opened, "off level records nothing");
        assert_eq!(r.proto_spans().count(), 0);

        r.set_level(TraceLevel::Phases);
        r.proto(xfer, 0, 100, 0);
        r.proto(xfer, 1, 300, 128); // manifest verified: 128 pages differ
        let d = r.proto(xfer, 2, 700, 128);
        assert_eq!(d.metric, Some(("obs.proto.xfer.pages_fetched_ms", 0.6)));
        r.proto(xfer, 3, 900, 0);
        let span = r.proto_span(&xfer).unwrap();
        assert!(span.is_closed());
        assert_eq!(span.count(1), 128);
        let json = r.export_trace_json();
        assert!(json.contains("\"protoSpans\""));
        assert!(json.contains("\"name\":\"xfer.64\""));
        assert!(json.contains("\"phase\":\"manifest-verified\",\"ts_us\":300,\"count\":128"));
        assert!(json.contains("\"protoSpansClosed\": 1"));
    }

    #[test]
    fn accounting_classifies_never_closed_spans_as_open() {
        let mut r = Recorder::new();
        r.set_level(TraceLevel::Phases);
        // A request span that closes, one that never does, and an
        // in-flight view change at run end.
        r.phase(key(0), Phase::Queued, 100, 0);
        r.phase(key(0), Phase::Replied, 900, 0);
        r.phase(key(1), Phase::Queued, 500, 0);
        r.proto(
            ProtoKey {
                group: 1,
                family: ProtoFamily::Vc,
                id: 3,
            },
            0,
            600,
            0,
        );
        let json = r.export_trace_json();
        assert!(json.contains("\"spansOpened\": 2"));
        assert!(json.contains("\"spansOpen\": 1"), "open span accounted");
        assert!(json.contains("\"spansClosed\": 1"));
        assert!(json.contains("\"protoSpansOpen\": 1"));
        assert!(json.contains("\"closed\":false"), "open span exported");
    }

    #[test]
    fn ordered_path_regression_is_flagged() {
        let mut r = Recorder::new();
        r.set_level(TraceLevel::Phases);
        assert!(!r.phase(key(4), Phase::Prepared, 5000, 0).regressed);
        // Committed first seen *before* prepared's first sighting: broken.
        assert!(r.phase(key(4), Phase::Committed, 4000, 1).regressed);
        // Spec-executed interleaves legally wherever it lands.
        assert!(!r.phase(key(4), Phase::SpecExecuted, 100, 0).regressed);
    }

    #[test]
    fn flight_rings_are_per_node_and_dumpable() {
        let mut r = Recorder::new();
        r.set_flight_capacity(2);
        r.flight(4, 100, FlightKind::EnteredView, 1, 0);
        r.flight(4, 200, FlightKind::CheckpointTaken, 64, 4096);
        r.flight(4, 300, FlightKind::CheckpointStable, 64, 0);
        r.flight(9, 400, FlightKind::Wiped, 1, 0);
        assert_eq!(r.flight_ring(4).unwrap().len(), 2, "capacity bound");
        assert_eq!(r.flight_ring(4).unwrap().total_recorded(), 3);
        let dump = r.dump_flight(4).unwrap();
        assert!(dump.contains("checkpoint-stable seq=64"));
        assert!(!dump.contains("entered-view"), "oldest evicted");
        let all = r.dump_all_flight();
        assert!(all.contains("node 4") && all.contains("node 9"));
        assert!(r.dump_flight(77).is_none());
    }
}
