//! Unreplicated client endpoints.
//!
//! The paper's endpoints "may be other Web Services or client applications"
//! (§1, footnote 3); an unreplicated client is the degenerate case of a
//! group with `n = 1, f = 0`. [`ClientCore`] implements just the calling
//! half of a driver — issue `OutRequest`s, validate reply bundles — without
//! a voter, so plain simulation nodes (such as the TPC-W remote browser
//! emulators) can invoke replicated services cheaply.

use crate::cost::CostModel;
use crate::event::Event;
use crate::executor::CallId;
use crate::group::{GroupId, Topology};
use crate::messages::{decode_pmsg, encode_pmsg, reply_digest, request_tag, PMsg};
use bytes::Bytes;
use pws_crypto::auth::verify_bundle;
use pws_crypto::keys::KeyTable;
use pws_crypto::sha256::Digest32;
use pws_simnet::{Context, SimDuration};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// What a client observes about one of its calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientEvent {
    /// A validated reply arrived.
    Reply {
        /// The completed call.
        call: CallId,
        /// Reply payload.
        payload: Bytes,
    },
}

#[derive(Debug)]
struct Pending {
    target: GroupId,
    /// Dense per-target dedup sequence (see `Event::External::target_seq`).
    /// A read-only call holds `0` until (and unless) it falls back to the
    /// ordered path, which assigns the sequence lazily.
    target_seq: u64,
    done: bool,
    /// Still on the read-only fast path. Cleared when the call falls back.
    read_only: bool,
    payload: Bytes,
    retries: u64,
}

/// Read-reply tally for one outstanding fast-path read: one counted vote
/// per target replica (bounding a reply-flooding replica to a single entry)
/// and a payload-count per digest.
#[derive(Debug, Default)]
struct ReadTally {
    voted: HashSet<u32>,
    by_digest: HashMap<Digest32, (Bytes, usize)>,
}

/// The calling half of a Perpetual driver, for unreplicated endpoints.
#[derive(Debug)]
pub struct ClientCore {
    group: GroupId,
    topology: Arc<Topology>,
    keys: KeyTable,
    cost: CostModel,
    next_call: u64,
    /// Dense per-target sequence counters (the dedup key space; a sharded
    /// target's shards each see a contiguous stream).
    next_target_seq: HashMap<GroupId, u64>,
    pending: HashMap<u64, Pending>,
    /// Read-reply tallies for outstanding fast-path reads.
    read_tallies: HashMap<u64, ReadTally>,
    /// Override for the read-only reply quorum (default `2f_t + 1`, capped
    /// at `n_t`).
    read_only_quorum: Option<usize>,
}

impl ClientCore {
    /// Creates a client for the (size-1) `group` registered in `topology`.
    ///
    /// # Panics
    ///
    /// Panics if `group` is not registered or not of size 1.
    pub fn new(group: GroupId, topology: Arc<Topology>, master_seed: u64, cost: CostModel) -> Self {
        assert_eq!(topology.n(group), 1, "client groups have exactly 1 member");
        ClientCore {
            group,
            topology,
            keys: KeyTable::new(master_seed),
            cost,
            next_call: 0,
            next_target_seq: HashMap::new(),
            pending: HashMap::new(),
            read_tallies: HashMap::new(),
            read_only_quorum: None,
        }
    }

    /// Overrides the read-only reply quorum (default `2f_t + 1`).
    pub fn set_read_only_quorum(&mut self, quorum: Option<usize>) {
        self.read_only_quorum = quorum;
    }

    /// The client's group id.
    pub fn group(&self) -> GroupId {
        self.group
    }

    /// Number of calls still awaiting replies.
    pub fn outstanding(&self) -> usize {
        self.pending.values().filter(|p| !p.done).count()
    }

    /// Issues an asynchronous call to `target`; the reply arrives later via
    /// [`ClientCore::on_message`].
    pub fn call(&mut self, ctx: &mut Context<'_>, target: GroupId, payload: Bytes) -> CallId {
        let call_no = self.next_call;
        self.next_call += 1;
        let seq = self.next_target_seq.entry(target).or_insert(0);
        let target_seq = *seq;
        *seq += 1;
        self.pending.insert(
            call_no,
            Pending {
                target,
                target_seq,
                done: false,
                read_only: false,
                payload: payload.clone(),
                retries: 0,
            },
        );
        self.transmit(ctx, call_no, target, target_seq, 0, payload);
        ctx.metrics().incr("client.calls_issued");
        CallId(call_no)
    }

    /// Issues an ordered *configuration* call: the payload is wrapped with
    /// the [`crate::event::CONFIG_PREFIX`] marker so the target group
    /// orders it as a CLBFT config record — digest-covered like any
    /// request, but sealing a sequence slot of its own. Used for
    /// transaction decisions and reshard steps, where the slot boundary is
    /// the atomic configuration point.
    pub fn call_config(
        &mut self,
        ctx: &mut Context<'_>,
        target: GroupId,
        payload: Bytes,
    ) -> CallId {
        let call = self.call(ctx, target, crate::event::config_payload(&payload));
        ctx.metrics().incr("client.config_calls");
        call
    }

    /// Issues a *read-only* call on the fast path: every target replica is
    /// asked to answer from committed state, and the reply is accepted once
    /// `2f_t + 1` matching copies arrive — no agreement slot is consumed at
    /// the target. A [`ClientCore::retry`] on a still-read call falls back
    /// to the ordered path (consuming the per-target sequence then), so
    /// liveness never depends on the optimization.
    pub fn call_read_only(
        &mut self,
        ctx: &mut Context<'_>,
        target: GroupId,
        payload: Bytes,
    ) -> CallId {
        let call_no = self.next_call;
        self.next_call += 1;
        self.pending.insert(
            call_no,
            Pending {
                target,
                target_seq: 0,
                done: false,
                read_only: true,
                payload: payload.clone(),
                retries: 0,
            },
        );
        self.transmit_read(ctx, call_no, target, payload);
        ctx.metrics().incr("client.calls_issued");
        ctx.metrics().incr("client.reads_issued");
        CallId(call_no)
    }

    /// Retransmits an outstanding call, rotating the responder to the next
    /// target replica — the client half of Perpetual's fault handling for
    /// an unresponsive responder. A read-only call that failed to reach its
    /// reply quorum in time falls back to the ordered path here instead.
    /// No-op for completed or unknown calls.
    pub fn retry(&mut self, ctx: &mut Context<'_>, call: CallId) {
        let Some(p) = self.pending.get_mut(&call.0) else {
            return;
        };
        if p.done {
            return;
        }
        if p.read_only {
            // Quorum failure (slow replicas, view change, or > f lying
            // responders): demote to the ordered path. The per-target
            // sequence is consumed only now — pure-read workloads that
            // never time out leave the dedup space untouched.
            let target = p.target;
            let payload = p.payload.clone();
            let seq = self.next_target_seq.entry(target).or_insert(0);
            let target_seq = *seq;
            *seq += 1;
            let p = self.pending.get_mut(&call.0).expect("still pending");
            p.read_only = false;
            p.target_seq = target_seq;
            self.read_tallies.remove(&call.0);
            ctx.metrics().incr("clbft.ro.fallbacks");
            ctx.metrics().incr("client.call_retries");
            self.transmit(ctx, call.0, target, target_seq, 0, payload);
            return;
        }
        p.retries += 1;
        let (target, target_seq, retries, payload) =
            (p.target, p.target_seq, p.retries, p.payload.clone());
        ctx.metrics().incr("client.call_retries");
        self.transmit(ctx, call.0, target, target_seq, retries, payload);
    }

    fn transmit(
        &mut self,
        ctx: &mut Context<'_>,
        call_no: u64,
        target: GroupId,
        target_seq: u64,
        retries: u64,
        payload: Bytes,
    ) {
        let target_n = self.topology.n(target);
        let ev = Event::External {
            caller: self.group,
            caller_n: 1,
            req_no: call_no,
            target_seq,
            responder: ((call_no + retries) % target_n as u64) as u32,
            timeout_ms: 0,
            payload,
        };
        let msg = encode_pmsg(&PMsg::OutRequest(ev));
        for &node in self.topology.nodes(target) {
            ctx.spend(self.cost.send_cost(msg.len(), 0));
            ctx.send(node, msg.clone());
        }
    }

    fn transmit_read(
        &mut self,
        ctx: &mut Context<'_>,
        call_no: u64,
        target: GroupId,
        payload: Bytes,
    ) {
        let msg = encode_pmsg(&PMsg::ReadRequest {
            caller: self.group,
            caller_n: 1,
            req_no: call_no,
            payload,
        });
        for &node in self.topology.nodes(target) {
            ctx.spend(self.cost.send_cost(msg.len(), 0));
            ctx.send(node, msg.clone());
        }
    }

    /// Abandons a call locally (e.g. after a client-side timeout); later
    /// replies for it are ignored.
    pub fn abandon(&mut self, call: CallId) {
        if let Some(p) = self.pending.get_mut(&call.0) {
            p.done = true;
        }
    }

    /// Processes an incoming message; returns the validated reply if this
    /// message completed one of our calls.
    pub fn on_message(&mut self, msg: &[u8], ctx: &mut Context<'_>) -> Option<ClientEvent> {
        ctx.spend(self.cost.recv_cost(msg.len(), 0));
        let decoded = decode_pmsg(msg);
        if let Ok(PMsg::ReadReply {
            req_no,
            payload,
            share,
        }) = decoded
        {
            return self.on_read_reply(req_no, payload, share, ctx);
        }
        let Ok(PMsg::ReplyBundle {
            req_no,
            payload,
            shares,
        }) = decoded
        else {
            return None;
        };
        let p = self.pending.get_mut(&req_no)?;
        if p.done {
            return None;
        }
        let target_f = self.topology.f(p.target) as usize;
        if shares.iter().any(|s| s.from.group != p.target.0) {
            return None;
        }
        let digest = reply_digest(&payload);
        let me = self.topology.principal(self.group, 0);
        let tag = request_tag(self.group, req_no);
        ctx.spend(self.cost.mac.saturating_mul(shares.len() as u64));
        if !verify_bundle(&mut self.keys, &shares, &tag, &digest, me, target_f + 1) {
            ctx.metrics().incr("client.bundles_rejected");
            return None;
        }
        p.done = true;
        ctx.metrics().incr("client.calls_completed");
        Some(ClientEvent::Reply {
            call: CallId(req_no),
            payload,
        })
    }

    /// Tallies one replica's fast-path read answer; completes the call once
    /// `2f_t + 1` target replicas returned byte-identical payloads. The
    /// share MAC authenticates the claimed replica (pairwise keys), and one
    /// vote is counted per replica regardless of how many replies it sends.
    fn on_read_reply(
        &mut self,
        req_no: u64,
        payload: Bytes,
        share: pws_crypto::auth::BundleShare,
        ctx: &mut Context<'_>,
    ) -> Option<ClientEvent> {
        let p = self.pending.get(&req_no)?;
        if p.done || !p.read_only {
            return None;
        }
        let target = p.target;
        if share.from.group != target.0 || share.from.replica >= self.topology.n(target) {
            return None;
        }
        if share.reply_digest != reply_digest(&payload) {
            return None;
        }
        let tally = self.read_tallies.entry(req_no).or_default();
        if !tally.voted.insert(share.from.replica) {
            ctx.metrics().incr("clbft.ro.duplicate_votes");
            return None;
        }
        let me = self.topology.principal(self.group, 0);
        let tag = request_tag(self.group, req_no);
        ctx.spend(self.cost.mac);
        if !share.verify(&mut self.keys, &tag, me) {
            ctx.metrics().incr("clbft.ro.shares_rejected");
            return None;
        }
        let tally = self.read_tallies.get_mut(&req_no).expect("vote counted");
        let (_, count) = tally
            .by_digest
            .entry(share.reply_digest)
            .or_insert_with(|| (payload, 0));
        *count += 1;
        let count = *count;
        let target_f = self.topology.f(target) as usize;
        let target_n = self.topology.n(target) as usize;
        let threshold = self
            .read_only_quorum
            .unwrap_or((2 * target_f + 1).min(target_n));
        if count < threshold {
            return None;
        }
        let tally = self.read_tallies.remove(&req_no).expect("tally present");
        let (payload, _) = tally
            .by_digest
            .into_iter()
            .find(|(d, _)| *d == share.reply_digest)
            .expect("quorum digest present")
            .1;
        self.pending.get_mut(&req_no).expect("pending read").done = true;
        ctx.metrics().incr("client.calls_completed");
        ctx.metrics().incr("clbft.ro.accepted");
        Some(ClientEvent::Reply {
            call: CallId(req_no),
            payload,
        })
    }

    /// Convenience: milliseconds to wait before abandoning, for callers that
    /// implement client-side timeouts with simnet timers.
    pub fn suggested_timeout(&self) -> SimDuration {
        SimDuration::from_secs(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pws_simnet::NodeId;

    fn topo() -> Arc<Topology> {
        let mut t = Topology::new();
        t.register(GroupId(0), (0..4).map(NodeId::from_raw).collect());
        t.register(GroupId(1), vec![NodeId::from_raw(4)]);
        Arc::new(t)
    }

    #[test]
    #[should_panic(expected = "exactly 1 member")]
    fn rejects_replicated_group() {
        let t = topo();
        let _ = ClientCore::new(GroupId(0), t, 1, CostModel::FREE);
    }

    #[test]
    fn bookkeeping() {
        let t = topo();
        let mut c = ClientCore::new(GroupId(1), t, 1, CostModel::FREE);
        assert_eq!(c.group(), GroupId(1));
        assert_eq!(c.outstanding(), 0);
        c.pending.insert(
            0,
            Pending {
                target: GroupId(0),
                target_seq: 0,
                done: false,
                read_only: false,
                payload: Bytes::new(),
                retries: 0,
            },
        );
        assert_eq!(c.outstanding(), 1);
        c.abandon(CallId(0));
        assert_eq!(c.outstanding(), 0);
        assert!(c.suggested_timeout() > SimDuration::ZERO);
    }
}
