//! The CPU cost model.
//!
//! The paper's micro-benchmarks concluded that "the cost of authentication
//! and encryption at the ChannelAdapter layer dwarfs the cost of marshaling
//! and demarshaling XML requests at the Axis2 layer" (§6.4). The simulation
//! reproduces that structure by charging each node CPU time per
//! sent/received message for MAC + encryption work, plus per-byte costs.
//! Defaults are calibrated for a 2 GHz Opteron-class core.

use pws_simnet::SimDuration;

/// Per-node CPU costs charged by the Perpetual replica and client.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CostModel {
    /// Cost to MAC-authenticate and encrypt an outgoing message.
    pub send_crypto: SimDuration,
    /// Additional per-byte cost on send (stream cipher + framing).
    pub send_per_kb: SimDuration,
    /// Cost to verify and decrypt an incoming message.
    pub recv_crypto: SimDuration,
    /// Additional per-byte cost on receive.
    pub recv_per_kb: SimDuration,
    /// Cost to compute one extra MAC (authenticator entries, bundle shares).
    pub mac: SimDuration,
    /// Fixed protocol bookkeeping per delivered batch (authenticator
    /// bookkeeping, ordering-table updates). Charged once per agreement
    /// slot, however many requests the slot's batch carries.
    pub event_overhead: SimDuration,
    /// Marginal bookkeeping per additional request in a batch beyond the
    /// first (demarshal + dispatch; the authenticator work is amortized
    /// across the whole batch, which is the point of batching).
    pub batch_item: SimDuration,
    /// Fixed cost to serialize (or install) one application snapshot at a
    /// checkpoint boundary.
    pub snapshot_fixed: SimDuration,
    /// Additional per-kilobyte cost of snapshot serialization/installation.
    pub snapshot_per_kb: SimDuration,
    /// Cost to hash one snapshot page (incremental checkpoints charge this
    /// only for dirty pages; state transfer charges it per verified page).
    pub page_hash: SimDuration,
    /// Cost of answering one read-only request on the fast path (scratch
    /// execution against committed state, no agreement slot). Roughly the
    /// per-request share of `batch_item` — what a read pays instead of the
    /// full ordered `event_overhead` + three protocol rounds.
    pub ro_serve: SimDuration,
}

impl CostModel {
    /// The calibrated default. Values model the paper's JVM + JSSE
    /// (RSA/RC4/MD5 suite) stack on a 2 GHz Opteron: ~70 µs to authenticate
    /// and encrypt a message, a few µs per extra MAC. With these values the
    /// unreplicated two-tier null-request benchmark lands near the paper's
    /// Fig. 7 scale (~550 req/s).
    pub const DEFAULT: CostModel = CostModel {
        send_crypto: SimDuration::from_micros(45),
        send_per_kb: SimDuration::from_micros(20),
        recv_crypto: SimDuration::from_micros(45),
        recv_per_kb: SimDuration::from_micros(20),
        mac: SimDuration::from_micros(3),
        event_overhead: SimDuration::from_micros(260),
        batch_item: SimDuration::from_micros(90),
        snapshot_fixed: SimDuration::from_micros(120),
        snapshot_per_kb: SimDuration::from_micros(15),
        page_hash: SimDuration::from_micros(2),
        ro_serve: SimDuration::from_micros(90),
    };

    /// A zero-cost model (for protocol unit tests where CPU time is noise).
    pub const FREE: CostModel = CostModel {
        send_crypto: SimDuration::ZERO,
        send_per_kb: SimDuration::ZERO,
        recv_crypto: SimDuration::ZERO,
        recv_per_kb: SimDuration::ZERO,
        mac: SimDuration::ZERO,
        event_overhead: SimDuration::ZERO,
        batch_item: SimDuration::ZERO,
        snapshot_fixed: SimDuration::ZERO,
        snapshot_per_kb: SimDuration::ZERO,
        page_hash: SimDuration::ZERO,
        ro_serve: SimDuration::ZERO,
    };

    /// Total CPU cost of delivering one ordered batch of `len` requests:
    /// the fixed per-slot overhead plus the marginal per-request cost for
    /// every request beyond the first. `batch_cost(1)` equals the cost one
    /// unbatched event used to pay, so batching is free for singletons and
    /// strictly amortizing beyond.
    pub fn batch_cost(&self, len: usize) -> SimDuration {
        self.event_overhead + self.batch_item.saturating_mul(len.saturating_sub(1) as u64)
    }

    /// CPU cost of serializing or installing an application snapshot of
    /// `len` bytes (charged at checkpoint boundaries and state installs).
    pub fn snapshot_cost(&self, len: usize) -> SimDuration {
        self.snapshot_fixed + self.snapshot_per_kb.saturating_mul(len as u64 / 1024)
    }

    /// CPU cost of hashing (or verifying) `pages` snapshot pages. This is
    /// what an incremental checkpoint pays instead of `snapshot_cost` over
    /// the whole state: only dirty pages are re-hashed, so the charge stops
    /// scaling with total state size.
    pub fn page_cost(&self, pages: u64) -> SimDuration {
        self.page_hash.saturating_mul(pages)
    }

    /// Total CPU cost of sending a message of `len` bytes with `extra_macs`
    /// additional authenticator entries.
    pub fn send_cost(&self, len: usize, extra_macs: usize) -> SimDuration {
        self.send_crypto
            + self.send_per_kb.saturating_mul(len as u64 / 1024)
            + self.mac.saturating_mul(extra_macs as u64)
    }

    /// Total CPU cost of receiving and authenticating a message of `len`
    /// bytes with `extra_macs` verifications.
    pub fn recv_cost(&self, len: usize, extra_macs: usize) -> SimDuration {
        self.recv_crypto
            + self.recv_per_kb.saturating_mul(len as u64 / 1024)
            + self.mac.saturating_mul(extra_macs as u64)
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_costs_are_microseconds_scale() {
        let c = CostModel::default();
        assert!(c.send_cost(256, 0) >= SimDuration::from_micros(18));
        assert!(c.send_cost(256, 0) < SimDuration::from_millis(1));
    }

    #[test]
    fn per_kb_scaling() {
        let c = CostModel::DEFAULT;
        let small = c.send_cost(100, 0);
        let big = c.send_cost(10 * 1024, 0);
        assert!(big > small);
        assert_eq!((big - small).as_micros(), c.send_per_kb.as_micros() * 10);
    }

    #[test]
    fn extra_macs_add_cost() {
        let c = CostModel::DEFAULT;
        assert_eq!(
            (c.recv_cost(0, 10) - c.recv_cost(0, 0)).as_micros(),
            c.mac.as_micros() * 10
        );
    }

    #[test]
    fn free_model_is_zero() {
        let c = CostModel::FREE;
        assert_eq!(c.send_cost(1 << 20, 100), SimDuration::ZERO);
        assert_eq!(c.recv_cost(1 << 20, 100), SimDuration::ZERO);
        assert_eq!(c.batch_cost(16), SimDuration::ZERO);
        assert_eq!(c.snapshot_cost(1 << 20), SimDuration::ZERO);
    }

    #[test]
    fn snapshot_cost_scales_with_size() {
        let c = CostModel::DEFAULT;
        let small = c.snapshot_cost(100);
        let big = c.snapshot_cost(10 * 1024);
        assert_eq!(small, c.snapshot_fixed);
        assert_eq!(
            (big - small).as_micros(),
            c.snapshot_per_kb.as_micros() * 10
        );
    }

    #[test]
    fn page_cost_scales_with_dirty_pages_only() {
        let c = CostModel::DEFAULT;
        assert_eq!(c.page_cost(0), SimDuration::ZERO);
        assert_eq!(c.page_cost(10), c.page_hash.saturating_mul(10));
        // Re-hashing a handful of dirty pages must undercut a full
        // snapshot serialization of even a modest state.
        assert!(c.page_cost(4) < c.snapshot_cost(64 * 1024));
        assert_eq!(CostModel::FREE.page_cost(1 << 20), SimDuration::ZERO);
    }

    #[test]
    fn read_only_serve_undercuts_an_ordered_slot() {
        let c = CostModel::DEFAULT;
        assert!(
            c.ro_serve < c.batch_cost(1),
            "the fast path must beat even a singleton ordered slot"
        );
        assert_eq!(CostModel::FREE.ro_serve, SimDuration::ZERO);
    }

    #[test]
    fn batch_cost_amortizes() {
        let c = CostModel::DEFAULT;
        assert_eq!(c.batch_cost(0), c.event_overhead);
        assert_eq!(c.batch_cost(1), c.event_overhead, "singletons pay no extra");
        let sixteen = c.batch_cost(16);
        let one_by_one = c.event_overhead.saturating_mul(16);
        assert!(
            sixteen < one_by_one,
            "a 16-batch must be cheaper than 16 singletons: {sixteen:?} vs {one_by_one:?}"
        );
        assert_eq!(sixteen, c.event_overhead + c.batch_item.saturating_mul(15));
    }
}
