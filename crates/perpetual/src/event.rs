//! Ordered events: the payloads the voter group agrees on.
//!
//! Perpetual voters run CLBFT over a single totally-ordered stream of
//! *events* per group: external requests from calling services, results of
//! the group's own outcalls, deterministic aborts, and time votes (paper
//! §2.1.1 and §4.2). Each event is canonically encoded into a
//! `pws_clbft::Request` so every correct voter derives an identical digest.

use crate::group::GroupId;
use bytes::Bytes;
use pws_clbft::wire::{Decoder, Encoder, WireError};
use pws_clbft::{Request, RequestId};
use pws_crypto::auth::{Authenticator, BundleShare};
use pws_crypto::keys::Principal;
use pws_crypto::mac::Mac;
use pws_crypto::sha256::Digest32;

pub(crate) fn put_principal(e: &mut Encoder, p: &Principal) {
    e.put_u32(p.group);
    e.put_u32(p.replica);
}

pub(crate) fn get_principal(d: &mut Decoder<'_>) -> Result<Principal, WireError> {
    Ok(Principal::new(d.u32()?, d.u32()?))
}

pub(crate) fn put_share(e: &mut Encoder, s: &BundleShare) {
    put_principal(e, &s.from);
    e.put_digest(&s.reply_digest);
    let entries: Vec<_> = s.auth.entries().cloned().collect();
    e.put_u32(entries.len() as u32);
    for (p, mac) in &entries {
        put_principal(e, p);
        e.put_bytes(mac.as_bytes());
    }
}

pub(crate) fn get_share(d: &mut Decoder<'_>) -> Result<BundleShare, WireError> {
    let from = get_principal(d)?;
    let reply_digest = d.digest()?;
    let n = d.u32()? as usize;
    if n > 4096 {
        return Err(decode_err());
    }
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let p = get_principal(d)?;
        let mac_bytes = d.bytes()?;
        if mac_bytes.len() != 32 {
            return Err(decode_err());
        }
        let mut raw = [0u8; 32];
        raw.copy_from_slice(&mac_bytes);
        entries.push((p, Mac::from_bytes(raw)));
    }
    Ok(BundleShare {
        from,
        reply_digest,
        auth: Authenticator::from_entries(entries),
    })
}

/// An event in a voter group's total order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A request from another service (Perpetual stages 1–3).
    External {
        /// The calling group.
        caller: GroupId,
        /// Size of the calling group (determines the `f_c + 1` threshold).
        caller_n: u32,
        /// Caller-assigned call number (unique within the caller group;
        /// keys reply routing and retransmits).
        req_no: u64,
        /// Caller-assigned *per-target* sequence number: dense within
        /// `(caller, target group)`, so it keys deduplication. A caller's
        /// global `req_no` stream is scattered across shards by key
        /// routing — using it for dedup would leave permanent holes in
        /// every shard's per-origin compaction ([`pws_clbft::ExecutedSet`]
        /// would degenerate to O(history)); the per-target counter stays
        /// contiguous at each receiving group by construction.
        target_seq: u64,
        /// Index of the target replica chosen as responder for the reply.
        responder: u32,
        /// Timeout the caller wants (0 = never abort).
        timeout_ms: u64,
        /// Application payload.
        payload: Bytes,
    },
    /// The validated result of one of this group's own outcalls
    /// (stages 7–9). The event carries the reply bundle's shares as an
    /// embedded proof, so *any* voter — not just the driver that received
    /// the bundle — can check `f_t + 1` target replicas vouch for the
    /// payload before agreeing to order it. This is what defeats a
    /// responder that equivocates between calling drivers.
    Result {
        /// Our call number.
        call_no: u64,
        /// Digest of the reply payload (what the bundle shares vouch for).
        digest: Digest32,
        /// The reply payload.
        payload: Bytes,
        /// Bundle shares proving `f_t + 1` target replicas produced
        /// `payload`.
        shares: Vec<BundleShare>,
    },
    /// Deterministic abort of an outcall whose timeout expired (§4.2).
    Abort {
        /// Our call number.
        call_no: u64,
    },
    /// An agreed wall-clock value for a `currentTimeMillis`/`timestamp`
    /// query (§4.2): the primary's suggestion wins the vote.
    TimeVote {
        /// Query token (unique per group).
        token: u64,
        /// The suggested milliseconds-since-epoch value.
        millis: u64,
    },
}

const EV_EXTERNAL: u8 = 1;
const EV_RESULT: u8 = 2;
const EV_ABORT: u8 = 3;
const EV_TIME: u8 = 4;

/// Origin-name constants for CLBFT request ids, one per event family, so
/// ids never collide across families.
mod origin {
    pub fn external(caller: u32) -> u64 {
        0x4558_5400_0000_0000 | caller as u64 // "EXT" | caller
    }
    pub const RESULT: u64 = 0x5245_5355_4c54_0000;
    pub const ABORT: u64 = 0x4142_4f52_5400_0000;
    pub const TIME: u64 = 0x5449_4d45_0000_0000;

    pub fn read(caller: u32) -> u64 {
        0x5244_4f00_0000_0000 | caller as u64 // "RDO" | caller
    }

    pub const READ_MASK: u64 = 0xffff_ff00_0000_0000;
}

/// Whether a CLBFT request-id origin belongs to a client-visible request
/// family (external calls and fast-path reads). Only these open lifecycle
/// spans — internal agreement records (results, aborts, time votes) would
/// otherwise open spans that never close.
pub(crate) fn is_traced_origin(origin: u64) -> bool {
    (origin >> 32) == 0x4558_5400 || (origin & origin::READ_MASK) == origin::read(0)
}

/// The span key `(origin, counter)` of an external request from `caller`
/// with per-target dedup sequence `target_seq` — the same id
/// [`Event::request_id`] assigns, exposed so the driver can stamp span
/// phases without re-encoding the event.
pub(crate) fn external_span_id(caller: GroupId, target_seq: u64) -> (u64, u64) {
    (origin::external(caller.0), target_seq)
}

/// Marker prefix for configuration-record payloads (transaction decisions,
/// reshard steps, epoch flips). A caller that wraps its application payload
/// with [`config_payload`] gets the whole event ordered as a CLBFT *config
/// record* ([`pws_clbft::Request::config_record`]): digest-covered like any
/// request, but sealing a sequence slot of its own. SOAP payloads always
/// start with `<`, so the prefix cannot collide with application traffic —
/// and events without it encode byte-identically to every prior release.
pub const CONFIG_PREFIX: [u8; 4] = *b"PWSC";

/// Wraps `payload` so the event carrying it orders as a config record.
pub fn config_payload(payload: &[u8]) -> Bytes {
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&CONFIG_PREFIX);
    buf.extend_from_slice(payload);
    Bytes::from(buf)
}

/// Strips the config marker, returning the application payload if `buf`
/// is a config-record payload and `None` otherwise.
pub fn strip_config_payload(buf: &[u8]) -> Option<&[u8]> {
    buf.strip_prefix(&CONFIG_PREFIX[..])
}

/// Builds the CLBFT read-only request for a fast-path read: never ordered,
/// never executed — a replica whose read gate is open answers it directly
/// from committed state ([`pws_clbft::Action::ReadOnly`]). The id encodes
/// `(caller, req_no)` so the serving driver can address the reply; recover
/// them with [`read_request_parts`].
pub fn read_request(caller: GroupId, req_no: u64, payload: Bytes) -> Request {
    Request::read_only(RequestId::new(origin::read(caller.0), req_no), payload)
}

/// Recovers `(caller, req_no)` from an id built by [`read_request`], or
/// `None` if the id belongs to a different event family.
pub fn read_request_parts(id: RequestId) -> Option<(GroupId, u64)> {
    if id.origin & origin::READ_MASK == origin::read(0) {
        Some((GroupId((id.origin & 0xffff_ffff) as u32), id.counter))
    } else {
        None
    }
}

impl Event {
    /// Canonically encodes this event.
    pub fn encode(&self) -> Bytes {
        let mut e = Encoder::new();
        match self {
            Event::External {
                caller,
                caller_n,
                req_no,
                target_seq,
                responder,
                timeout_ms,
                payload,
            } => {
                e.put_u8(EV_EXTERNAL);
                e.put_u32(caller.0);
                e.put_u32(*caller_n);
                e.put_u64(*req_no);
                e.put_u64(*target_seq);
                e.put_u32(*responder);
                e.put_u64(*timeout_ms);
                e.put_bytes(payload);
            }
            Event::Result {
                call_no,
                digest,
                payload,
                shares,
            } => {
                e.put_u8(EV_RESULT);
                e.put_u64(*call_no);
                e.put_digest(digest);
                e.put_bytes(payload);
                e.put_u32(shares.len() as u32);
                for s in shares {
                    put_share(&mut e, s);
                }
            }
            Event::Abort { call_no } => {
                e.put_u8(EV_ABORT);
                e.put_u64(*call_no);
            }
            Event::TimeVote { token, millis } => {
                e.put_u8(EV_TIME);
                e.put_u64(*token);
                e.put_u64(*millis);
            }
        }
        e.finish()
    }

    /// Decodes an event.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on malformed input.
    pub fn decode(buf: &[u8]) -> Result<Event, WireError> {
        let mut d = Decoder::new(buf);
        let tag = d.u8()?;
        let ev = match tag {
            EV_EXTERNAL => Event::External {
                caller: GroupId(d.u32()?),
                caller_n: d.u32()?,
                req_no: d.u64()?,
                target_seq: d.u64()?,
                responder: d.u32()?,
                timeout_ms: d.u64()?,
                payload: d.bytes()?,
            },
            EV_RESULT => {
                let call_no = d.u64()?;
                let digest = d.digest()?;
                let payload = d.bytes()?;
                let n = d.u32()? as usize;
                if n > 4096 {
                    return Err(decode_err());
                }
                let mut shares = Vec::with_capacity(n);
                for _ in 0..n {
                    shares.push(get_share(&mut d)?);
                }
                Event::Result {
                    call_no,
                    digest,
                    payload,
                    shares,
                }
            }
            EV_ABORT => Event::Abort { call_no: d.u64()? },
            EV_TIME => Event::TimeVote {
                token: d.u64()?,
                millis: d.u64()?,
            },
            _ => {
                return Err(decode_err());
            }
        };
        d.finish()?;
        Ok(ev)
    }

    /// The CLBFT request id for this event.
    ///
    /// Ids deduplicate re-submissions: every voter that proposes the same
    /// logical event produces the same id. Time votes intentionally share an
    /// id per token even though payloads differ across replicas — the
    /// primary's suggestion is the one that gets ordered (§4.2).
    pub fn request_id(&self) -> RequestId {
        match self {
            // Dedup keys on the dense per-target sequence number, not the
            // caller's global `req_no`: at any one (possibly sharded)
            // target group the counters stay contiguous, so the executed
            // set compacts to a per-caller prefix instead of a sparse
            // residue.
            Event::External {
                caller, target_seq, ..
            } => RequestId::new(origin::external(caller.0), *target_seq),
            Event::Result {
                call_no, digest, ..
            } => {
                // Different digests make different requests: a conflicting
                // (equivocated) result is a distinct proposal; the first one
                // ordered wins at execution time.
                let mut lo = [0u8; 8];
                lo.copy_from_slice(&digest.as_bytes()[..8]);
                RequestId::new(origin::RESULT ^ u64::from_be_bytes(lo), *call_no)
            }
            Event::Abort { call_no } => RequestId::new(origin::ABORT, *call_no),
            Event::TimeVote { token, .. } => RequestId::new(origin::TIME, *token),
        }
    }

    /// Wraps this event into a CLBFT request. An external event whose
    /// payload carries the [`CONFIG_PREFIX`] marker becomes a config
    /// record — ordered in a sealed slot of its own.
    pub fn to_request(&self) -> Request {
        let mut req = Request::new(self.request_id(), self.encode());
        if let Event::External { payload, .. } = self {
            req.config = strip_config_payload(payload).is_some();
        }
        req
    }
}

fn decode_err() -> WireError {
    // Round-trip through the public decoder to produce a WireError value.
    Event::decode(&[]).expect_err("empty input always fails")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pws_crypto::sha256;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::External {
                caller: GroupId(3),
                caller_n: 4,
                req_no: 77,
                target_seq: 41,
                responder: 2,
                timeout_ms: 5000,
                payload: Bytes::from_static(b"do-it"),
            },
            Event::Result {
                call_no: 9,
                digest: sha256(b"reply"),
                payload: Bytes::from_static(b"reply"),
                shares: {
                    let mut keys = pws_crypto::keys::KeyTable::new(1);
                    vec![BundleShare::build(
                        &mut keys,
                        Principal::new(2, 0),
                        b"tag",
                        sha256(b"reply"),
                        &[Principal::new(1, 0), Principal::new(1, 1)],
                    )]
                },
            },
            Event::Abort { call_no: 9 },
            Event::TimeVote {
                token: 1,
                millis: 1_190_000_000_123,
            },
        ]
    }

    #[test]
    fn roundtrip_all_variants() {
        for ev in sample_events() {
            let bytes = ev.encode();
            assert_eq!(Event::decode(&bytes).unwrap(), ev);
        }
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Event::decode(&[]).is_err());
        assert!(Event::decode(&[99]).is_err());
        assert!(Event::decode(&[EV_ABORT, 1]).is_err());
        let mut ok = sample_events()[3].encode().to_vec();
        ok.push(0);
        assert!(Event::decode(&ok).is_err(), "trailing bytes rejected");
    }

    #[test]
    fn request_ids_are_distinct_across_families() {
        let evs = sample_events();
        let ids: std::collections::HashSet<_> = evs.iter().map(|e| e.request_id()).collect();
        assert_eq!(ids.len(), evs.len());
    }

    #[test]
    fn time_votes_share_id_per_token() {
        let a = Event::TimeVote {
            token: 5,
            millis: 100,
        };
        let b = Event::TimeVote {
            token: 5,
            millis: 999,
        };
        assert_eq!(a.request_id(), b.request_id());
        let c = Event::TimeVote {
            token: 6,
            millis: 100,
        };
        assert_ne!(a.request_id(), c.request_id());
    }

    #[test]
    fn conflicting_results_get_distinct_ids() {
        let a = Event::Result {
            call_no: 1,
            digest: sha256(b"x"),
            payload: Bytes::from_static(b"x"),
            shares: vec![],
        };
        let b = Event::Result {
            call_no: 1,
            digest: sha256(b"y"),
            payload: Bytes::from_static(b"y"),
            shares: vec![],
        };
        assert_ne!(a.request_id(), b.request_id());
    }

    #[test]
    fn read_request_roundtrips_caller_and_req_no() {
        let r = read_request(GroupId(7), 42, Bytes::from_static(b"q"));
        assert!(r.read_only);
        assert_eq!(read_request_parts(r.id), Some((GroupId(7), 42)));
        // Read ids never collide with ordered-event families.
        for ev in sample_events() {
            assert_eq!(read_request_parts(ev.request_id()), None);
            assert_ne!(ev.request_id(), r.id);
        }
    }

    #[test]
    fn to_request_is_stable() {
        let ev = &sample_events()[0];
        let r1 = ev.to_request();
        let r2 = ev.to_request();
        assert_eq!(r1.digest(), r2.digest());
        assert_eq!(r1.id, ev.request_id());
        assert!(!r1.config, "plain payloads never become config records");
    }

    #[test]
    fn config_payload_marks_the_request_and_roundtrips() {
        let wrapped = config_payload(b"reshardExport:2");
        assert_eq!(
            strip_config_payload(&wrapped),
            Some(&b"reshardExport:2"[..])
        );
        assert_eq!(strip_config_payload(b"<env>..</env>"), None);
        let ev = Event::External {
            caller: GroupId(3),
            caller_n: 4,
            req_no: 77,
            target_seq: 41,
            responder: 2,
            timeout_ms: 0,
            payload: wrapped,
        };
        let r = ev.to_request();
        assert!(r.config, "marked payloads order as config records");
        assert!(!r.read_only);
        // Only External payloads are inspected.
        assert!(!Event::Abort { call_no: 1 }.to_request().config);
    }
}
