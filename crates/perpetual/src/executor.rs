//! The executor interface: the "black box capturing application behavior"
//! hosted by each driver (paper §2.1.1).
//!
//! Executors are deterministic state machines: the voter group delivers an
//! identical event sequence to every replica's executor, and executors may
//! only affect the world through [`AppOutput`] commands, so all correct
//! replicas produce identical behaviour.

use crate::group::GroupId;
use bytes::Bytes;
use pws_simnet::{AuditEvent, ProtoFamily, SimDuration};
use std::fmt;

/// Identifies one of this service's own outcalls.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CallId(pub u64);

impl fmt::Debug for CallId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "call#{}", self.0)
    }
}

/// Identifies an incoming request, for addressing the reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestHandle {
    /// The calling group.
    pub caller: GroupId,
    /// The caller's call number.
    pub req_no: u64,
}

/// An event delivered to the executor, in the group-agreed total order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppEvent {
    /// Delivered exactly once, before any other event. Carries the
    /// group-agreed seed for deterministic randomness (§4.2: `random()`).
    Init {
        /// Group-agreed random seed.
        seed: u64,
    },
    /// An external request to execute (the service acts as target).
    Request {
        /// Handle for replying.
        handle: RequestHandle,
        /// Application payload.
        payload: Bytes,
    },
    /// A reply to one of our own outcalls (the service acts as caller).
    Reply {
        /// The completed call.
        call: CallId,
        /// Reply payload.
        payload: Bytes,
    },
    /// One of our outcalls was deterministically aborted after its timeout.
    Aborted {
        /// The aborted call.
        call: CallId,
    },
    /// The agreed answer to a time query (§4.2).
    Time {
        /// The token returned by [`AppOutput::query_time`].
        token: u64,
        /// Agreed milliseconds since the epoch.
        millis: u64,
    },
}

/// Commands an executor may issue; collected per event delivery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppCmd {
    /// Issue an asynchronous request to another service.
    Call {
        /// The call id assigned.
        call: CallId,
        /// The target group.
        target: GroupId,
        /// Payload.
        payload: Bytes,
        /// Abort timeout; `None` means never abort (the paper's default).
        timeout: Option<SimDuration>,
        /// Read-only hint: the call must not mutate target state, so the
        /// driver may route it over the unordered fast path (answered from
        /// the target's committed state, no agreement slot).
        read_only: bool,
    },
    /// Send a reply to an external request.
    Reply {
        /// The request being answered.
        to: RequestHandle,
        /// Reply payload.
        payload: Bytes,
    },
    /// Ask the voter group to agree on the current time.
    QueryTime {
        /// Token that will come back in [`AppEvent::Time`].
        token: u64,
    },
    /// Consume simulated CPU time (models the application's computation).
    Spend(SimDuration),
}

/// An observability emission queued by the application layer during one
/// event delivery and applied by the hosting replica afterwards (executors
/// own no clock, metrics registry, or auditor handle). Purely
/// observational: no protocol decision may read these.
#[derive(Debug, Clone, PartialEq)]
pub enum AppObs {
    /// A protocol-plane span phase sighting (transaction / reshard spans;
    /// see `pws_simnet::ProtoKey`). The hosting replica supplies the group.
    Proto {
        /// Span family (`Txn`, `Reshard`, ...).
        family: ProtoFamily,
        /// Span id within the family (folded txn id, reshard epoch, ...).
        id: u64,
        /// Phase index into the family's phase table.
        phase: usize,
        /// Optional payload (participant count, entries moved, ...).
        count: u64,
    },
    /// An observation for the online protocol auditor.
    Audit(AuditEvent),
    /// A time-series gauge sample (e.g. the transaction lock-table size).
    Gauge {
        /// Gauge name (`ts.*` convention).
        name: String,
        /// Sampled value.
        value: f64,
    },
}

/// Collects an executor's commands during one event delivery.
///
/// Call and token ids are assigned deterministically from counters that the
/// driver persists across deliveries, so all replicas assign identical ids.
#[derive(Debug)]
pub struct AppOutput {
    pub(crate) cmds: Vec<AppCmd>,
    pub(crate) metrics: Vec<String>,
    pub(crate) obs: Vec<AppObs>,
    next_call: u64,
    next_token: u64,
}

impl AppOutput {
    /// Creates an output collector starting from the driver's counters.
    pub fn new(next_call: u64, next_token: u64) -> Self {
        AppOutput {
            cmds: Vec::new(),
            metrics: Vec::new(),
            obs: Vec::new(),
            next_call,
            next_token,
        }
    }

    /// Queues a counter increment the hosting replica applies after this
    /// delivery (executors have no metrics registry of their own). Used by
    /// the Web-Services layer for routing observability (`clbft.shard.*`).
    pub fn incr_metric(&mut self, name: impl Into<String>) {
        self.metrics.push(name.into());
    }

    /// Drains the queued metric increments.
    pub fn take_metrics(&mut self) -> Vec<String> {
        std::mem::take(&mut self.metrics)
    }

    /// Queues a protocol-plane span phase sighting; the hosting replica
    /// timestamps it and attaches its group id.
    pub fn proto(&mut self, family: ProtoFamily, id: u64, phase: usize, count: u64) {
        self.obs.push(AppObs::Proto {
            family,
            id,
            phase,
            count,
        });
    }

    /// Queues an observation for the online protocol auditor.
    pub fn audit(&mut self, ev: AuditEvent) {
        self.obs.push(AppObs::Audit(ev));
    }

    /// Queues a time-series gauge sample.
    pub fn gauge(&mut self, name: impl Into<String>, value: f64) {
        self.obs.push(AppObs::Gauge {
            name: name.into(),
            value,
        });
    }

    /// Drains the queued observability emissions.
    pub fn take_obs(&mut self) -> Vec<AppObs> {
        std::mem::take(&mut self.obs)
    }

    /// Issues an asynchronous call to `target`; returns its id. The reply
    /// (or abort) arrives later as an [`AppEvent`]. This is the paper's
    /// non-blocking `send()` (Fig. 3).
    pub fn call(
        &mut self,
        target: GroupId,
        payload: Bytes,
        timeout: Option<SimDuration>,
    ) -> CallId {
        self.call_inner(target, payload, timeout, false)
    }

    /// Issues an asynchronous *read-only* call: the application promises the
    /// request does not mutate target state, letting the driver serve it on
    /// the unordered fast path (2f+1 matching replies against committed
    /// state, no agreement slot). Semantics otherwise match [`Self::call`];
    /// the reply or abort still arrives as an [`AppEvent`].
    pub fn call_read_only(
        &mut self,
        target: GroupId,
        payload: Bytes,
        timeout: Option<SimDuration>,
    ) -> CallId {
        self.call_inner(target, payload, timeout, true)
    }

    fn call_inner(
        &mut self,
        target: GroupId,
        payload: Bytes,
        timeout: Option<SimDuration>,
        read_only: bool,
    ) -> CallId {
        let call = CallId(self.next_call);
        self.next_call += 1;
        self.cmds.push(AppCmd::Call {
            call,
            target,
            payload,
            timeout,
            read_only,
        });
        call
    }

    /// Replies to an external request (the paper's `sendReply()`).
    pub fn reply(&mut self, to: RequestHandle, payload: Bytes) {
        self.cmds.push(AppCmd::Reply { to, payload });
    }

    /// Requests an agreed clock reading; the answer arrives as
    /// [`AppEvent::Time`] with the returned token (the paper's
    /// `currentTimeMillis()`/`timestamp()`).
    pub fn query_time(&mut self) -> u64 {
        let token = self.next_token;
        self.next_token += 1;
        self.cmds.push(AppCmd::QueryTime { token });
        token
    }

    /// Burns simulated CPU time at this replica (models computation; drives
    /// the Fig. 8 experiment).
    pub fn spend(&mut self, d: SimDuration) {
        self.cmds.push(AppCmd::Spend(d));
    }

    /// The counters after this delivery, to persist in the driver.
    pub fn counters(&self) -> (u64, u64) {
        (self.next_call, self.next_token)
    }

    /// The collected commands.
    pub fn cmds(&self) -> &[AppCmd] {
        &self.cmds
    }
}

/// A deterministic application hosted by a driver.
///
/// Implementations must be deterministic functions of the event sequence:
/// no wall clocks, no OS randomness, no thread timing. Use
/// [`AppOutput::query_time`] and the [`AppEvent::Init`] seed instead, which
/// is exactly the discipline the Perpetual-WS `Utils` API enforces (§4.2).
/// The `Any` supertrait enables typed access after a run via
/// [`crate::PerpetualReplica::executor_mut`].
pub trait Executor: std::any::Any {
    /// Handles the next event in the agreed order.
    fn on_event(&mut self, ev: AppEvent, out: &mut AppOutput);

    /// Captures the executor's application state at a sequence boundary,
    /// for checkpoint certificates and state transfer. Must be a
    /// deterministic function of the delivered event sequence (the bytes
    /// feed the checkpoint digest replicas vote on). The default captures
    /// nothing — correct only for stateless executors.
    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restores a previously captured [`Executor::snapshot`] during state
    /// transfer or proactive recovery.
    fn restore(&mut self, _snapshot: &[u8]) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_ids_are_sequential_and_persisted() {
        let mut out = AppOutput::new(5, 2);
        let a = out.call(GroupId(1), Bytes::from_static(b"x"), None);
        let b = out.call(
            GroupId(2),
            Bytes::from_static(b"y"),
            Some(SimDuration::from_millis(10)),
        );
        assert_eq!(a, CallId(5));
        assert_eq!(b, CallId(6));
        let t = out.query_time();
        assert_eq!(t, 2);
        assert_eq!(out.counters(), (7, 3));
        assert_eq!(out.cmds().len(), 3);
    }

    #[test]
    fn read_only_calls_share_the_id_space_and_set_the_flag() {
        let mut out = AppOutput::new(0, 0);
        let a = out.call(GroupId(1), Bytes::from_static(b"w"), None);
        let b = out.call_read_only(GroupId(1), Bytes::from_static(b"r"), None);
        assert_eq!((a, b), (CallId(0), CallId(1)));
        match (&out.cmds()[0], &out.cmds()[1]) {
            (
                AppCmd::Call {
                    read_only: false, ..
                },
                AppCmd::Call {
                    read_only: true, ..
                },
            ) => {}
            other => panic!("unexpected cmds: {other:?}"),
        }
    }

    #[test]
    fn reply_and_spend_record_cmds() {
        let mut out = AppOutput::new(0, 0);
        let h = RequestHandle {
            caller: GroupId(9),
            req_no: 4,
        };
        out.reply(h, Bytes::from_static(b"r"));
        out.spend(SimDuration::from_millis(3));
        assert_eq!(
            out.cmds()[0],
            AppCmd::Reply {
                to: h,
                payload: Bytes::from_static(b"r")
            }
        );
        assert_eq!(out.cmds()[1], AppCmd::Spend(SimDuration::from_millis(3)));
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", CallId(3)), "call#3");
    }
}
