//! Byzantine fault injection modes for replicas, used by tests and the
//! fault-isolation experiments.

/// How a replica misbehaves (if at all).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultMode {
    /// Follows the protocol.
    #[default]
    Correct,
    /// Drops every input and sends nothing (crash-like, but the node is
    /// still "up" from the network's point of view).
    Silent,
    /// Participates in agreement but produces corrupted reply shares, as a
    /// compromised executor would.
    CorruptReplies,
    /// When serving as responder, sends a valid bundle to some calling
    /// drivers and a corrupted one to others (tests fault isolation on the
    /// calling side).
    EquivocatingResponder,
    /// Churny mode: after `after_ms` of virtual time the replica silently
    /// drops to a stale state — its voter log and driver bookkeeping are
    /// wiped (the hosted application is left frozen: nothing executes
    /// below the fresh watermark, and the install overwrites it wholesale)
    /// as if the process rebooted from an empty disk without telling
    /// anyone. The replica keeps participating from that stale state; only
    /// checkpoint-vote lag evidence and state transfer (never retransmit
    /// storms) can bring it back.
    StaleDrop {
        /// Virtual milliseconds after start at which the drop happens.
        after_ms: u64,
    },
    /// Like [`FaultMode::StaleDrop`], but the reboot also loses the local
    /// page store: the replica comes back *cold* and state transfer must
    /// ship every page instead of only the ones that changed. The
    /// warm/cold pair is what the delta-recovery experiments compare.
    StaleDropCold {
        /// Virtual milliseconds after start at which the drop happens.
        after_ms: u64,
    },
    /// Serves state transfer like a correct replica but corrupts the page
    /// bytes in every `PageResponse` it sends. A fetcher must reject each
    /// such page against the certified Merkle manifest (counting it) and
    /// converge through honest responders — this mode can stall a
    /// transfer, never poison it.
    CorruptPages,
    /// A Byzantine primary that equivocates: each pre-prepare it broadcasts
    /// is delivered intact to most backups, but one backup receives a
    /// variant carrying a different batch (and therefore digest) for the
    /// same `(view, seq)` slot. Honest backups keep the first pre-prepare
    /// they accept, so agreement is safe; the online invariant auditor must
    /// flag the conflicting digests (`pre-prepare-equivocation`).
    EquivocatingPrimary,
}

impl FaultMode {
    /// Whether the replica participates at all.
    pub fn is_silent(self) -> bool {
        matches!(self, FaultMode::Silent)
    }

    /// The virtual time (ms) at which this mode wipes the replica, if any.
    pub fn stale_drop_after_ms(self) -> Option<u64> {
        match self {
            FaultMode::StaleDrop { after_ms } | FaultMode::StaleDropCold { after_ms } => {
                Some(after_ms)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_correct() {
        assert_eq!(FaultMode::default(), FaultMode::Correct);
        assert!(!FaultMode::Correct.is_silent());
        assert!(FaultMode::Silent.is_silent());
        assert!(!FaultMode::CorruptReplies.is_silent());
        assert!(!FaultMode::CorruptPages.is_silent());
    }

    #[test]
    fn both_stale_drops_expose_their_deadline() {
        assert_eq!(
            FaultMode::StaleDrop { after_ms: 5 }.stale_drop_after_ms(),
            Some(5)
        );
        assert_eq!(
            FaultMode::StaleDropCold { after_ms: 7 }.stale_drop_after_ms(),
            Some(7)
        );
        assert_eq!(FaultMode::Correct.stale_drop_after_ms(), None);
    }
}
