//! Replica groups and deployment topology.

use pws_crypto::keys::Principal;
use pws_simnet::NodeId;
use std::collections::BTreeMap;
use std::fmt;

/// Identifies one replicated service (or an unreplicated endpoint, which is
/// a degenerate group of size 1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GroupId(pub u32);

impl fmt::Debug for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl fmt::Display for GroupId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

#[derive(Debug, Clone)]
struct GroupInfo {
    nodes: Vec<NodeId>,
}

/// The static deployment map: which simnet nodes host which replica of
/// which group. The Perpetual-WS paper stores this in `replicas.xml`
/// (§5.2); `perpetual-ws::deployment` parses that format into this struct.
#[derive(Debug, Clone, Default)]
pub struct Topology {
    groups: BTreeMap<GroupId, GroupInfo>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Registers a group and the nodes hosting its replicas, in replica-index
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if the group was already registered or `nodes` is not a legal
    /// BFT group size (`3f + 1`).
    pub fn register(&mut self, group: GroupId, nodes: Vec<NodeId>) {
        assert!(
            !self.groups.contains_key(&group),
            "group {group:?} registered twice"
        );
        let n = nodes.len() as u32;
        assert!(
            n >= 1 && (n - 1).is_multiple_of(3),
            "group size must be 3f+1, got {n}"
        );
        self.groups.insert(group, GroupInfo { nodes });
    }

    /// Number of replicas in `group`.
    ///
    /// # Panics
    ///
    /// Panics if the group is unknown.
    pub fn n(&self, group: GroupId) -> u32 {
        self.info(group).nodes.len() as u32
    }

    /// Fault tolerance of `group`: `f = (n-1)/3`.
    pub fn f(&self, group: GroupId) -> u32 {
        (self.n(group) - 1) / 3
    }

    /// The simnet node hosting replica `idx` of `group`.
    ///
    /// # Panics
    ///
    /// Panics if the group or index is unknown.
    pub fn node(&self, group: GroupId, idx: u32) -> NodeId {
        self.info(group).nodes[idx as usize]
    }

    /// All nodes of `group`, in replica order.
    pub fn nodes(&self, group: GroupId) -> &[NodeId] {
        &self.info(group).nodes
    }

    /// The crypto principal of replica `idx` of `group`.
    pub fn principal(&self, group: GroupId, idx: u32) -> Principal {
        Principal::new(group.0, idx)
    }

    /// Principals of every replica of `group`.
    pub fn principals(&self, group: GroupId) -> Vec<Principal> {
        (0..self.n(group))
            .map(|i| Principal::new(group.0, i))
            .collect()
    }

    /// Whether `group` is registered.
    pub fn contains(&self, group: GroupId) -> bool {
        self.groups.contains_key(&group)
    }

    /// Iterates over registered group ids.
    pub fn group_ids(&self) -> impl Iterator<Item = GroupId> + '_ {
        self.groups.keys().copied()
    }

    fn info(&self, group: GroupId) -> &GroupInfo {
        self.groups
            .get(&group)
            .unwrap_or_else(|| panic!("unknown group {group:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nodes(range: std::ops::Range<u32>) -> Vec<NodeId> {
        range.map(NodeId::from_raw).collect()
    }

    #[test]
    fn register_and_query() {
        let mut t = Topology::new();
        t.register(GroupId(0), nodes(0..4));
        t.register(GroupId(1), nodes(4..5));
        assert_eq!(t.n(GroupId(0)), 4);
        assert_eq!(t.f(GroupId(0)), 1);
        assert_eq!(t.n(GroupId(1)), 1);
        assert_eq!(t.f(GroupId(1)), 0);
        assert_eq!(t.node(GroupId(0), 2), NodeId::from_raw(2));
        assert!(t.contains(GroupId(1)));
        assert!(!t.contains(GroupId(9)));
        assert_eq!(t.group_ids().count(), 2);
        assert_eq!(t.principals(GroupId(0)).len(), 4);
        assert_eq!(t.principal(GroupId(1), 0), Principal::new(1, 0));
        assert_eq!(t.nodes(GroupId(0)).len(), 4);
    }

    #[test]
    #[should_panic(expected = "3f+1")]
    fn rejects_bad_group_size() {
        let mut t = Topology::new();
        t.register(GroupId(0), nodes(0..3));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn rejects_duplicate_group() {
        let mut t = Topology::new();
        t.register(GroupId(0), nodes(0..1));
        t.register(GroupId(0), nodes(1..2));
    }

    #[test]
    #[should_panic(expected = "unknown group")]
    fn unknown_group_panics() {
        let t = Topology::new();
        t.n(GroupId(3));
    }
}
