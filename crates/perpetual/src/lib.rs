//! # pws-perpetual
//!
//! A from-scratch implementation of the **Perpetual** algorithm
//! (Pallemulle, Thorvaldsson & Goldman, WUCSE-2007-50), the protocol layer
//! of Perpetual-WS: Byzantine fault-tolerant interaction between replicated
//! service groups with strict fault isolation.
//!
//! Each service is a group of `3f + 1` replicas; each replica is a
//! co-located **voter** (a [`pws_clbft`] instance ordering the group's
//! [`Event`] stream) and **driver** (hosting a deterministic [`Executor`]).
//! An outcall flows through the nine stages of the paper's Fig. 1:
//!
//! 1. calling drivers send the request to the target voters,
//! 2. the target group validates `f_c + 1` matching copies and runs CLBFT,
//! 3. voters hand the agreed request to their co-located drivers,
//! 4. executors compute the reply,
//! 5. each voter sends a MAC-authenticated *share* to the **responder**,
//! 6. the responder forwards the reply *bundle* to every calling driver,
//! 7. calling drivers validate `f_t + 1` matching shares and forward the
//!    result into their own voter group,
//! 8. the calling voters agree on the result,
//! 9. each calling executor consumes the result from its event queue.
//!
//! Deterministic aborts (timeout votes), agreed time values, and seeded
//! randomness (§4.2 of the Perpetual-WS paper) ride the same ordered event
//! stream.
//!
//! The crate runs on [`pws_simnet`]; see `perpetual-ws` (the `crates/core`
//! crate) for the Web-Services layer and a builder that assembles whole
//! deployments, and `docs/ARCHITECTURE.md` at the repository root for the
//! full request lifecycle and wire-format tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod cost;
pub mod event;
pub mod executor;
pub mod faults;
pub mod group;
pub mod messages;
pub mod replica;
pub mod snapshot;

pub use client::{ClientCore, ClientEvent};
pub use cost::CostModel;
pub use event::{
    config_payload, read_request, read_request_parts, strip_config_payload, Event, CONFIG_PREFIX,
};
pub use executor::{AppCmd, AppEvent, AppOutput, CallId, Executor, RequestHandle};
pub use faults::FaultMode;
pub use group::{GroupId, Topology};
pub use messages::{decode_pmsg, encode_pmsg, PMsg};
pub use pws_clbft::{PageManifest, DEFAULT_PAGE_SIZE};
pub use replica::{group_seed, PerpetualReplica, ReplicaConfig};
pub use snapshot::{CallSnap, DriverSnapshot};
