//! Inter-node messages of the Perpetual protocol and their wire codec.

use crate::event::{get_share, put_share, Event};
use crate::group::GroupId;
use bytes::Bytes;
use pws_clbft::wire::{Decoder, Encoder, WireError};
use pws_crypto::auth::BundleShare;
use pws_crypto::sha256::Digest32;

/// Canonical byte tag naming a call, MACed inside bundle shares.
pub fn request_tag(caller: GroupId, req_no: u64) -> [u8; 12] {
    let mut tag = [0u8; 12];
    tag[..4].copy_from_slice(&caller.0.to_be_bytes());
    tag[4..].copy_from_slice(&req_no.to_be_bytes());
    tag
}

/// A message between Perpetual nodes.
#[derive(Debug, Clone, PartialEq)]
pub enum PMsg {
    /// Intra-group CLBFT traffic (opaque `pws_clbft::wire` bytes).
    Bft(Bytes),
    /// Stage 1: a calling driver submits an outcall to the target voters.
    /// The payload is the full canonical [`Event::External`].
    OutRequest(Event),
    /// Stage 5: a target voter forwards its reply share to the responder.
    ReplyShare {
        /// The calling group.
        caller: GroupId,
        /// The caller's call number.
        req_no: u64,
        /// The reply payload (the responder includes one copy in the bundle).
        payload: Bytes,
        /// This replica's MACs for every calling driver.
        share: BundleShare,
    },
    /// Stage 6: the responder forwards the reply bundle to every calling
    /// driver.
    ReplyBundle {
        /// The caller's call number.
        req_no: u64,
        /// The reply payload.
        payload: Bytes,
        /// Shares from distinct target replicas vouching for the payload.
        shares: Vec<BundleShare>,
    },
    /// Fast-path read: a caller asks every target replica to answer a
    /// read-only request directly from committed state, bypassing the
    /// ordered stages entirely.
    ReadRequest {
        /// The calling group.
        caller: GroupId,
        /// Size of the calling group (the share MACs every caller replica).
        caller_n: u32,
        /// The caller's call number. Reads share the caller's call-id space
        /// with ordered calls but consume no per-target sequence number —
        /// they are never ordered, so never deduplicated.
        req_no: u64,
        /// Application payload.
        payload: Bytes,
    },
    /// Fast-path read answer: one target replica's reply, sent straight
    /// back to the asking node. The caller accepts the result only once
    /// `2f_t + 1` replicas return matching payloads.
    ReadReply {
        /// The caller's call number.
        req_no: u64,
        /// The reply payload.
        payload: Bytes,
        /// This replica's MACed vouching share (same construction as the
        /// ordered path, so a read result can be re-submitted as an
        /// [`Event::Result`] proof).
        share: BundleShare,
    },
}

const TAG_BFT: u8 = 1;
const TAG_OUT_REQUEST: u8 = 2;
const TAG_REPLY_SHARE: u8 = 3;
const TAG_REPLY_BUNDLE: u8 = 4;
const TAG_READ_REQUEST: u8 = 5;
const TAG_READ_REPLY: u8 = 6;

fn wire_err() -> WireError {
    Event::decode(&[]).expect_err("empty input always fails")
}

/// Encodes a Perpetual message.
pub fn encode_pmsg(msg: &PMsg) -> Bytes {
    let mut e = Encoder::new();
    match msg {
        PMsg::Bft(inner) => {
            e.put_u8(TAG_BFT);
            e.put_bytes(inner);
        }
        PMsg::OutRequest(ev) => {
            e.put_u8(TAG_OUT_REQUEST);
            e.put_bytes(&ev.encode());
        }
        PMsg::ReplyShare {
            caller,
            req_no,
            payload,
            share,
        } => {
            e.put_u8(TAG_REPLY_SHARE);
            e.put_u32(caller.0);
            e.put_u64(*req_no);
            e.put_bytes(payload);
            put_share(&mut e, share);
        }
        PMsg::ReplyBundle {
            req_no,
            payload,
            shares,
        } => {
            e.put_u8(TAG_REPLY_BUNDLE);
            e.put_u64(*req_no);
            e.put_bytes(payload);
            e.put_u32(shares.len() as u32);
            for s in shares {
                put_share(&mut e, s);
            }
        }
        PMsg::ReadRequest {
            caller,
            caller_n,
            req_no,
            payload,
        } => {
            e.put_u8(TAG_READ_REQUEST);
            e.put_u32(caller.0);
            e.put_u32(*caller_n);
            e.put_u64(*req_no);
            e.put_bytes(payload);
        }
        PMsg::ReadReply {
            req_no,
            payload,
            share,
        } => {
            e.put_u8(TAG_READ_REPLY);
            e.put_u64(*req_no);
            e.put_bytes(payload);
            put_share(&mut e, share);
        }
    }
    e.finish()
}

/// Decodes a Perpetual message.
///
/// # Errors
///
/// Returns [`WireError`] on malformed input.
pub fn decode_pmsg(buf: &[u8]) -> Result<PMsg, WireError> {
    let mut d = Decoder::new(buf);
    let tag = d.u8()?;
    let msg = match tag {
        TAG_BFT => PMsg::Bft(d.bytes()?),
        TAG_OUT_REQUEST => {
            let ev_bytes = d.bytes()?;
            PMsg::OutRequest(Event::decode(&ev_bytes)?)
        }
        TAG_REPLY_SHARE => PMsg::ReplyShare {
            caller: GroupId(d.u32()?),
            req_no: d.u64()?,
            payload: d.bytes()?,
            share: get_share(&mut d)?,
        },
        TAG_REPLY_BUNDLE => {
            let req_no = d.u64()?;
            let payload = d.bytes()?;
            let n = d.u32()? as usize;
            if n > 4096 {
                return Err(wire_err());
            }
            let mut shares = Vec::with_capacity(n);
            for _ in 0..n {
                shares.push(get_share(&mut d)?);
            }
            PMsg::ReplyBundle {
                req_no,
                payload,
                shares,
            }
        }
        TAG_READ_REQUEST => PMsg::ReadRequest {
            caller: GroupId(d.u32()?),
            caller_n: d.u32()?,
            req_no: d.u64()?,
            payload: d.bytes()?,
        },
        TAG_READ_REPLY => PMsg::ReadReply {
            req_no: d.u64()?,
            payload: d.bytes()?,
            share: get_share(&mut d)?,
        },
        _ => return Err(wire_err()),
    };
    d.finish()?;
    Ok(msg)
}

/// Reply digest a share vouches for: SHA-256 of the payload.
pub fn reply_digest(payload: &[u8]) -> Digest32 {
    pws_crypto::sha256(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use pws_crypto::keys::{KeyTable, Principal};

    fn sample_share(keys: &mut KeyTable, from_idx: u32) -> BundleShare {
        let callers: Vec<Principal> = (0..4).map(|i| Principal::new(1, i)).collect();
        BundleShare::build(
            keys,
            Principal::new(2, from_idx),
            &request_tag(GroupId(1), 7),
            reply_digest(b"the-reply"),
            &callers,
        )
    }

    #[test]
    fn roundtrip_all_variants() {
        let mut keys = KeyTable::new(1);
        let msgs = vec![
            PMsg::Bft(Bytes::from_static(b"opaque")),
            PMsg::OutRequest(Event::External {
                caller: GroupId(1),
                caller_n: 4,
                req_no: 7,
                target_seq: 5,
                responder: 0,
                timeout_ms: 0,
                payload: Bytes::from_static(b"op"),
            }),
            PMsg::ReplyShare {
                caller: GroupId(1),
                req_no: 7,
                payload: Bytes::from_static(b"the-reply"),
                share: sample_share(&mut keys, 0),
            },
            PMsg::ReplyBundle {
                req_no: 7,
                payload: Bytes::from_static(b"the-reply"),
                shares: vec![sample_share(&mut keys, 0), sample_share(&mut keys, 1)],
            },
            PMsg::ReadRequest {
                caller: GroupId(1),
                caller_n: 4,
                req_no: 8,
                payload: Bytes::from_static(b"browse"),
            },
            PMsg::ReadReply {
                req_no: 8,
                payload: Bytes::from_static(b"the-reply"),
                share: sample_share(&mut keys, 3),
            },
        ];
        for m in msgs {
            let bytes = encode_pmsg(&m);
            assert_eq!(decode_pmsg(&bytes).unwrap(), m);
        }
    }

    #[test]
    fn shares_survive_the_wire_and_still_verify() {
        let mut keys = KeyTable::new(1);
        let m = PMsg::ReplyShare {
            caller: GroupId(1),
            req_no: 7,
            payload: Bytes::from_static(b"the-reply"),
            share: sample_share(&mut keys, 2),
        };
        let decoded = decode_pmsg(&encode_pmsg(&m)).unwrap();
        let PMsg::ReplyShare { share, .. } = decoded else {
            panic!("wrong variant");
        };
        assert!(share.verify(&mut keys, &request_tag(GroupId(1), 7), Principal::new(1, 3)));
        assert!(!share.verify(&mut keys, &request_tag(GroupId(1), 8), Principal::new(1, 3)));
    }

    #[test]
    fn tag_is_unique_per_call() {
        assert_ne!(request_tag(GroupId(1), 7), request_tag(GroupId(1), 8));
        assert_ne!(request_tag(GroupId(1), 7), request_tag(GroupId(2), 7));
    }

    proptest! {
        #[test]
        fn arbitrary_bytes_never_panic(data in proptest::collection::vec(any::<u8>(), 0..200)) {
            let _ = decode_pmsg(&data);
        }
    }
}
